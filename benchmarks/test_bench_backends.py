"""Backend benchmark: wall-clock backends vs sequential execution.

The virtual-time experiments (E1–E12) measure *simulated* grid behaviour;
this module measures the real thing: the same Monte-Carlo π farm executed
sequentially, on the :class:`~repro.backends.threaded.ThreadBackend` and on
the :class:`~repro.backends.process.ProcessBackend`, comparing wall-clock
times and verifying the outputs are identical.

Two regimes are measured:

* **Thread backend** — NumPy batches release the GIL while filling arrays,
  so threads overlap partially; the assertion only pins correctness and a
  generous overhead bound (thread speedup is host dependent and modest).
* **Process backend** — one serial worker process per node escapes the GIL
  entirely; with ≥4 cores the π farm must reach ≥3x over sequential.
  Chunked dispatch (``ExecutionConfig.chunk_size``) batches k tasks per
  IPC round-trip; the table reports both chunked and unchunked runs.

Hosts with fewer than 4 cores (laptops under load, small CI runners) run a
downsized workload and skip the speedup assertion — a hard factor there
would only measure the scheduler's sense of humour.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.workloads.montecarlo import MonteCarloWorkload, estimate_pi

from bench_utils import make_dedicated_grid, publish_block

def physical_cores() -> int:
    """Physical core count (SMT threads excluded) where detectable.

    A 4-vCPU CI runner is often 2 physical cores with hyperthreading;
    four NumPy-bound worker processes cannot reach 3x there, so the
    speedup floor must gate on real cores, not logical ones.
    """
    logical = os.cpu_count() or 1
    try:
        with open("/proc/cpuinfo") as handle:
            cores = set()
            physical_id = core_id = None
            for line in handle:
                key, _, value = line.partition(":")
                key = key.strip()
                if key == "physical id":
                    physical_id = value.strip()
                elif key == "core id":
                    core_id = value.strip()
                elif not line.strip():
                    if core_id is not None:
                        cores.add((physical_id, core_id))
                    physical_id = core_id = None
            if core_id is not None:
                cores.add((physical_id, core_id))
            if cores:
                return min(logical, len(cores))
    except OSError:  # pragma: no cover - non-Linux hosts
        pass
    # No /proc/cpuinfo (macOS, Windows): assume SMT and halve, so the floor
    # is only enforced where real parallel capacity is certain.
    return max(1, logical // 2)


CORES = os.cpu_count() or 1
MANY_CORES = CORES >= 4 and physical_cores() >= 4

# Thread-backend comparison (GIL-bound): moderate size on every host.
BATCHES = 32
SAMPLES_PER_BATCH = 200_000

# Process-backend comparison (GIL escape): sized so per-batch compute
# dwarfs IPC on multicore hosts, downsized elsewhere (correctness only).
PROC_BATCHES = 48 if MANY_CORES else 12
PROC_SAMPLES = 2_000_000 if MANY_CORES else 100_000
PROC_WORKERS = 4 if MANY_CORES else max(2, CORES)
PROC_CHUNK = 4

#: Required process-backend speedup on >= 4 cores (acceptance criterion).
PROC_SPEEDUP_FLOOR = 3.0


def make_workload(batches: int = BATCHES,
                  samples: int = SAMPLES_PER_BATCH) -> MonteCarloWorkload:
    return MonteCarloWorkload(batches=batches, samples_per_batch=samples,
                              seed=7)


def run_sequential(workload: MonteCarloWorkload):
    start = time.perf_counter()
    estimates = [estimate_pi(batch) for batch in workload.items()]
    elapsed = time.perf_counter() - start
    return workload.combine(estimates), elapsed


def concurrent_config(chunk_size: int = 1) -> GraspConfig:
    config = GraspConfig.non_adaptive()
    # Every node computes: with k workers on k cores, parking the master
    # would concede a quarter of the machine before the race starts.
    config.execution.master_computes = True
    config.execution.chunk_size = chunk_size
    return config


def run_on_backend(workload: MonteCarloWorkload, backend: str, workers: int,
                   chunk_size: int = 1):
    grid = make_dedicated_grid(nodes=workers)
    start = time.perf_counter()
    result = Grasp(skeleton=workload.farm(), grid=grid,
                   config=concurrent_config(chunk_size),
                   backend=backend).run(inputs=workload.items())
    elapsed = time.perf_counter() - start
    return workload.combine(result.outputs), elapsed, result


@pytest.fixture(scope="module")
def backend_comparison():
    thread_workload = make_workload()
    thread_workers = min(8, max(2, CORES))
    process_workload = make_workload(PROC_BATCHES, PROC_SAMPLES)

    sequential_pi, sequential_s = run_sequential(thread_workload)
    threaded_pi, threaded_s, thread_result = run_on_backend(
        thread_workload, "thread", thread_workers)

    proc_seq_pi, proc_seq_s = run_sequential(process_workload)
    process_pi, process_s, process_result = run_on_backend(
        process_workload, "process", PROC_WORKERS)
    chunked_pi, chunked_s, _ = run_on_backend(
        process_workload, "process", PROC_WORKERS, chunk_size=PROC_CHUNK)

    table = ExperimentTable(
        title="EB — wall-clock backends vs sequential, Monte-Carlo π farm",
        columns=["mode", "workers", "chunk", "wall_seconds", "speedup",
                 "pi_estimate"],
        notes=(f"threads: {BATCHES}x{SAMPLES_PER_BATCH} samples; "
               f"processes: {PROC_BATCHES}x{PROC_SAMPLES} samples; "
               "speedup = its own sequential baseline / backend wall time "
               f"(host has {CORES} cores)"),
    )
    table.add_row({"mode": "sequential", "workers": 1, "chunk": 1,
                   "wall_seconds": sequential_s, "speedup": 1.0,
                   "pi_estimate": sequential_pi})
    table.add_row({"mode": "thread-backend", "workers": thread_workers,
                   "chunk": 1, "wall_seconds": threaded_s,
                   "speedup": sequential_s / threaded_s if threaded_s else float("inf"),
                   "pi_estimate": threaded_pi})
    table.add_row({"mode": "process-backend", "workers": PROC_WORKERS,
                   "chunk": 1, "wall_seconds": process_s,
                   "speedup": proc_seq_s / process_s if process_s else float("inf"),
                   "pi_estimate": process_pi})
    table.add_row({"mode": "process-backend", "workers": PROC_WORKERS,
                   "chunk": PROC_CHUNK, "wall_seconds": chunked_s,
                   "speedup": proc_seq_s / chunked_s if chunked_s else float("inf"),
                   "pi_estimate": chunked_pi})
    publish_block(format_table(table))
    return {
        "sequential": (sequential_pi, sequential_s),
        "threaded": (threaded_pi, threaded_s),
        "thread_result": thread_result,
        "thread_workers": thread_workers,
        "process_sequential": (proc_seq_pi, proc_seq_s),
        "process": (process_pi, process_s),
        "process_chunked": (chunked_pi, chunked_s),
        "process_result": process_result,
    }


def test_eb_outputs_identical(backend_comparison):
    sequential_pi, _ = backend_comparison["sequential"]
    threaded_pi, _ = backend_comparison["threaded"]
    # Same batches, same per-batch seeds → the estimates are bit-identical.
    assert threaded_pi == sequential_pi


def test_eb_process_outputs_identical(backend_comparison):
    proc_seq_pi, _ = backend_comparison["process_sequential"]
    process_pi, _ = backend_comparison["process"]
    chunked_pi, _ = backend_comparison["process_chunked"]
    assert process_pi == proc_seq_pi
    assert chunked_pi == proc_seq_pi


def test_eb_all_batches_ran_once(backend_comparison):
    assert backend_comparison["thread_result"].total_tasks == BATCHES
    assert backend_comparison["process_result"].total_tasks == PROC_BATCHES


def test_eb_threaded_overhead_is_bounded(backend_comparison):
    _, sequential_s = backend_comparison["sequential"]
    _, threaded_s = backend_comparison["threaded"]
    # A hard speedup assertion would be flaky on loaded CI hosts; require
    # only that real threading does not catastrophically regress.
    assert threaded_s < max(3.0 * sequential_s, 1.0)


@pytest.mark.skipif(not MANY_CORES,
                    reason=(f"needs >= 4 physical cores for the speedup floor, "
                            f"have {physical_cores()} ({CORES} logical)"))
def test_eb_process_speedup_floor(backend_comparison):
    """Acceptance: the GIL escape must deliver >= 3x on 4 cores."""
    _, proc_seq_s = backend_comparison["process_sequential"]
    _, process_s = backend_comparison["process"]
    _, chunked_s = backend_comparison["process_chunked"]
    best = proc_seq_s / min(process_s, chunked_s)
    assert best >= PROC_SPEEDUP_FLOOR, (
        f"process backend reached only {best:.2f}x over sequential "
        f"({proc_seq_s:.2f}s vs {min(process_s, chunked_s):.2f}s) "
        f"on {CORES} cores"
    )


def test_eb_process_overhead_is_bounded(backend_comparison):
    """On any host, worker processes must not catastrophically regress."""
    _, proc_seq_s = backend_comparison["process_sequential"]
    _, process_s = backend_comparison["process"]
    assert process_s < max(3.0 * proc_seq_s, 2.0)


def test_eb_benchmark_thread_backend(benchmark, bench_rounds, backend_comparison):
    workload = make_workload()
    workers = backend_comparison["thread_workers"]
    benchmark.pedantic(lambda: run_on_backend(workload, "thread", workers),
                       rounds=bench_rounds, iterations=1)


def test_eb_benchmark_process_backend_chunked(benchmark, bench_rounds,
                                              backend_comparison):
    workload = make_workload(PROC_BATCHES, PROC_SAMPLES)
    benchmark.pedantic(
        lambda: run_on_backend(workload, "process", PROC_WORKERS,
                               chunk_size=PROC_CHUNK),
        rounds=bench_rounds, iterations=1)
