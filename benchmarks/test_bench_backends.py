"""Backend benchmark: wall-clock backends vs sequential execution.

The virtual-time experiments (E1–E12) measure *simulated* grid behaviour;
this module measures the real thing: the same Monte-Carlo π farm executed
sequentially, on the :class:`~repro.backends.threaded.ThreadBackend` and on
the :class:`~repro.backends.process.ProcessBackend`, plus an HTTP-like
I/O-bound fan on the :class:`~repro.backends.async_.AsyncBackend` and the
π farm again on a localhost 2-worker cluster
(:class:`~repro.cluster.backend.ClusterBackend`, EB-cluster below),
comparing wall-clock times and verifying the outputs are identical.

Three regimes are measured:

* **Thread backend** — NumPy batches release the GIL while filling arrays,
  so threads overlap partially; the assertion only pins correctness and a
  generous overhead bound (thread speedup is host dependent and modest).
* **Process backend** — one serial worker process per node escapes the GIL
  entirely; with ≥4 cores the π farm must reach ≥3x over sequential.
  Chunked dispatch (``ExecutionConfig.chunk_size``) batches k tasks per
  IPC round-trip; the table reports both chunked and unchunked runs.
* **Asyncio backend** — coroutine requests overlap their waits on one
  event loop, so the I/O fan must reach ≥2x over a one-request-at-a-time
  client on *any* host (sleeping needs no cores; this is the acceptance
  criterion for the asyncio backend).

Hosts with fewer than 4 physical cores (laptops under load, small CI
runners) run a downsized compute workload and skip the process speedup
assertion — a hard factor there would only measure the scheduler's sense
of humour.  Core counting lives in
:func:`bench_utils.physical_cores`, deterministically unit-tested below.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.workloads.montecarlo import MonteCarloWorkload, estimate_pi
from repro.workloads.synthetic import IOBoundWorkload

from bench_utils import make_dedicated_grid, physical_cores, publish_block

CORES = os.cpu_count() or 1
MANY_CORES = CORES >= 4 and physical_cores() >= 4

# Thread-backend comparison (GIL-bound): moderate size on every host.
BATCHES = 32
SAMPLES_PER_BATCH = 200_000

# Process-backend comparison (GIL escape): sized so per-batch compute
# dwarfs IPC on multicore hosts, downsized elsewhere (correctness only).
PROC_BATCHES = 48 if MANY_CORES else 12
PROC_SAMPLES = 2_000_000 if MANY_CORES else 100_000
PROC_WORKERS = 4 if MANY_CORES else max(2, CORES)
PROC_CHUNK = 4

#: Required process-backend speedup on >= 4 cores (acceptance criterion).
PROC_SPEEDUP_FLOOR = 3.0

# Asyncio-backend comparison (I/O-bound): latencies are slept, not
# computed, so the floor holds on any host including 1-core CI runners.
IO_REQUESTS = 96
IO_MEAN_LATENCY = 0.008
IO_WORKERS = 8

#: Required asyncio-backend speedup over the sequential client (acceptance
#: criterion: overlapping waits must at least halve the wall time).
ASYNC_SPEEDUP_FLOOR = 2.0


def make_workload(batches: int = BATCHES,
                  samples: int = SAMPLES_PER_BATCH) -> MonteCarloWorkload:
    return MonteCarloWorkload(batches=batches, samples_per_batch=samples,
                              seed=7)


def run_sequential(workload: MonteCarloWorkload):
    start = time.perf_counter()
    estimates = [estimate_pi(batch) for batch in workload.items()]
    elapsed = time.perf_counter() - start
    return workload.combine(estimates), elapsed


def concurrent_config(chunk_size: int = 1) -> GraspConfig:
    config = GraspConfig.non_adaptive()
    # Every node computes: with k workers on k cores, parking the master
    # would concede a quarter of the machine before the race starts.
    config.execution.master_computes = True
    config.execution.chunk_size = chunk_size
    return config


def run_on_backend(workload: MonteCarloWorkload, backend: str, workers: int,
                   chunk_size: int = 1):
    grid = make_dedicated_grid(nodes=workers)
    start = time.perf_counter()
    result = Grasp(skeleton=workload.farm(), grid=grid,
                   config=concurrent_config(chunk_size),
                   backend=backend).run(inputs=workload.items())
    elapsed = time.perf_counter() - start
    return workload.combine(result.outputs), elapsed, result


@pytest.fixture(scope="module")
def backend_comparison():
    thread_workload = make_workload()
    thread_workers = min(8, max(2, CORES))
    process_workload = make_workload(PROC_BATCHES, PROC_SAMPLES)

    sequential_pi, sequential_s = run_sequential(thread_workload)
    threaded_pi, threaded_s, thread_result = run_on_backend(
        thread_workload, "thread", thread_workers)

    proc_seq_pi, proc_seq_s = run_sequential(process_workload)
    process_pi, process_s, process_result = run_on_backend(
        process_workload, "process", PROC_WORKERS)
    chunked_pi, chunked_s, _ = run_on_backend(
        process_workload, "process", PROC_WORKERS, chunk_size=PROC_CHUNK)

    table = ExperimentTable(
        title="EB — wall-clock backends vs sequential, Monte-Carlo π farm",
        columns=["mode", "workers", "chunk", "wall_seconds", "speedup",
                 "pi_estimate"],
        notes=(f"threads: {BATCHES}x{SAMPLES_PER_BATCH} samples; "
               f"processes: {PROC_BATCHES}x{PROC_SAMPLES} samples; "
               "speedup = its own sequential baseline / backend wall time "
               f"(host has {CORES} cores)"),
    )
    table.add_row({"mode": "sequential", "workers": 1, "chunk": 1,
                   "wall_seconds": sequential_s, "speedup": 1.0,
                   "pi_estimate": sequential_pi})
    table.add_row({"mode": "thread-backend", "workers": thread_workers,
                   "chunk": 1, "wall_seconds": threaded_s,
                   "speedup": sequential_s / threaded_s if threaded_s else float("inf"),
                   "pi_estimate": threaded_pi})
    table.add_row({"mode": "process-backend", "workers": PROC_WORKERS,
                   "chunk": 1, "wall_seconds": process_s,
                   "speedup": proc_seq_s / process_s if process_s else float("inf"),
                   "pi_estimate": process_pi})
    table.add_row({"mode": "process-backend", "workers": PROC_WORKERS,
                   "chunk": PROC_CHUNK, "wall_seconds": chunked_s,
                   "speedup": proc_seq_s / chunked_s if chunked_s else float("inf"),
                   "pi_estimate": chunked_pi})
    publish_block(format_table(table))
    return {
        "sequential": (sequential_pi, sequential_s),
        "threaded": (threaded_pi, threaded_s),
        "thread_result": thread_result,
        "thread_workers": thread_workers,
        "process_sequential": (proc_seq_pi, proc_seq_s),
        "process": (process_pi, process_s),
        "process_chunked": (chunked_pi, chunked_s),
        "process_result": process_result,
    }


def test_eb_outputs_identical(backend_comparison):
    sequential_pi, _ = backend_comparison["sequential"]
    threaded_pi, _ = backend_comparison["threaded"]
    # Same batches, same per-batch seeds → the estimates are bit-identical.
    assert threaded_pi == sequential_pi


def test_eb_process_outputs_identical(backend_comparison):
    proc_seq_pi, _ = backend_comparison["process_sequential"]
    process_pi, _ = backend_comparison["process"]
    chunked_pi, _ = backend_comparison["process_chunked"]
    assert process_pi == proc_seq_pi
    assert chunked_pi == proc_seq_pi


def test_eb_all_batches_ran_once(backend_comparison):
    assert backend_comparison["thread_result"].total_tasks == BATCHES
    assert backend_comparison["process_result"].total_tasks == PROC_BATCHES


def test_eb_threaded_overhead_is_bounded(backend_comparison):
    _, sequential_s = backend_comparison["sequential"]
    _, threaded_s = backend_comparison["threaded"]
    # A hard speedup assertion would be flaky on loaded CI hosts; require
    # only that real threading does not catastrophically regress.
    assert threaded_s < max(3.0 * sequential_s, 1.0)


@pytest.mark.skipif(not MANY_CORES,
                    reason=(f"needs >= 4 physical cores for the speedup floor, "
                            f"have {physical_cores()} ({CORES} logical)"))
def test_eb_process_speedup_floor(backend_comparison):
    """Acceptance: the GIL escape must deliver >= 3x on 4 cores."""
    _, proc_seq_s = backend_comparison["process_sequential"]
    _, process_s = backend_comparison["process"]
    _, chunked_s = backend_comparison["process_chunked"]
    best = proc_seq_s / min(process_s, chunked_s)
    assert best >= PROC_SPEEDUP_FLOOR, (
        f"process backend reached only {best:.2f}x over sequential "
        f"({proc_seq_s:.2f}s vs {min(process_s, chunked_s):.2f}s) "
        f"on {CORES} cores"
    )


def test_eb_process_overhead_is_bounded(backend_comparison):
    """On any host, worker processes must not catastrophically regress."""
    _, proc_seq_s = backend_comparison["process_sequential"]
    _, process_s = backend_comparison["process"]
    assert process_s < max(3.0 * proc_seq_s, 2.0)


def test_eb_benchmark_thread_backend(benchmark, bench_rounds, backend_comparison):
    workload = make_workload()
    workers = backend_comparison["thread_workers"]
    benchmark.pedantic(lambda: run_on_backend(workload, "thread", workers),
                       rounds=bench_rounds, iterations=1)


def test_eb_benchmark_process_backend_chunked(benchmark, bench_rounds,
                                              backend_comparison):
    workload = make_workload(PROC_BATCHES, PROC_SAMPLES)
    benchmark.pedantic(
        lambda: run_on_backend(workload, "process", PROC_WORKERS,
                               chunk_size=PROC_CHUNK),
        rounds=bench_rounds, iterations=1)


# --------------------------------------------------------------------------
# EB-IO — the I/O-bound regime: an HTTP-like fan on the asyncio backend.

def make_io_workload() -> IOBoundWorkload:
    return IOBoundWorkload(requests=IO_REQUESTS,
                           mean_latency=IO_MEAN_LATENCY, seed=11)


def run_io_on_backend(workload: IOBoundWorkload, backend: str,
                      worker=None):
    grid = make_dedicated_grid(nodes=IO_WORKERS)
    start = time.perf_counter()
    result = Grasp(skeleton=workload.farm(worker), grid=grid,
                   config=concurrent_config(),
                   backend=backend).run(inputs=workload.items())
    elapsed = time.perf_counter() - start
    return result, elapsed


@pytest.fixture(scope="module")
def io_comparison():
    workload = make_io_workload()
    sequential_out, sequential_s = workload.run_sequential()
    async_result, async_s = run_io_on_backend(workload, "asyncio")
    # Blocking twin on real threads: OS threads also overlap sleeps, which
    # is the row readers compare the event loop against.
    from repro.workloads.synthetic import blocking_fetch_worker
    thread_result, thread_s = run_io_on_backend(workload, "thread",
                                                worker=blocking_fetch_worker)

    table = ExperimentTable(
        title="EB-IO — asyncio backend vs sequential client, HTTP-like fan",
        columns=["mode", "workers", "wall_seconds", "speedup"],
        notes=(f"{IO_REQUESTS} requests, mean service time "
               f"{IO_MEAN_LATENCY * 1e3:.0f} ms (total "
               f"{workload.total_latency():.2f}s); speedup = sequential "
               "client wall time / backend wall time"),
    )
    table.add_row({"mode": "sequential-client", "workers": 1,
                   "wall_seconds": sequential_s, "speedup": 1.0})
    table.add_row({"mode": "asyncio-backend", "workers": IO_WORKERS,
                   "wall_seconds": async_s,
                   "speedup": sequential_s / async_s if async_s else float("inf")})
    table.add_row({"mode": "thread-backend", "workers": IO_WORKERS,
                   "wall_seconds": thread_s,
                   "speedup": sequential_s / thread_s if thread_s else float("inf")})
    publish_block(format_table(table))
    return {
        "workload": workload,
        "sequential": (sequential_out, sequential_s),
        "async": (async_result, async_s),
        "thread": (thread_result, thread_s),
    }


def test_eb_io_outputs_identical(io_comparison):
    workload = io_comparison["workload"]
    sequential_out, _ = io_comparison["sequential"]
    async_result, _ = io_comparison["async"]
    thread_result, _ = io_comparison["thread"]
    assert sequential_out == workload.expected_outputs()
    assert async_result.outputs == sequential_out
    assert thread_result.outputs == sequential_out
    assert async_result.total_tasks == IO_REQUESTS


def test_eb_io_asyncio_speedup_floor(io_comparison):
    """Acceptance: overlapping I/O waits must deliver >= 2x on any host."""
    _, sequential_s = io_comparison["sequential"]
    _, async_s = io_comparison["async"]
    speedup = sequential_s / async_s if async_s else float("inf")
    assert speedup >= ASYNC_SPEEDUP_FLOOR, (
        f"asyncio backend reached only {speedup:.2f}x over the sequential "
        f"client ({sequential_s:.2f}s vs {async_s:.2f}s)"
    )


def test_eb_benchmark_asyncio_backend(benchmark, bench_rounds, io_comparison):
    workload = io_comparison["workload"]
    benchmark.pedantic(lambda: run_io_on_backend(workload, "asyncio"),
                       rounds=bench_rounds, iterations=1)


# --------------------------------------------------------------------------
# EB-cluster — the distributed backend on a localhost LocalCluster vs the
# process backend on the same Monte-Carlo workload and worker count.  Both
# escape the GIL with one serial worker per node; the cluster pays TCP
# framing instead of ProcessPoolExecutor IPC.  CI hosts vary wildly, so the
# acceptance bound is a generous overhead factor, not a speedup.

CLUSTER_WORKERS = 2
CLUSTER_BATCHES = 12 if MANY_CORES else 8
CLUSTER_SAMPLES = 400_000 if MANY_CORES else 100_000

#: Generous acceptance factor: a localhost cluster must stay in the same
#: league as the process backend (TCP on loopback is cheap), but CI noise
#: and worker-boot cost forbid anything tight.
CLUSTER_OVERHEAD_FACTOR = 6.0
CLUSTER_OVERHEAD_SLACK_S = 5.0


@pytest.fixture(scope="module")
def cluster_comparison():
    workload = make_workload(CLUSTER_BATCHES, CLUSTER_SAMPLES)
    sequential_pi, sequential_s = run_sequential(workload)
    process_pi, process_s, _ = run_on_backend(
        workload, "process", CLUSTER_WORKERS, chunk_size=PROC_CHUNK)
    cluster_pi, cluster_s, cluster_result = run_on_backend(
        workload, "cluster", CLUSTER_WORKERS, chunk_size=PROC_CHUNK)

    table = ExperimentTable(
        title="EB-cluster — localhost LocalCluster vs process backend, "
              "Monte-Carlo π farm",
        columns=["mode", "workers", "wall_seconds", "speedup", "pi_estimate"],
        notes=(f"{CLUSTER_BATCHES}x{CLUSTER_SAMPLES} samples, chunk="
               f"{PROC_CHUNK}; speedup = sequential wall time / backend "
               "wall time (cluster time includes worker-agent boot)"),
    )
    table.add_row({"mode": "sequential", "workers": 1,
                   "wall_seconds": sequential_s, "speedup": 1.0,
                   "pi_estimate": sequential_pi})
    table.add_row({"mode": "process-backend", "workers": CLUSTER_WORKERS,
                   "wall_seconds": process_s,
                   "speedup": sequential_s / process_s if process_s else float("inf"),
                   "pi_estimate": process_pi})
    table.add_row({"mode": "cluster-backend", "workers": CLUSTER_WORKERS,
                   "wall_seconds": cluster_s,
                   "speedup": sequential_s / cluster_s if cluster_s else float("inf"),
                   "pi_estimate": cluster_pi})
    publish_block(format_table(table))
    return {
        "sequential": (sequential_pi, sequential_s),
        "process": (process_pi, process_s),
        "cluster": (cluster_pi, cluster_s),
        "cluster_result": cluster_result,
    }


def test_eb_cluster_outputs_identical(cluster_comparison):
    sequential_pi, _ = cluster_comparison["sequential"]
    process_pi, _ = cluster_comparison["process"]
    cluster_pi, _ = cluster_comparison["cluster"]
    # Same batches, same per-batch seeds → bit-identical estimates across
    # machines and transports.
    assert cluster_pi == sequential_pi
    assert cluster_pi == process_pi
    assert cluster_comparison["cluster_result"].total_tasks == CLUSTER_BATCHES


def test_eb_cluster_overhead_is_bounded(cluster_comparison):
    """Acceptance: loopback TCP stays within a generous factor of local IPC."""
    _, process_s = cluster_comparison["process"]
    _, cluster_s = cluster_comparison["cluster"]
    bound = CLUSTER_OVERHEAD_FACTOR * process_s + CLUSTER_OVERHEAD_SLACK_S
    assert cluster_s < bound, (
        f"cluster backend took {cluster_s:.2f}s vs {process_s:.2f}s on the "
        f"process backend (bound {bound:.2f}s)"
    )


# --------------------------------------------------------------------------
# The speedup-gate's core detection, tested deterministically (the gate
# itself only ever *runs* on multicore hosts, so without these the logic is
# exercised nowhere on 1-core CI).

def _cpuinfo(entries) -> str:
    """Render /proc/cpuinfo-style text from (physical id, core id) pairs."""
    blocks = []
    for index, (physical, core) in enumerate(entries):
        blocks.append(
            f"processor\t: {index}\n"
            f"physical id\t: {physical}\n"
            f"core id\t\t: {core}\n"
        )
    return "\n".join(blocks) + "\n"


class TestPhysicalCoreDetection:
    def test_smt_host_counts_real_cores(self, tmp_path):
        # 8 logical CPUs, 2 sockets x 2 cores, hyperthreaded: 4 real cores.
        path = tmp_path / "cpuinfo"
        path.write_text(_cpuinfo([("0", "0"), ("0", "1"), ("1", "0"),
                                  ("1", "1")] * 2))
        assert physical_cores(str(path), logical=8) == 4

    def test_dedicated_host_counts_all(self, tmp_path):
        path = tmp_path / "cpuinfo"
        path.write_text(_cpuinfo([("0", str(i)) for i in range(4)]))
        assert physical_cores(str(path), logical=4) == 4

    def test_trailing_block_without_blank_line_is_counted(self, tmp_path):
        path = tmp_path / "cpuinfo"
        path.write_text(_cpuinfo([("0", "0"), ("0", "1")]).rstrip("\n"))
        assert physical_cores(str(path), logical=2) == 2

    def test_never_exceeds_logical_count(self, tmp_path):
        # Offline CPUs: cpuinfo lists more cores than the scheduler offers.
        path = tmp_path / "cpuinfo"
        path.write_text(_cpuinfo([("0", str(i)) for i in range(8)]))
        assert physical_cores(str(path), logical=2) == 2

    def test_missing_cpuinfo_assumes_smt(self, tmp_path):
        # macOS/Windows: no cpuinfo; halve the logical count defensively.
        missing = tmp_path / "does-not-exist"
        assert physical_cores(str(missing), logical=8) == 4
        assert physical_cores(str(missing), logical=1) == 1

    def test_cpuinfo_without_core_ids_assumes_smt(self, tmp_path):
        # Some ARM kernels omit physical/core ids entirely.
        path = tmp_path / "cpuinfo"
        path.write_text("processor\t: 0\nmodel name\t: x\n\n"
                        "processor\t: 1\nmodel name\t: x\n\n")
        assert physical_cores(str(path), logical=4) == 2

    def test_speedup_gate_skips_below_four_physical_cores(self, tmp_path):
        # The MANY_CORES gate composes the two counts exactly like this.
        path = tmp_path / "cpuinfo"
        path.write_text(_cpuinfo([("0", "0"), ("0", "1")] * 2))
        logical = 4
        many = logical >= 4 and physical_cores(str(path), logical=logical) >= 4
        assert many is False
