"""Backend benchmark: ThreadBackend wall-clock vs sequential execution.

The virtual-time experiments (E1–E12) measure *simulated* grid behaviour;
this module measures the real thing: the same Monte-Carlo π farm executed
sequentially and on the :class:`~repro.backends.threaded.ThreadBackend`,
comparing wall-clock times and verifying the outputs are identical.  The
workload is multicore-friendly — each batch fills large NumPy arrays, which
releases the GIL — so the thread backend can genuinely overlap batches.

Wall-clock speedup depends on the host (core count, load, NumPy build), so
the table reports the measured factor while the assertions only pin
correctness and a generous sanity bound on overhead.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.backends import ThreadBackend
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.workloads.montecarlo import MonteCarloWorkload, estimate_pi

from bench_utils import make_dedicated_grid, publish_block

BATCHES = 32
SAMPLES_PER_BATCH = 200_000


def make_workload() -> MonteCarloWorkload:
    return MonteCarloWorkload(batches=BATCHES,
                              samples_per_batch=SAMPLES_PER_BATCH, seed=7)


def run_sequential(workload: MonteCarloWorkload):
    start = time.perf_counter()
    estimates = [estimate_pi(batch) for batch in workload.items()]
    elapsed = time.perf_counter() - start
    return workload.combine(estimates), elapsed


def run_threaded(workload: MonteCarloWorkload, workers: int):
    grid = make_dedicated_grid(nodes=workers)
    start = time.perf_counter()
    result = Grasp(skeleton=workload.farm(), grid=grid,
                   config=GraspConfig.non_adaptive(),
                   backend="thread").run(inputs=workload.items())
    elapsed = time.perf_counter() - start
    return workload.combine(result.outputs), elapsed, result


@pytest.fixture(scope="module")
def backend_comparison():
    workload = make_workload()
    workers = min(8, max(2, os.cpu_count() or 2))

    sequential_pi, sequential_s = run_sequential(workload)
    threaded_pi, threaded_s, result = run_threaded(workload, workers)

    table = ExperimentTable(
        title="EB — ThreadBackend wall-clock vs sequential, Monte-Carlo π farm",
        columns=["mode", "workers", "wall_seconds", "speedup", "pi_estimate"],
        notes=(f"{BATCHES} batches x {SAMPLES_PER_BATCH} samples; "
               "speedup = sequential / threaded wall time (host dependent)"),
    )
    table.add_row({"mode": "sequential", "workers": 1,
                   "wall_seconds": sequential_s, "speedup": 1.0,
                   "pi_estimate": sequential_pi})
    table.add_row({"mode": "thread-backend", "workers": workers,
                   "wall_seconds": threaded_s,
                   "speedup": sequential_s / threaded_s if threaded_s else float("inf"),
                   "pi_estimate": threaded_pi})
    publish_block(format_table(table))
    return {
        "sequential": (sequential_pi, sequential_s),
        "threaded": (threaded_pi, threaded_s),
        "result": result,
        "workers": workers,
    }


def test_eb_outputs_identical(backend_comparison):
    sequential_pi, _ = backend_comparison["sequential"]
    threaded_pi, _ = backend_comparison["threaded"]
    # Same batches, same per-batch seeds → the estimates are bit-identical.
    assert threaded_pi == sequential_pi


def test_eb_all_batches_ran_once(backend_comparison):
    result = backend_comparison["result"]
    assert result.total_tasks == BATCHES


def test_eb_threaded_overhead_is_bounded(backend_comparison):
    _, sequential_s = backend_comparison["sequential"]
    _, threaded_s = backend_comparison["threaded"]
    # A hard speedup assertion would be flaky on loaded CI hosts; require
    # only that real threading does not catastrophically regress.
    assert threaded_s < max(3.0 * sequential_s, 1.0)


def test_eb_benchmark_thread_backend(benchmark, bench_rounds, backend_comparison):
    workload = make_workload()
    workers = backend_comparison["workers"]
    benchmark.pedantic(lambda: run_threaded(workload, workers),
                       rounds=bench_rounds, iterations=1)
