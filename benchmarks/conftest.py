"""Shared fixtures for the benchmark/experiment harness.

Each ``test_bench_*.py`` module regenerates one experiment of the paper's
evaluation (see DESIGN.md §4 and EXPERIMENTS.md).  Every module:

* runs the experiment once (module-scoped fixture) and *prints* the
  table/series it reproduces — so ``pytest benchmarks/ --benchmark-only -s``
  leaves the reproduced rows in ``bench_output.txt``; and
* registers a pytest-benchmark measurement of the adaptive run so the
  harness also records the wall-clock cost of the simulation itself.

Benchmarks use small problem sizes; the experiments measure *virtual time*,
so the statistical shape does not depend on wall-clock effort.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make bench_utils importable regardless of how pytest resolves rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_utils  # noqa: E402


@pytest.fixture(scope="session")
def bench_rounds() -> int:
    """How many rounds pytest-benchmark repeats each measured run."""
    return 3


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Emit every reproduced experiment table/series after the run.

    This guarantees the reproduced rows appear in ``bench_output.txt`` even
    though pytest captures per-test stdout by default.
    """
    if not bench_utils.PUBLISHED_BLOCKS:
        return
    terminalreporter.write_sep("=", "reproduced experiment tables & series")
    for block in bench_utils.PUBLISHED_BLOCKS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
