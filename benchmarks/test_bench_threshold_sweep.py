"""E7: sensitivity of the performance threshold Z (Algorithm 2's knob).

Sweeps the relative threshold factor.  Small factors adapt eagerly (more
recalibrations, more overhead); large factors tolerate degradation and forgo
the benefit.  The series reports makespan, breaches and recalibrations per
factor on a grid whose fast nodes degrade mid-run.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import sweep
from repro.analysis.reporting import format_table
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.core.phases import Phase
from repro.grid.load import StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridTopology
from repro.skeletons.taskfarm import TaskFarm

from bench_utils import publish_block

FACTORS = (1.1, 1.25, 1.5, 2.0, 4.0)


def spike_grid() -> GridTopology:
    nodes = [
        GridNode(node_id="n0", speed=1.0),
        GridNode(node_id="n1", speed=1.0),
        GridNode(node_id="n2", speed=2.0),
        GridNode(node_id="n3", speed=2.0),
        GridNode(node_id="n4", speed=8.0,
                 load_model=StepLoad(steps=[(5.0, 0.95)], initial=0.0)),
        GridNode(node_id="n5", speed=8.0,
                 load_model=StepLoad(steps=[(5.0, 0.95)], initial=0.0)),
    ]
    return GridTopology(nodes=nodes, wan_latency=1e-4, wan_bandwidth=1e8)


def run_with_factor(factor: float):
    farm = TaskFarm(worker=lambda x: x + 1, cost_model=lambda item: 4.0)
    config = GraspConfig.adaptive(threshold_factor=factor)
    return Grasp(farm, spike_grid(), config=config).run(range(300))


@pytest.fixture(scope="module")
def threshold_sweep():
    results = {}

    def run_one(factor):
        result = run_with_factor(factor)
        results[factor] = result
        return {
            "makespan": result.makespan,
            "breaches": result.execution.breaches,
            "recalibrations": result.recalibrations,
            "calibration_time": result.phases.total_duration(Phase.CALIBRATION),
        }

    table = sweep("threshold_factor", list(FACTORS), run_one,
                  title="E7 — threshold-factor (Z) sensitivity under a t=5 load spike")
    publish_block(format_table(table))
    return table, results


def test_e7_all_factors_complete_correctly(threshold_sweep):
    _, results = threshold_sweep
    for result in results.values():
        assert result.outputs == [x + 1 for x in range(300)]


def test_e7_eager_thresholds_adapt_more(threshold_sweep):
    _, results = threshold_sweep
    recals = [results[f].recalibrations for f in FACTORS]
    # Recalibration count is non-increasing (weakly) as the factor grows.
    assert all(earlier >= later for earlier, later in zip(recals, recals[1:]))


def test_e7_moderate_threshold_not_worse_than_very_lax(threshold_sweep):
    _, results = threshold_sweep
    moderate = min(results[f].makespan for f in (1.25, 1.5, 2.0))
    lax = results[4.0].makespan
    assert moderate <= lax * 1.05


def test_e7_benchmark_moderate_threshold(benchmark, bench_rounds, threshold_sweep):
    benchmark.pedantic(lambda: run_with_factor(1.5), rounds=bench_rounds, iterations=1)
