"""Helpers shared by the benchmark/experiment modules."""

from __future__ import annotations

from typing import List

from repro.grid.topology import GridBuilder, GridTopology

__all__ = [
    "make_dynamic_grid",
    "make_dedicated_grid",
    "print_block",
    "publish_block",
    "PUBLISHED_BLOCKS",
]

#: Reproduced tables/series registered by the experiment modules.  The
#: ``pytest_terminal_summary`` hook in ``conftest.py`` prints them after the
#: run, so they land in ``bench_output.txt`` even when pytest captures
#: per-test stdout (the default).
PUBLISHED_BLOCKS: List[str] = []


def publish_block(text: str) -> None:
    """Register a reproduced table/series for the end-of-run summary."""
    PUBLISHED_BLOCKS.append(text)
    print_block(text)


def make_dynamic_grid(seed: int = 0, nodes: int = 8, spread: float = 4.0,
                      mean_level: float = 0.35) -> GridTopology:
    """Heterogeneous, non-dedicated grid (random-walk background load)."""
    return (
        GridBuilder()
        .heterogeneous(nodes=nodes, speed_spread=spread)
        .with_dynamic_load("randomwalk", mean_level=mean_level)
        .named(f"dynamic-{nodes}x{spread}")
        .build(seed=seed)
    )


def make_dedicated_grid(seed: int = 0, nodes: int = 8, spread: float = 4.0) -> GridTopology:
    """Heterogeneous but dedicated grid (no external load)."""
    return (
        GridBuilder()
        .heterogeneous(nodes=nodes, speed_spread=spread)
        .named(f"dedicated-{nodes}x{spread}")
        .build(seed=seed)
    )


def print_block(text: str) -> None:
    """Print a reproduced table/series with visual separation."""
    print()
    print(text)
    print()
