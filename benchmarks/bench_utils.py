"""Helpers shared by the benchmark/experiment modules."""

from __future__ import annotations

import os
from typing import List, Optional

from repro.grid.topology import GridBuilder, GridTopology

__all__ = [
    "make_dynamic_grid",
    "make_dedicated_grid",
    "physical_cores",
    "print_block",
    "publish_block",
    "PUBLISHED_BLOCKS",
]


def physical_cores(cpuinfo_path: str = "/proc/cpuinfo",
                   logical: Optional[int] = None) -> int:
    """Physical core count (SMT threads excluded) where detectable.

    A 4-vCPU CI runner is often 2 physical cores with hyperthreading; k
    NumPy-bound worker processes cannot reach the speedup floor there, so
    hard speedup gates must count real cores, not logical ones.  Distinct
    cores are ``(physical id, core id)`` pairs from ``cpuinfo_path``;
    without a readable cpuinfo (macOS, Windows) the logical count is halved
    — assume SMT, so floors are only enforced where real parallel capacity
    is certain.

    ``cpuinfo_path`` and ``logical`` exist for deterministic unit testing;
    production callers use the defaults.
    """
    logical = (os.cpu_count() or 1) if logical is None else logical
    try:
        with open(cpuinfo_path) as handle:
            cores = set()
            physical_id = core_id = None
            for line in handle:
                key, _, value = line.partition(":")
                key = key.strip()
                if key == "physical id":
                    physical_id = value.strip()
                elif key == "core id":
                    core_id = value.strip()
                elif not line.strip():
                    if core_id is not None:
                        cores.add((physical_id, core_id))
                    physical_id = core_id = None
            if core_id is not None:
                cores.add((physical_id, core_id))
            if cores:
                return min(logical, len(cores))
    except OSError:
        pass
    return max(1, logical // 2)

#: Reproduced tables/series registered by the experiment modules.  The
#: ``pytest_terminal_summary`` hook in ``conftest.py`` prints them after the
#: run, so they land in ``bench_output.txt`` even when pytest captures
#: per-test stdout (the default).
PUBLISHED_BLOCKS: List[str] = []


def publish_block(text: str) -> None:
    """Register a reproduced table/series for the end-of-run summary."""
    PUBLISHED_BLOCKS.append(text)
    print_block(text)


def make_dynamic_grid(seed: int = 0, nodes: int = 8, spread: float = 4.0,
                      mean_level: float = 0.35) -> GridTopology:
    """Heterogeneous, non-dedicated grid (random-walk background load)."""
    return (
        GridBuilder()
        .heterogeneous(nodes=nodes, speed_spread=spread)
        .with_dynamic_load("randomwalk", mean_level=mean_level)
        .named(f"dynamic-{nodes}x{spread}")
        .build(seed=seed)
    )


def make_dedicated_grid(seed: int = 0, nodes: int = 8, spread: float = 4.0) -> GridTopology:
    """Heterogeneous but dedicated grid (no external load)."""
    return (
        GridBuilder()
        .heterogeneous(nodes=nodes, speed_spread=spread)
        .named(f"dedicated-{nodes}x{spread}")
        .build(seed=seed)
    )


def print_block(text: str) -> None:
    """Print a reproduced table/series with visual separation."""
    print()
    print(text)
    print()
