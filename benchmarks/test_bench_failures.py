"""E11: node failure / churn resilience (extension of the adaptation rule).

A permanent node failure mid-run is the extreme form of "evolving external
pressure".  The adaptive farm drops the failed node, re-enqueues the task it
held and rebalances; the experiment reports makespans and lost-task counts
for increasing numbers of failed nodes.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import sweep
from repro.analysis.reporting import format_table
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.grid.failures import PermanentFailure
from repro.grid.topology import GridBuilder
from repro.workloads.synthetic import SyntheticWorkload

from bench_utils import publish_block

FAILED_NODE_COUNTS = (0, 1, 2, 3)
N_TASKS = 240


def failing_grid(failed_nodes: int, seed: int = 30):
    builder = (GridBuilder().heterogeneous(nodes=8, speed_spread=4.0)
               .named(f"failures-{failed_nodes}"))
    grid = builder.build(seed=seed)
    if failed_nodes:
        # Fail the nominally fastest nodes (the worst case for the farm)
        # at staggered times after execution has started.
        speeds = grid.speeds()
        victims = sorted(speeds, key=speeds.get, reverse=True)[:failed_nodes]
        failures = {node: 10.0 + 5.0 * i for i, node in enumerate(victims)}
        grid = grid.with_failure_model(PermanentFailure(failures=failures))
    return grid


def run_with_failures(failed_nodes: int):
    workload = SyntheticWorkload(tasks=N_TASKS, mean_cost=6.0, cost_cv=0.2, seed=31)
    grid = failing_grid(failed_nodes)
    return Grasp(workload.farm(), grid, config=GraspConfig.adaptive()).run(
        workload.items()
    )


@pytest.fixture(scope="module")
def failure_sweep():
    results = {}

    def run_one(failed_nodes):
        result = run_with_failures(failed_nodes)
        results[failed_nodes] = result
        return {
            "makespan": result.makespan,
            "lost_tasks_requeued": result.execution.lost_tasks,
            "recalibrations": result.recalibrations,
            "nodes_used": len(result.per_node_counts()),
        }

    table = sweep("failed_nodes", list(FAILED_NODE_COUNTS), run_one,
                  title="E11 — node-failure resilience (fastest nodes fail from t=10)")
    publish_block(format_table(table))
    return results


def test_e11_all_tasks_complete_despite_failures(failure_sweep):
    workload = SyntheticWorkload(tasks=N_TASKS, mean_cost=6.0, cost_cv=0.2, seed=31)
    expected = workload.expected_outputs()
    for result in failure_sweep.values():
        assert result.total_tasks == N_TASKS
        assert result.outputs == pytest.approx(expected)


def test_e11_failed_nodes_not_used_after_failure(failure_sweep):
    result = failure_sweep[2]
    grid = result.compiled.topology
    for task_result in result.results:
        assert grid.failure_model.available(task_result.node_id, task_result.started)


def test_e11_makespan_degrades_gracefully(failure_sweep):
    baseline = failure_sweep[0].makespan
    worst = failure_sweep[FAILED_NODE_COUNTS[-1]].makespan
    assert worst >= baseline * 0.9
    # Losing the 3 fastest of 8 nodes must not blow the makespan up by more
    # than the lost compute share would justify (plus adaptation slack).
    assert worst <= baseline * 6.0


def test_e11_benchmark_two_failures(benchmark, bench_rounds, failure_sweep):
    benchmark.pedantic(lambda: run_with_failures(2), rounds=bench_rounds, iterations=1)
