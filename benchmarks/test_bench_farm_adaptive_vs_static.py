"""E4: adaptive task farm vs static distributions across node counts.

Reproduces the claim shape of the companion task-farm evaluation (paper
reference [6]): on a dynamic, heterogeneous grid, the adaptive GRASP farm
beats static block/weighted distributions, and the gap persists (or grows)
as nodes are added.  One row per grid size, reporting makespans and the
improvement factor.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentTable, compare_farm
from repro.analysis.reporting import format_table
from repro.workloads.parameter_sweep import ParameterSweep

from bench_utils import publish_block

NODE_COUNTS = (4, 8, 16, 32)


def make_sweep() -> ParameterSweep:
    return ParameterSweep(
        axes={"x": [0.25 * i for i in range(40)], "resolution": [1, 2, 4, 8, 16]},
        base_cost=3.0,
    )


def make_bursty_grid(nodes: int, seed: int):
    """Non-dedicated grid with bursty (Gilbert-model) competing load.

    Long busy periods on a subset of nodes are exactly the conditions the
    paper motivates: a static distribution keyed to nominal speeds keeps
    feeding the busy nodes, while the adaptive farm routes around them.
    """
    from repro.grid.topology import GridBuilder

    return (
        GridBuilder()
        .heterogeneous(nodes=nodes, speed_spread=4.0)
        .with_dynamic_load("bursty", quiet_level=0.05, busy_level=0.85,
                           p_burst=0.06, p_calm=0.12, epoch=8.0)
        .named(f"bursty-{nodes}")
        .build(seed=seed)
    )


def compare_at(nodes: int, seed: int = 10):
    sweep = make_sweep()
    return compare_farm(
        skeleton_factory=sweep.farm,
        inputs_factory=sweep.items,
        grid_factory=lambda: make_bursty_grid(nodes, seed + nodes),
        baselines=("static-block", "static-weighted", "demand-driven"),
        workload_label=f"sweep-{nodes}nodes",
    )


@pytest.fixture(scope="module")
def farm_scaling():
    comparisons = {nodes: compare_at(nodes) for nodes in NODE_COUNTS}

    table = ExperimentTable(
        title="E4 — adaptive vs static farm, parameter-sweep workload, dynamic grid",
        columns=["nodes", "adaptive_makespan", "static_block", "static_weighted",
                 "demand_driven", "speedup_vs_block", "adaptive_recalibrations"],
        notes=("speedup_vs_block = static-block makespan / adaptive "
               "makespan (>1 ⇒ adaptive wins)"),
    )
    for nodes, comparison in comparisons.items():
        table.add_row({
            "nodes": nodes,
            "adaptive_makespan": comparison.adaptive.makespan,
            "static_block": comparison.baselines["static-block"].makespan,
            "static_weighted": comparison.baselines["static-weighted"].makespan,
            "demand_driven": comparison.baselines["demand-driven"].makespan,
            "speedup_vs_block": comparison.improvement_over("static-block"),
            "adaptive_recalibrations": comparison.adaptive.recalibrations,
        })
    publish_block(format_table(table))
    return comparisons


def test_e4_adaptive_beats_static_block_everywhere(farm_scaling):
    for nodes, comparison in farm_scaling.items():
        assert comparison.improvement_over("static-block") > 1.0, (
            f"adaptive farm should beat static-block at {nodes} nodes"
        )


def test_e4_adaptive_at_least_matches_weighted_static(farm_scaling):
    wins = sum(
        1 for comparison in farm_scaling.values()
        if comparison.improvement_over("static-weighted") > 1.0
    )
    # The speed-weighted static farm knows nominal speeds but not dynamic
    # load; the adaptive farm should beat it on most grid sizes.
    assert wins >= len(farm_scaling) - 1


def test_e4_results_are_correct(farm_scaling):
    sweep = make_sweep()
    expected = sweep.expected_outputs()
    for comparison in farm_scaling.values():
        assert comparison.adaptive_result.outputs == pytest.approx(expected)


def test_e4_benchmark_adaptive_farm_16_nodes(benchmark, bench_rounds, farm_scaling):
    benchmark.pedantic(lambda: compare_at(16), rounds=bench_rounds, iterations=1)
