"""E6: statistical vs time-only calibration (ranking-quality ablation).

The paper's Algorithm 1 offers two calibration flavours: ranking on raw
execution times, or "statistical calibration" via univariate/multivariate
regression over execution time, processor load and bandwidth.  This
experiment plants transient load bursts during calibration so raw times
mislead, and compares how well each mode recovers the true (nominal) speed
order and what makespan the resulting node selection achieves.
"""

from __future__ import annotations

import pytest
from scipy import stats as scipy_stats

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.core.grasp import Grasp
from repro.core.parameters import CalibrationConfig, ExecutionConfig, GraspConfig, SelectionPolicy
from repro.core.ranking import RankingMode
from repro.grid.load import StepLoad, ConstantLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridTopology
from repro.workloads.synthetic import SyntheticWorkload

from bench_utils import publish_block


def misleading_grid() -> GridTopology:
    """Fast nodes that are *temporarily* busy during calibration (t < 8).

    Raw-time ranking will under-rate them; load-aware statistical ranking
    should not.
    """
    nodes = [
        GridNode(node_id="fast0", speed=8.0,
                 load_model=StepLoad(steps=[(8.0, 0.0)], initial=0.75)),
        GridNode(node_id="fast1", speed=8.0,
                 load_model=StepLoad(steps=[(8.0, 0.0)], initial=0.75)),
        GridNode(node_id="mid0", speed=4.0, load_model=ConstantLoad(0.05)),
        GridNode(node_id="mid1", speed=4.0, load_model=ConstantLoad(0.05)),
        GridNode(node_id="slow0", speed=1.5, load_model=ConstantLoad(0.0)),
        GridNode(node_id="slow1", speed=1.5, load_model=ConstantLoad(0.0)),
        GridNode(node_id="slow2", speed=1.5, load_model=ConstantLoad(0.0)),
        GridNode(node_id="slow3", speed=1.5, load_model=ConstantLoad(0.0)),
    ]
    return GridTopology(nodes=nodes, wan_latency=1e-4, wan_bandwidth=1e8)


def run_mode(mode: RankingMode):
    workload = SyntheticWorkload(tasks=150, mean_cost=8.0, cost_cv=0.2, seed=6)
    config = GraspConfig(
        calibration=CalibrationConfig(ranking=mode, sample_per_node=2,
                                      selection=SelectionPolicy.COUNT, select_count=4),
        execution=ExecutionConfig(threshold_factor=2.0),
    )
    result = Grasp(workload.farm(), misleading_grid(), config=config).run(workload.items())
    return result


def rank_correlation(result) -> float:
    """Spearman correlation between calibration rank and true speed rank."""
    grid_speeds = {s.node_id: None for s in result.calibration.scores}
    topo = result.compiled.topology
    observed_order = [s.node_id for s in result.calibration.scores]
    true_speed = [topo.node(n).speed for n in observed_order]
    # Fitter rank (position) should correlate with higher true speed.
    rho, _ = scipy_stats.spearmanr(range(len(observed_order)), true_speed)
    return float(-rho)  # flip so +1 = perfect agreement (fitter = faster)


@pytest.fixture(scope="module")
def mode_results():
    results = {mode: run_mode(mode) for mode in RankingMode}
    table = ExperimentTable(
        title="E6 — calibration-mode ablation on a grid whose fast nodes are "
              "busy only during calibration",
        columns=["mode", "makespan", "rank_speed_correlation",
                 "fast_nodes_chosen", "recalibrations"],
        notes="rank_speed_correlation: +1 = calibration ranking equals true speed order",
    )
    for mode, result in results.items():
        chosen_fast = sum(1 for n in result.chosen_nodes if n.startswith("fast"))
        table.add_row({
            "mode": mode.value,
            "makespan": result.makespan,
            "rank_speed_correlation": rank_correlation(result),
            "fast_nodes_chosen": chosen_fast,
            "recalibrations": result.recalibrations,
        })
    publish_block(format_table(table))
    return results


def test_e6_all_modes_produce_correct_outputs(mode_results):
    workload = SyntheticWorkload(tasks=150, mean_cost=8.0, cost_cv=0.2, seed=6)
    expected = workload.expected_outputs()
    for result in mode_results.values():
        assert result.outputs == pytest.approx(expected)


def test_e6_statistical_ranking_not_worse_than_time_only(mode_results):
    time_only = rank_correlation(mode_results[RankingMode.TIME_ONLY])
    univariate = rank_correlation(mode_results[RankingMode.UNIVARIATE])
    multivariate = rank_correlation(mode_results[RankingMode.MULTIVARIATE])
    assert univariate >= time_only - 1e-9
    assert multivariate >= time_only - 1e-9


def test_e6_benchmark_multivariate_calibration_run(benchmark, bench_rounds, mode_results):
    benchmark.pedantic(lambda: run_mode(RankingMode.MULTIVARIATE),
                       rounds=bench_rounds, iterations=1)
