"""E9: calibration-overhead amortisation.

The paper stresses that "the processing performed during the calibration
contributes to the overall job".  This experiment varies the job size and
reports the fraction of the makespan spent in calibration phases and the
adaptive-vs-static outcome: calibration overhead is visible for tiny jobs
and amortises away as the job grows.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import sweep
from repro.analysis.reporting import format_table
from repro.analysis.metrics import adaptation_overhead
from repro.baselines.static_farm import StaticFarm
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.workloads.synthetic import SyntheticWorkload

from bench_utils import make_dynamic_grid, publish_block

TASK_COUNTS = (50, 200, 800, 2000)


def run_pair(tasks: int):
    workload = SyntheticWorkload(tasks=tasks, mean_cost=6.0, cost_cv=0.3, seed=12)
    adaptive = Grasp(workload.farm(), make_dynamic_grid(seed=12, nodes=8),
                     config=GraspConfig.adaptive()).run(workload.items())
    static = StaticFarm(workload.farm(), make_dynamic_grid(seed=12, nodes=8),
                        strategy="weighted").run(workload.items())
    return adaptive, static


@pytest.fixture(scope="module")
def overhead_sweep():
    results = {}

    def run_one(tasks):
        adaptive, static = run_pair(tasks)
        results[tasks] = (adaptive, static)
        return {
            "adaptive_makespan": adaptive.makespan,
            "static_weighted_makespan": static.makespan,
            "calibration_fraction": adaptation_overhead(adaptive),
            "recalibrations": adaptive.recalibrations,
        }

    table = sweep("tasks", list(TASK_COUNTS), run_one,
                  title="E9 — calibration-overhead amortisation vs job size")
    publish_block(format_table(table))
    return table, results


def test_e9_overhead_shrinks_with_job_size(overhead_sweep):
    _, results = overhead_sweep
    fractions = [adaptation_overhead(results[t][0]) for t in TASK_COUNTS]
    assert fractions[-1] < fractions[0]
    assert fractions[-1] < 0.2


def test_e9_calibration_results_counted(overhead_sweep):
    _, results = overhead_sweep
    for tasks, (adaptive, _) in results.items():
        assert adaptive.total_tasks == tasks
        assert any(r.during_calibration for r in adaptive.results)


def test_e9_adaptive_competitive_at_scale(overhead_sweep):
    _, results = overhead_sweep
    adaptive, static = results[TASK_COUNTS[-1]]
    assert adaptive.makespan <= static.makespan * 1.25


def test_e9_benchmark_medium_job(benchmark, bench_rounds, overhead_sweep):
    benchmark.pedantic(lambda: run_pair(200), rounds=bench_rounds, iterations=1)
