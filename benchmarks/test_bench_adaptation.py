"""E3 (Algorithm 2): threshold-triggered recalibration under a load spike.

The fastest nodes of the grid are hit by a heavy competing workload
mid-run; the monitoring rounds breach the performance threshold *Z* and the
farm recalibrates, shifting work onto the still-healthy nodes.  The series
reports, per monitoring round, the minimum normalised time, the threshold
and whether an adaptation fired — the dynamics of Algorithm 2.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.grid.load import StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridTopology
from repro.skeletons.taskfarm import TaskFarm

from bench_utils import publish_block


def spike_grid() -> GridTopology:
    """The two fastest nodes lose ~95% of their capacity at t=5."""
    nodes = [
        GridNode(node_id="n0", speed=1.0),
        GridNode(node_id="n1", speed=1.0),
        GridNode(node_id="n2", speed=2.0),
        GridNode(node_id="n3", speed=2.0),
        GridNode(node_id="n4", speed=8.0,
                 load_model=StepLoad(steps=[(5.0, 0.95)], initial=0.0)),
        GridNode(node_id="n5", speed=8.0,
                 load_model=StepLoad(steps=[(5.0, 0.95)], initial=0.0)),
    ]
    return GridTopology(nodes=nodes, wan_latency=1e-4, wan_bandwidth=1e8, name="spike")


def run_adaptive(threshold_factor: float = 1.5):
    farm = TaskFarm(worker=lambda x: x * x, cost_model=lambda item: 4.0)
    config = GraspConfig.adaptive(threshold_factor=threshold_factor)
    return Grasp(farm, spike_grid(), config=config).run(range(300))


def run_frozen():
    farm = TaskFarm(worker=lambda x: x * x, cost_model=lambda item: 4.0)
    return Grasp(farm, spike_grid(), config=GraspConfig.non_adaptive()).run(range(300))


@pytest.fixture(scope="module")
def adaptation_runs():
    adaptive = run_adaptive()
    frozen = run_frozen()

    rounds = ExperimentTable(
        title="E3 / Algorithm 2 — monitoring rounds under a t=5 load spike (adaptive farm)",
        columns=["round", "min_unit_time", "threshold_Z", "breached", "action",
                 "workers_after"],
    )
    for rnd in adaptive.execution.rounds:
        rounds.add_row({
            "round": rnd.index,
            "min_unit_time": rnd.min_time,
            "threshold_Z": rnd.threshold if rnd.threshold != float("inf") else None,
            "breached": rnd.breached,
            "action": rnd.action.value if rnd.action else "-",
            "workers_after": len(rnd.chosen_after),
        })
    publish_block(format_table(rounds))

    summary = ExperimentTable(
        title="E3 — adaptive vs non-adaptive makespan under the spike",
        columns=["variant", "makespan", "recalibrations", "breaches"],
        notes="both runs use identical grids, load traces and task sets",
    )
    summary.add_row({"variant": "grasp-adaptive", "makespan": adaptive.makespan,
                     "recalibrations": adaptive.recalibrations,
                     "breaches": adaptive.execution.breaches})
    summary.add_row({"variant": "calibrate-once (no adaptation)",
                     "makespan": frozen.makespan,
                     "recalibrations": frozen.recalibrations,
                     "breaches": frozen.execution.breaches})
    publish_block(format_table(summary))
    return adaptive, frozen


def test_e3_spike_triggers_adaptation(adaptation_runs):
    adaptive, _ = adaptation_runs
    assert adaptive.execution.breaches >= 1
    assert adaptive.recalibrations >= 1


def test_e3_adaptive_beats_frozen(adaptation_runs):
    adaptive, frozen = adaptation_runs
    assert adaptive.makespan < frozen.makespan


def test_e3_outputs_identical(adaptation_runs):
    adaptive, frozen = adaptation_runs
    assert adaptive.outputs == frozen.outputs == [x * x for x in range(300)]


def test_e3_benchmark_adaptive_spike_run(benchmark, bench_rounds, adaptation_runs):
    benchmark.pedantic(run_adaptive, rounds=bench_rounds, iterations=1)
