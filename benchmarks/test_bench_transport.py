"""Transport benchmark: the shared-memory data plane vs inline pickles.

The dispatch benchmark measures the control plane at ~0 payload bytes;
this module measures the *data* plane: a farm of 8MiB numpy-array tasks
whose worker returns an equally large result, so every dispatch moves
~16MiB of real data.  With the computation at ~0, wall time is pure
payload transport — serialise, ship, reconstruct — and MB/s / tasks/sec
are the figures of merit.

``BENCH_transport.json`` (repo root, tracked) records the comparison on
the process backend and a localhost 2-worker cluster, shared-memory data
plane on (default threshold) versus off (``shm_threshold=0``, the classic
inline path).  The acceptance criterion for the data-plane PR is a >= 2x
tasks/sec advantage for shm-on on the process backend — asserted here,
in-benchmark, and smoke-run in CI.

Workers inherit this interpreter's ``sys.path``, so the module-level
worker below pickles by reference and resolves inside the agents.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Sequence

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.backends import ProcessBackend
from repro.backends.shm import SEGMENT_PREFIX
from repro.cluster import LocalCluster
from repro.skeletons.base import Task

from bench_utils import make_dedicated_grid, publish_block

#: Where the tracked measurement lands (repo root).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_transport.json"

#: One payload: 1M float64 = 8 MiB; the worker returns as much back.
PAYLOAD_ELEMS = 1024 * 1024
PAYLOAD_BYTES = PAYLOAD_ELEMS * 8
TASKS = 24
WORKERS = 2
REPEATS = 3          # best-of to absorb runner noise

#: Acceptance criterion: the shared-memory data plane must deliver >= 2x
#: tasks/sec over the inline path on the process backend at this payload
#: size (measured headroom is well above the floor).
PROCESS_SHM_SPEEDUP_FLOOR = 2.0


def double_array(task: Task) -> np.ndarray:
    """~0-cost transform returning a result as large as the payload."""
    return task.payload * 2.0


def run_payload_farm(backend, nodes: Sequence[str], count: int):
    """Round-robin ``count`` 8MiB tasks over ``nodes``; verify + time."""
    base = np.arange(PAYLOAD_ELEMS, dtype=np.float64)
    tasks = [Task(task_id=i, payload=base + i) for i in range(count)]
    master = nodes[0]
    start = time.perf_counter()
    handles = [backend.dispatch(task, nodes[i % len(nodes)], double_array,
                                master_node=master, at_time=backend.now)
               for i, task in enumerate(tasks)]
    outputs = [handle.outcome().output for handle in handles]
    elapsed = time.perf_counter() - start
    for i, out in enumerate(outputs):
        assert out.shape == (PAYLOAD_ELEMS,)
        assert out[0] == 2.0 * i and out[-1] == 2.0 * (PAYLOAD_ELEMS - 1 + i)
    return elapsed


def _measure(backend, nodes: Sequence[str]) -> float:
    run_payload_farm(backend, nodes, 4)                     # warm-up
    return min(run_payload_farm(backend, nodes, TASKS)
               for _ in range(REPEATS))


def _row(backend_name: str, plane: str, elapsed: float) -> dict:
    moved = TASKS * 2 * PAYLOAD_BYTES
    return {
        "backend": backend_name,
        "data_plane": plane,
        "tasks": TASKS,
        "payload_mib": PAYLOAD_BYTES / 2 ** 20,
        "wall_seconds": elapsed,
        "tasks_per_sec": TASKS / elapsed if elapsed else float("inf"),
        "mb_per_sec": (moved / 2 ** 20) / elapsed if elapsed else float("inf"),
    }


def leaked_segments() -> List[str]:
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(SEGMENT_PREFIX))
    except OSError:  # pragma: no cover - non-POSIX-shm host
        return []


@pytest.fixture(scope="module")
def transport_comparison():
    grid = make_dedicated_grid(nodes=WORKERS)
    nodes = list(grid.node_ids)
    rows: List[dict] = []

    for plane, threshold in (("shm", None), ("inline", 0)):
        backend = ProcessBackend(topology=grid, shm_threshold=threshold)
        try:
            rows.append(_row("process", plane, _measure(backend, nodes)))
        finally:
            backend.close()

    for plane, threshold in (("shm", None), ("inline", 0)):
        with LocalCluster(workers=nodes, shm_threshold=threshold) as cluster:
            backend = cluster.backend(topology=grid)
            try:
                rows.append(_row("cluster", plane, _measure(backend, nodes)))
            finally:
                backend.close()

    by_key = {(row["backend"], row["data_plane"]): row for row in rows}
    process_speedup = (by_key[("process", "shm")]["tasks_per_sec"]
                       / by_key[("process", "inline")]["tasks_per_sec"])
    cluster_speedup = (by_key[("cluster", "shm")]["tasks_per_sec"]
                       / by_key[("cluster", "inline")]["tasks_per_sec"])

    table = ExperimentTable(
        title="ET — payload transport: 8MiB-array farm, shm vs inline",
        columns=["backend", "data_plane", "tasks", "payload_mib",
                 "wall_seconds", "tasks_per_sec", "mb_per_sec"],
        notes=(f"{TASKS} tasks x ({PAYLOAD_BYTES / 2 ** 20:.0f} MiB args + "
               f"{PAYLOAD_BYTES / 2 ** 20:.0f} MiB result) over {WORKERS} "
               f"workers, best of {REPEATS}; process shm speedup "
               f"{process_speedup:.2f}x (floor "
               f"{PROCESS_SHM_SPEEDUP_FLOOR}x), cluster "
               f"{cluster_speedup:.2f}x"),
    )
    for row in rows:
        table.add_row(row)
    publish_block(format_table(table))

    report = {
        "benchmark": "payload-transport",
        "schema": 1,
        "host": {"cpus": os.cpu_count()},
        "workers": WORKERS,
        "tasks": TASKS,
        "payload_bytes": PAYLOAD_BYTES,
        "rows": rows,
        "process_shm_speedup": process_speedup,
        "cluster_shm_speedup": cluster_speedup,
        "process_shm_speedup_floor": PROCESS_SHM_SPEEDUP_FLOOR,
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_et_bench_json_written(transport_comparison):
    recorded = json.loads(BENCH_JSON.read_text())
    assert recorded["benchmark"] == "payload-transport"
    assert len(recorded["rows"]) == 4
    assert {(row["backend"], row["data_plane"])
            for row in recorded["rows"]} == {
        ("process", "shm"), ("process", "inline"),
        ("cluster", "shm"), ("cluster", "inline"),
    }


def test_et_process_shm_speedup_floor(transport_comparison):
    """Acceptance: shm-on moves 8MiB payloads >= 2x faster than inline."""
    speedup = transport_comparison["process_shm_speedup"]
    assert speedup >= PROCESS_SHM_SPEEDUP_FLOOR, (
        f"shared-memory data plane reached only {speedup:.2f}x over the "
        f"inline path on the process backend (floor "
        f"{PROCESS_SHM_SPEEDUP_FLOOR}x)")


def test_et_no_leaked_segments(transport_comparison):
    """Every backend above closed; /dev/shm must hold no grasp-* entry."""
    assert leaked_segments() == []
