"""E2 (Algorithm 1): calibration — fittest-node selection under heterogeneity.

Reproduces the calibration behaviour the paper describes: a sample is run on
every node, nodes are ranked by extrapolated performance, and the fittest
subset is selected.  The table reports each node's nominal speed, its
calibrated score and whether it was chosen.
"""

from __future__ import annotations

import collections

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.core.calibration import calibrate
from repro.core.parameters import CalibrationConfig, SelectionPolicy
from repro.grid.simulator import GridSimulator
from repro.workloads.synthetic import SyntheticWorkload

from bench_utils import make_dynamic_grid, publish_block


def run_calibration(seed: int = 2, nodes: int = 16, spread: float = 8.0):
    grid = make_dynamic_grid(seed=seed, nodes=nodes, spread=spread, mean_level=0.25)
    sim = GridSimulator(grid)
    workload = SyntheticWorkload(tasks=200, mean_cost=10.0, seed=seed)
    farm = workload.farm()
    tasks = collections.deque(farm.make_tasks(workload.items()))
    config = CalibrationConfig(selection=SelectionPolicy.CUTOFF, cutoff_ratio=3.0)
    report = calibrate(tasks, grid.node_ids, farm.execute_task, sim, config,
                       master_node=grid.node_ids[0], min_nodes=2, at_time=0.0)
    return grid, report


@pytest.fixture(scope="module")
def calibration_run():
    grid, report = run_calibration()
    speeds = grid.speeds()
    table = ExperimentTable(
        title="E2 / Algorithm 1 — calibration ranking (16-node grid, 8x spread)",
        columns=["rank", "node", "nominal_speed", "score_s_per_unit", "chosen"],
        notes=f"calibration took {report.duration:.3f} virtual s; "
              f"{report.consumed_tasks} sample tasks counted toward the job",
    )
    for rank, score in enumerate(report.scores):
        table.add_row({
            "rank": rank,
            "node": score.node_id,
            "nominal_speed": speeds[score.node_id],
            "score_s_per_unit": score.score,
            "chosen": score.node_id in report.chosen,
        })
    publish_block(format_table(table))
    return grid, report


def test_e2_fittest_nodes_selected(calibration_run):
    grid, report = calibration_run
    speeds = grid.speeds()
    chosen_speeds = [speeds[n] for n in report.chosen]
    assert max(chosen_speeds) == pytest.approx(max(speeds.values()))
    assert len(report.chosen) >= 2


def test_e2_calibration_contributes_to_job(calibration_run):
    _, report = calibration_run
    assert len(report.results) == report.consumed_tasks
    assert all(r.during_calibration for r in report.results)
    assert report.consumed_tasks == len(report.observations)


def test_e2_benchmark_calibration(benchmark, bench_rounds, calibration_run):
    benchmark.pedantic(run_calibration, rounds=bench_rounds, iterations=1)
