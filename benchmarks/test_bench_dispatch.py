"""Dispatch-overhead benchmark: tasks/sec at ~zero task cost.

The adaptive runtime's scheduling decisions are only as cheap as its
dispatch primitive, so this module measures the *hot path itself*: a farm
of no-op tasks (the work is returning the payload) pushed through the
process backend and a localhost 2-worker cluster, chunked and unchunked.
With the computation at ~0, wall time is pure dispatch overhead —
serialisation, framing, queueing, result fan-in — and tasks/sec is the
figure of merit.

Two questions are answered and recorded in ``BENCH_dispatch.json`` (repo
root, tracked so the trajectory across PRs is reviewable):

* **Throughput** (ED table): tasks/sec per backend × {unchunked, chunked}
  at ~0 task cost.  A conservative floor is asserted so CI catches a
  dispatch-path regression without flaking on slow runners.
* **Registry speedup** (ED-registry table): the v2 payload registry
  (preserialise the shared callable once, PUT_PAYLOAD once per node,
  per-task frames carry only args) versus the legacy per-dispatch pickle
  path, on the *same* live cluster, with a worker callable carrying ~2 MB
  of closed-over state.  The acceptance criterion for the wire-transport
  PR is a ≥ 3x tasks/sec advantage — asserted here, in-benchmark, against
  a real ``payload_registry=False`` run.

Workers inherit this interpreter's ``sys.path``, so the module-level
callables below pickle by reference and resolve inside the agents.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.backends import ProcessBackend
from repro.cluster import ClusterBackend, LocalCluster
from repro.skeletons.base import Task

from bench_utils import make_dedicated_grid, publish_block

#: Where the tracked measurement lands (repo root).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_dispatch.json"

#: No-op farm size (ISSUE band: 2k–10k) and chunking factor.
NOOP_TASKS = 2_000
CHUNK = 32
WORKERS = 2

#: Closed-over state of the heavy worker callable (~2 MB) and how many
#: ~0-cost tasks reference it in the registry-vs-legacy comparison.  In
#: legacy mode every dispatch re-pickles and re-ships the 2 MB; in
#: registry mode it crosses the wire once per worker.
HEAVY_BYTES = 2 * 1024 * 1024
HEAVY_TASKS = 96

#: Acceptance criterion: registry mode must deliver >= 3x tasks/sec over
#: the per-dispatch-pickle path on the cluster backend at ~0 task cost.
REGISTRY_SPEEDUP_FLOOR = 3.0

#: Conservative CI floor on the best cluster tasks/sec (a loopback
#: 2-worker cluster reaches thousands/sec; 50/s only trips on a real
#: dispatch-path regression, not on a loaded runner).
CLUSTER_TASKS_PER_SEC_FLOOR = 50.0

#: Acceptance criterion: full tracing (in-memory ring + JSONL sink, two
#: events per dispatch) must keep the hot path within 5% of tracing-off.
#: The sink serialises and writes on a background thread, so on any
#: multi-core host that work overlaps the dispatch loop.  On a
#: single-core host overlap is arithmetically impossible — every
#: microsecond of writer CPU comes straight out of throughput (the full
#: record-to-disk pipeline costs ~5us/event) — so such hosts get a
#: documented allowance instead of a vacuous failure.
TRACING_OVERHEAD_CEILING = 1.05 if (os.cpu_count() or 1) > 1 else 1.15
#: Measured over more tasks than the throughput rows: scheduler noise
#: on shared runners is bursty at the ~50-100ms scale, so each sample
#: must be long enough (~0.5s) to absorb bursts rather than be ruined
#: by them.
TRACING_TASKS = 50_000
TRACING_PAIRS = 5


def noop_worker(task: Task) -> int:
    """~0-cost task body: dispatch overhead is everything else."""
    return task.payload


class HeavyStateWorker:
    """A worker callable dragging ~2 MB of shared state through pickle.

    Models the common real shape — a closure over a model, a table, a
    corpus — where per-dispatch payload shipping is the dominant cost.
    """

    def __init__(self, nbytes: int = HEAVY_BYTES):
        self.table = b"\x00" * nbytes

    def __call__(self, task: Task) -> int:
        return task.payload + len(self.table) - len(self.table)


def run_farm(backend, nodes: Sequence[str], count: int, worker,
             chunk: Optional[int] = None):
    """Round-robin ``count`` no-op tasks over ``nodes``; return outputs + wall.

    All dispatches are submitted up front (the runtime keeps every worker's
    queue non-empty on a saturated farm), then outcomes are drained.
    """
    tasks = [Task(task_id=i, payload=i) for i in range(count)]
    master = nodes[0]
    start = time.perf_counter()
    handles = []
    if chunk is None:
        for i, task in enumerate(tasks):
            node = nodes[i % len(nodes)]
            handles.append(backend.dispatch(
                task, node, worker, master_node=master,
                at_time=backend.now))
        outputs = [handle.outcome().output for handle in handles]
    else:
        groups = [tasks[i:i + chunk] for i in range(0, count, chunk)]
        for i, group in enumerate(groups):
            node = nodes[i % len(nodes)]
            handles.append(backend.dispatch_chunk(
                group, node, worker, master_node=master,
                at_time=backend.now))
        outputs = [outcome.output
                   for handle in handles
                   for outcome in handle.outcome().outcomes]
    elapsed = time.perf_counter() - start
    return outputs, elapsed


def _row(backend_name: str, payload: str, mode: str, count: int,
         elapsed: float) -> dict:
    return {
        "backend": backend_name,
        "payload": payload,
        "mode": mode,
        "tasks": count,
        "wall_seconds": elapsed,
        "tasks_per_sec": count / elapsed if elapsed else float("inf"),
    }


@pytest.fixture(scope="module")
def dispatch_comparison():
    grid = make_dedicated_grid(nodes=WORKERS)
    nodes = list(grid.node_ids)
    rows: List[dict] = []
    expected = list(range(NOOP_TASKS))

    process = ProcessBackend(topology=grid)
    try:
        for mode, chunk in (("unchunked", None), ("chunked", CHUNK)):
            outputs, elapsed = run_farm(process, nodes, NOOP_TASKS,
                                        noop_worker, chunk=chunk)
            assert sorted(outputs) == expected
            rows.append(_row("process", "noop", mode, NOOP_TASKS, elapsed))
    finally:
        process.close()

    heavy = HeavyStateWorker()
    heavy_expected = list(range(HEAVY_TASKS))
    with LocalCluster(workers=nodes) as cluster:
        registry = ClusterBackend(coordinator=cluster.coordinator,
                                  topology=grid)
        try:
            for mode, chunk in (("unchunked", None), ("chunked", CHUNK)):
                outputs, elapsed = run_farm(registry, nodes, NOOP_TASKS,
                                            noop_worker, chunk=chunk)
                assert sorted(outputs) == expected
                rows.append(_row("cluster", "noop", mode, NOOP_TASKS,
                                 elapsed))
        finally:
            registry.close()

        # Registry vs legacy on the same live cluster, heavy shared state.
        legacy = ClusterBackend(coordinator=cluster.coordinator,
                                topology=grid, payload_registry=False)
        try:
            legacy_out, legacy_s = run_farm(legacy, nodes, HEAVY_TASKS,
                                            heavy)
            assert sorted(legacy_out) == heavy_expected
        finally:
            legacy.close()
        registry2 = ClusterBackend(coordinator=cluster.coordinator,
                                   topology=grid)
        try:
            registry_out, registry_s = run_farm(registry2, nodes,
                                                HEAVY_TASKS, heavy)
            assert registry_out == legacy_out
        finally:
            registry2.close()

    legacy_rate = HEAVY_TASKS / legacy_s if legacy_s else float("inf")
    registry_rate = HEAVY_TASKS / registry_s if registry_s else float("inf")
    speedup = (registry_rate / legacy_rate if legacy_rate else float("inf"))

    table = ExperimentTable(
        title="ED — dispatch overhead: tasks/sec at ~0 task cost",
        columns=["backend", "payload", "mode", "tasks", "wall_seconds",
                 "tasks_per_sec"],
        notes=(f"{NOOP_TASKS} no-op tasks over {WORKERS} workers, "
               f"chunk={CHUNK}; wall time is pure dispatch overhead"),
    )
    for row in rows:
        table.add_row(row)
    publish_block(format_table(table))

    registry_table = ExperimentTable(
        title="ED-registry — payload registry vs per-dispatch pickle, "
              "cluster backend",
        columns=["mode", "tasks", "wall_seconds", "tasks_per_sec"],
        notes=(f"{HEAVY_TASKS} ~0-cost tasks sharing one "
               f"{HEAVY_BYTES / 2 ** 20:.0f} MB worker callable; legacy "
               "re-ships it per dispatch, the registry ships it once per "
               f"worker (floor: {REGISTRY_SPEEDUP_FLOOR}x)"),
    )
    registry_table.add_row({"mode": "legacy-by-value", "tasks": HEAVY_TASKS,
                            "wall_seconds": legacy_s,
                            "tasks_per_sec": legacy_rate})
    registry_table.add_row({"mode": "payload-registry", "tasks": HEAVY_TASKS,
                            "wall_seconds": registry_s,
                            "tasks_per_sec": registry_rate})
    publish_block(format_table(registry_table))

    report = {
        "benchmark": "dispatch-overhead",
        "schema": 1,
        "host": {"cpus": os.cpu_count()},
        "workers": WORKERS,
        "noop_tasks": NOOP_TASKS,
        "chunk": CHUNK,
        "rows": rows,
        "registry_vs_legacy": {
            "backend": "cluster",
            "shared_state_bytes": HEAVY_BYTES,
            "tasks": HEAVY_TASKS,
            "legacy_tasks_per_sec": legacy_rate,
            "registry_tasks_per_sec": registry_rate,
            "speedup": speedup,
            "floor": REGISTRY_SPEEDUP_FLOOR,
        },
        "cluster_tasks_per_sec_floor": CLUSTER_TASKS_PER_SEC_FLOOR,
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_ed_bench_json_written(dispatch_comparison):
    recorded = json.loads(BENCH_JSON.read_text())
    assert recorded["benchmark"] == "dispatch-overhead"
    assert len(recorded["rows"]) == 4
    assert {row["backend"] for row in recorded["rows"]} == {"process",
                                                            "cluster"}


def test_ed_registry_speedup_floor(dispatch_comparison):
    """Acceptance: the payload registry beats per-dispatch pickling >= 3x."""
    comparison = dispatch_comparison["registry_vs_legacy"]
    assert comparison["speedup"] >= REGISTRY_SPEEDUP_FLOOR, (
        f"payload registry reached only {comparison['speedup']:.2f}x over "
        f"the legacy per-dispatch pickle path "
        f"({comparison['registry_tasks_per_sec']:.0f}/s vs "
        f"{comparison['legacy_tasks_per_sec']:.0f}/s)"
    )


def test_ed_cluster_throughput_floor(dispatch_comparison):
    """CI smoke: dispatch-path regressions trip this, runner noise doesn't."""
    cluster_rates = [row["tasks_per_sec"]
                     for row in dispatch_comparison["rows"]
                     if row["backend"] == "cluster"]
    assert max(cluster_rates) >= CLUSTER_TASKS_PER_SEC_FLOOR, (
        f"best cluster dispatch rate {max(cluster_rates):.0f} tasks/s is "
        f"below the {CLUSTER_TASKS_PER_SEC_FLOOR} tasks/s floor"
    )


def test_ed_tracing_overhead_within_five_percent(tmp_path):
    """Acceptance: tracing on (ring + JSONL sink) costs <= 5% throughput
    (see TRACING_OVERHEAD_CEILING for the single-core allowance).

    The comparison runs the benchmark's standard chunked configuration
    (the same CHUNK as the headline rows — the runtime's dispatch shape
    in every real run): two trace events per chunk, each fully recorded
    (ring + line-buffered JSONL through the sink's writer thread).
    Per *event* the full record-to-disk path costs single-digit
    microseconds — at ~0-cost unchunked tasks that alone is ~10% of a
    dispatch, which is why the supported regime (and this assertion) is
    chunked dispatch.

    Shared runners drift by more than 5% between back-to-back identical
    runs, so a single paired ratio is noise, not signal.  The two modes
    run back to back repeatedly (order alternating so monotonic drift
    samples both modes evenly), and the asserted overhead is
    ``min(on) / min(off)`` — the timeit statistic.  Scheduler
    interference only ever *adds* time, while tracing's true cost is
    present in every traced run, so the per-mode minimum isolates the
    real overhead without masking a genuine regression.
    """
    from repro.utils.tracing import JsonlTraceSink, Tracer

    grid = make_dedicated_grid(nodes=WORKERS)
    nodes = list(grid.node_ids)
    backend = ProcessBackend(topology=grid)
    tracer = Tracer()
    tracer.attach(JsonlTraceSink(tmp_path / "bench-trace.jsonl"))
    tracer.bind_clock(lambda: backend.now)
    expected = list(range(TRACING_TASKS))
    ratios: List[float] = []
    best = {"off": float("inf"), "on": float("inf")}
    try:
        run_farm(backend, nodes, TRACING_TASKS, noop_worker,
                 chunk=CHUNK)                               # warm-up
        modes = (("off", None), ("on", tracer))
        for i in range(TRACING_PAIRS):
            pair = {}
            for mode, active in (modes if i % 2 == 0 else modes[::-1]):
                backend.tracer = active
                outputs, elapsed = run_farm(backend, nodes,
                                            TRACING_TASKS, noop_worker,
                                            chunk=CHUNK)
                assert sorted(outputs) == expected
                pair[mode] = elapsed
                best[mode] = min(best[mode], elapsed)
            ratios.append(pair["on"] / pair["off"])
    finally:
        backend.tracer = None
        backend.close()
        tracer.close()

    issues = len(tracer.filter("dispatch.issue"))
    assert issues > 0
    assert len(tracer.filter("dispatch.resolve")) == issues
    overhead = best["on"] / best["off"]

    table = ExperimentTable(
        title="ED-tracing — dispatch throughput, tracing on vs off",
        columns=["tracing", "tasks", "wall_seconds", "tasks_per_sec"],
        notes=(f"{TRACING_TASKS} no-op tasks, process backend, "
               f"chunk={CHUNK}; best over {TRACING_PAIRS} paired "
               f"repeats, overhead = best-on/best-off ratio "
               f"{overhead:.3f}x (ceiling {TRACING_OVERHEAD_CEILING}x)"),
    )
    for mode in ("off", "on"):
        rate = (TRACING_TASKS / best[mode]
                if best[mode] else float("inf"))
        table.add_row({"tracing": mode, "tasks": TRACING_TASKS,
                       "wall_seconds": best[mode],
                       "tasks_per_sec": rate})
    publish_block(format_table(table))

    assert overhead <= TRACING_OVERHEAD_CEILING, (
        f"tracing overhead best-on/best-off {overhead:.3f}x (per-pair "
        f"ratios: {[round(r, 3) for r in ratios]}) exceeds the "
        f"{TRACING_OVERHEAD_CEILING}x ceiling"
    )


def test_ed_metrics_overhead_within_budget():
    """Acceptance: metrics on (counters + in-flight gauges + latency and
    chunk-size histograms per dispatch) fits the same throughput budget
    as tracing (``TRACING_OVERHEAD_CEILING``).

    Identical methodology to the tracing assertion above — the standard
    chunked configuration, alternating paired runs, overhead judged on
    ``min(on) / min(off)`` so runner noise cannot mask or manufacture a
    regression.  Metrics writes are cheaper than trace events (one
    per-instrument lock, no serialisation, no sink thread), so the shared
    ceiling leaves headroom rather than barely fitting.
    """
    from repro.metrics import MetricsRegistry

    grid = make_dedicated_grid(nodes=WORKERS)
    nodes = list(grid.node_ids)
    backend = ProcessBackend(topology=grid)
    registry = MetricsRegistry()
    expected = list(range(TRACING_TASKS))
    ratios: List[float] = []
    best = {"off": float("inf"), "on": float("inf")}
    try:
        run_farm(backend, nodes, TRACING_TASKS, noop_worker,
                 chunk=CHUNK)                               # warm-up
        modes = (("off", None), ("on", registry))
        for i in range(TRACING_PAIRS):
            pair = {}
            for mode, active in (modes if i % 2 == 0 else modes[::-1]):
                backend.metrics = active
                outputs, elapsed = run_farm(backend, nodes,
                                            TRACING_TASKS, noop_worker,
                                            chunk=CHUNK)
                assert sorted(outputs) == expected
                pair[mode] = elapsed
                best[mode] = min(best[mode], elapsed)
            ratios.append(pair["on"] / pair["off"])
    finally:
        backend.metrics = None
        backend.close()

    issued = registry.total("dispatch.issued")
    assert issued > 0
    assert issued == (registry.total("dispatch.resolved")
                      + registry.total("dispatch.lost"))
    assert registry.total("dispatch.in_flight") == 0.0
    overhead = best["on"] / best["off"]

    table = ExperimentTable(
        title="ED-metrics — dispatch throughput, metrics on vs off",
        columns=["metrics", "tasks", "wall_seconds", "tasks_per_sec"],
        notes=(f"{TRACING_TASKS} no-op tasks, process backend, "
               f"chunk={CHUNK}; best over {TRACING_PAIRS} paired "
               f"repeats, overhead = best-on/best-off ratio "
               f"{overhead:.3f}x (ceiling {TRACING_OVERHEAD_CEILING}x)"),
    )
    for mode in ("off", "on"):
        rate = (TRACING_TASKS / best[mode]
                if best[mode] else float("inf"))
        table.add_row({"metrics": mode, "tasks": TRACING_TASKS,
                       "wall_seconds": best[mode],
                       "tasks_per_sec": rate})
    publish_block(format_table(table))

    assert overhead <= TRACING_OVERHEAD_CEILING, (
        f"metrics overhead best-on/best-off {overhead:.3f}x (per-pair "
        f"ratios: {[round(r, 3) for r in ratios]}) exceeds the "
        f"{TRACING_OVERHEAD_CEILING}x ceiling"
    )


def test_ed_auto_chunk_at_least_unchunked():
    """Acceptance: ``chunk_size="auto"`` never loses to unchunked dispatch
    on this module's workload (~0-cost tasks, process backend).

    The resolver sizes chunks from the backend's *measured* per-dispatch
    overhead against the calibration sample's mean task duration; at ~0
    task cost overhead dominates, so auto must pick a real chunk (> 1)
    and at least match task-at-a-time throughput — in practice it wins by
    the same margin as the headline chunked rows.
    """
    from repro.core.calibration import (CalibrationObservation,
                                        CalibrationReport)
    from repro.core.plan_executor import resolve_auto_chunk
    from repro.core.ranking import RankingMode

    grid = make_dedicated_grid(nodes=WORKERS)
    nodes = list(grid.node_ids)
    backend = ProcessBackend(topology=grid)
    try:
        # Calibration-style sample: a few individually dispatched tasks
        # whose observed durations feed the resolver, as in a real run.
        sample = []
        for i in range(8):
            outcome = backend.dispatch(
                Task(task_id=i, payload=i), nodes[i % len(nodes)],
                noop_worker, master_node=nodes[0], at_time=backend.now,
            ).outcome()
            sample.append(CalibrationObservation(
                node_id=outcome.node_id, task_id=i, cost=1.0,
                duration=outcome.duration, unit_time=outcome.duration,
                load=0.0, bandwidth=1e9, started=outcome.exec_started,
                finished=outcome.exec_finished))
        report = CalibrationReport(started=0.0, finished=1.0,
                                   mode=RankingMode.TIME_ONLY,
                                   observations=sample, chosen=nodes)
        chunk = resolve_auto_chunk(backend, report, n_tasks=NOOP_TASKS,
                                   n_workers=len(nodes))
        assert chunk > 1, (
            f"auto resolved chunk={chunk} although per-dispatch overhead "
            "dominates ~0-cost tasks")

        expected = list(range(NOOP_TASKS))
        run_farm(backend, nodes, NOOP_TASKS, noop_worker)       # warm-up
        outputs, unchunked_s = run_farm(backend, nodes, NOOP_TASKS,
                                        noop_worker)
        assert sorted(outputs) == expected
        outputs, auto_s = run_farm(backend, nodes, NOOP_TASKS, noop_worker,
                                   chunk=chunk)
        assert sorted(outputs) == expected
    finally:
        backend.close()

    unchunked_rate = NOOP_TASKS / unchunked_s
    auto_rate = NOOP_TASKS / auto_s
    table = ExperimentTable(
        title="ED-auto — auto-chunked vs unchunked dispatch",
        columns=["mode", "chunk", "tasks", "wall_seconds", "tasks_per_sec"],
        notes=(f"{NOOP_TASKS} no-op tasks over {WORKERS} workers; chunk "
               "resolved from measured dispatch overhead and sampled "
               "task durations"),
    )
    table.add_row({"mode": "unchunked", "chunk": 1, "tasks": NOOP_TASKS,
                   "wall_seconds": unchunked_s,
                   "tasks_per_sec": unchunked_rate})
    table.add_row({"mode": "auto", "chunk": chunk, "tasks": NOOP_TASKS,
                   "wall_seconds": auto_s, "tasks_per_sec": auto_rate})
    publish_block(format_table(table))

    assert auto_rate >= unchunked_rate, (
        f"auto chunking (chunk={chunk}, {auto_rate:.0f}/s) lost to "
        f"unchunked dispatch ({unchunked_rate:.0f}/s)")


def test_ed_benchmark_cluster_dispatch(benchmark, bench_rounds,
                                       dispatch_comparison):
    grid = make_dedicated_grid(nodes=WORKERS)
    nodes = list(grid.node_ids)
    with LocalCluster(workers=nodes) as cluster:
        backend = ClusterBackend(coordinator=cluster.coordinator,
                                 topology=grid)
        try:
            benchmark.pedantic(
                lambda: run_farm(backend, nodes, 400, noop_worker,
                                 chunk=CHUNK),
                rounds=bench_rounds, iterations=1)
        finally:
            backend.close()
