"""E12: forecaster ablation — predicting node load for statistical calibration.

The monitoring layer forecasts near-future node load (the input to the
statistical calibration modes).  This experiment replays synthetic load
traces through each forecaster and reports the mean absolute one-step-ahead
error; the adaptive (best-of-breed) selector should track the best
individual predictor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.grid.traces import generate_trace
from repro.monitor.forecasters import (
    AdaptiveForecaster,
    ExponentialSmoothingForecaster,
    LastValueForecaster,
    MeanForecaster,
    MedianForecaster,
    SlidingWindowForecaster,
)
from repro.monitor.history import TimeSeries

from bench_utils import publish_block

N_TRACES = 12
TRACE_DURATION = 600.0

FORECASTERS = {
    "last-value": LastValueForecaster(),
    "running-mean": MeanForecaster(),
    "window-8": SlidingWindowForecaster(window=8),
    "median-8": MedianForecaster(window=8),
    "ewma-0.3": ExponentialSmoothingForecaster(alpha=0.3),
    "ewma-0.7": ExponentialSmoothingForecaster(alpha=0.7),
    "adaptive-nws": AdaptiveForecaster(),
}


def trace_values(seed: int):
    trace = generate_trace(f"node{seed}", duration=TRACE_DURATION, step=5.0, seed=seed,
                           burst_probability=0.08)
    return list(trace.levels)


def adaptive_online_error(values) -> float:
    """One-step-ahead error of the adaptive selector applied online."""
    forecaster = AdaptiveForecaster()
    series = TimeSeries(capacity=len(values))
    errors = []
    for index, value in enumerate(values):
        if index > 0:
            prediction = forecaster.predict(series)
            if not np.isnan(prediction):
                errors.append(abs(prediction - value))
        series.append(float(index), float(value))
    return float(np.mean(errors))


@pytest.fixture(scope="module")
def forecaster_errors():
    traces = [trace_values(seed) for seed in range(N_TRACES)]
    errors = {}
    for name, forecaster in FORECASTERS.items():
        if name == "adaptive-nws":
            errors[name] = float(np.mean([adaptive_online_error(v) for v in traces]))
        else:
            errors[name] = float(np.mean([forecaster.evaluate(v) for v in traces]))

    table = ExperimentTable(
        title="E12 — load-forecaster ablation (mean absolute one-step error, "
              f"{N_TRACES} synthetic traces)",
        columns=["forecaster", "mean_abs_error"],
        notes="lower is better; adaptive-nws selects among the others online",
    )
    for name, error in sorted(errors.items(), key=lambda kv: kv[1]):
        table.add_row({"forecaster": name, "mean_abs_error": error})
    publish_block(format_table(table))
    return errors


def test_e12_all_errors_are_finite_and_positive(forecaster_errors):
    for error in forecaster_errors.values():
        assert np.isfinite(error)
        assert error > 0


def test_e12_smoothing_beats_raw_persistence_on_bursty_traces(forecaster_errors):
    assert forecaster_errors["median-8"] <= forecaster_errors["last-value"]


def test_e12_adaptive_close_to_best_individual(forecaster_errors):
    individual = {k: v for k, v in forecaster_errors.items() if k != "adaptive-nws"}
    best = min(individual.values())
    assert forecaster_errors["adaptive-nws"] <= best * 1.25


def test_e12_benchmark_adaptive_forecaster(benchmark, bench_rounds, forecaster_errors):
    values = trace_values(0)
    benchmark.pedantic(lambda: adaptive_online_error(values),
                       rounds=bench_rounds, iterations=1)
