"""E1 (Figure 1): the four-phase GRASP methodology trace.

Reproduces the paper's Figure 1 as a machine-checkable artefact: a run's
phase timeline (programming → compilation → calibration → execution, with
the feedback edge back to calibration) and the virtual time spent in each
phase.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.core.phases import Phase
from repro.workloads.synthetic import SyntheticWorkload

from bench_utils import make_dynamic_grid, publish_block


def run_trace():
    workload = SyntheticWorkload(tasks=80, mean_cost=8.0, cost_cv=0.3, seed=1)
    grid = make_dynamic_grid(seed=1)
    return Grasp(workload.farm(), grid, config=GraspConfig.adaptive()).run(
        workload.items()
    )


@pytest.fixture(scope="module")
def trace_result():
    result = run_trace()

    intervals = ExperimentTable(
        title="E1 / Figure 1 — GRASP phase timeline (virtual seconds)",
        columns=["interval", "phase", "start", "end", "duration"],
        notes="feedback edge = extra calibration intervals after the first",
    )
    for index, record in enumerate(result.phases.records):
        intervals.add_row({
            "interval": index, "phase": record.phase.value,
            "start": record.start, "end": record.end, "duration": record.duration,
        })
    publish_block(format_table(intervals))

    totals = ExperimentTable(
        title="E1 — total virtual time per phase",
        columns=["phase", "total_duration", "visits"],
    )
    for phase in Phase:
        totals.add_row({
            "phase": phase.value,
            "total_duration": result.phases.total_duration(phase),
            "visits": result.phases.visits(phase),
        })
    publish_block(format_table(totals))
    return result


def test_e1_phase_trace_structure(trace_result):
    result = trace_result
    result.phases.validate()
    sequence = result.phases.sequence()
    assert sequence[:4] == [Phase.PROGRAMMING, Phase.COMPILATION,
                            Phase.CALIBRATION, Phase.EXECUTION]
    assert result.phases.total_duration(Phase.EXECUTION) > 0
    assert result.phases.recalibrations() == result.recalibrations


def test_e1_trace_events_recorded(trace_result):
    result = trace_result
    assert result.trace.filter("phase.calibration.start")
    assert result.trace.filter("phase.execution.start")
    assert result.phases.visits(Phase.CALIBRATION) >= 1


def test_e1_benchmark_adaptive_run(benchmark, bench_rounds, trace_result):
    """Wall-clock cost of simulating one full GRASP run (harness overhead)."""
    benchmark.pedantic(run_trace, rounds=bench_rounds, iterations=1)
