"""E8: where adaptivity pays off — the compute/communication-ratio sweep.

The paper names "the computation/communication ratio of the program" as one
of the inputs to the performance thresholds.  This experiment sweeps the
ratio for the synthetic farm and reports adaptive vs static makespans: the
benefit of adaptation (and of parallelism at all) grows with the ratio, and
at very small ratios everything collapses onto the master's network.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import compare_farm, sweep
from repro.analysis.reporting import format_table
from repro.workloads.synthetic import SyntheticWorkload

from bench_utils import make_dynamic_grid, publish_block

RATIOS = (0.1, 1.0, 10.0, 100.0)


def compare_at_ratio(ratio: float):
    workload = SyntheticWorkload(tasks=120, mean_cost=8.0, cost_cv=0.3,
                                 comp_comm_ratio=ratio, seed=8)
    return compare_farm(
        skeleton_factory=workload.farm,
        inputs_factory=workload.items,
        grid_factory=lambda: make_dynamic_grid(seed=int(ratio * 10) + 3, nodes=8),
        baselines=("static-block",),
        workload_label=f"ratio-{ratio}",
    )


@pytest.fixture(scope="module")
def ratio_sweep():
    comparisons = {}

    def run_one(ratio):
        comparison = compare_at_ratio(ratio)
        comparisons[ratio] = comparison
        return {
            "adaptive_makespan": comparison.adaptive.makespan,
            "static_block_makespan": comparison.baselines["static-block"].makespan,
            "adaptive_speedup": comparison.adaptive.speedup,
            "improvement_vs_static": comparison.improvement_over("static-block"),
        }

    table = sweep("comp_comm_ratio", list(RATIOS), run_one,
                  title="E8 — compute/communication-ratio sweep (adaptive farm vs static block)")
    publish_block(format_table(table))
    return table, comparisons


def test_e8_parallel_speedup_grows_with_ratio(ratio_sweep):
    _, comparisons = ratio_sweep
    speedups = [comparisons[r].adaptive.speedup for r in RATIOS]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5  # compute-bound workloads parallelise well


def test_e8_adaptive_never_loses_badly(ratio_sweep):
    _, comparisons = ratio_sweep
    for ratio in RATIOS:
        assert comparisons[ratio].improvement_over("static-block") > 0.8


def test_e8_adaptive_wins_when_compute_bound(ratio_sweep):
    _, comparisons = ratio_sweep
    assert comparisons[RATIOS[-1]].improvement_over("static-block") > 1.0


def test_e8_benchmark_compute_bound_comparison(benchmark, bench_rounds, ratio_sweep):
    benchmark.pedantic(lambda: compare_at_ratio(10.0), rounds=bench_rounds, iterations=1)
