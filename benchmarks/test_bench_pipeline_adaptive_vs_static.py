"""E5: adaptive pipeline vs static stage mappings under stage-load drift.

Reproduces the claim shape of the companion pipeline evaluation (paper
reference [7]): when a node hosting a pipeline stage degrades mid-run, the
adaptive pipeline remaps stages onto fitter nodes and sustains throughput,
while a static mapping is stuck with whatever node it picked.

Because *which* static mapping suffers depends on which node degrades, the
experiment injects the degradation into each compute node in turn (one
scenario per node) and reports per-scenario and mean makespans — the same
fault-injection-sweep structure the adaptive-pipeline paper uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.reporting import format_table
from repro.baselines.static_pipeline import StaticPipeline
from repro.core.grasp import Grasp
from repro.core.parameters import GraspConfig
from repro.grid.load import StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridTopology
from repro.workloads.imaging import ImagingWorkload

from bench_utils import publish_block

N_IMAGES = 96
IMAGE_SIDE = 16
DEGRADE_AT = 6.0
DEGRADE_LEVEL = 0.95

#: Compute nodes of the experiment grid (the front-end only hosts the master).
COMPUTE_NODES = {
    "big": 8.0,
    "mid1": 4.0,
    "mid2": 4.0,
    "small1": 2.0,
    "small2": 2.0,
    "small3": 2.0,
}


def drifting_grid(victim: str) -> GridTopology:
    """Grid in which ``victim`` loses most of its capacity at ``DEGRADE_AT``."""
    nodes = [GridNode(node_id="frontend", speed=0.5)]
    for node_id, speed in COMPUTE_NODES.items():
        if node_id == victim:
            nodes.append(GridNode(
                node_id=node_id, speed=speed,
                load_model=StepLoad(steps=[(DEGRADE_AT, DEGRADE_LEVEL)], initial=0.0),
            ))
        else:
            nodes.append(GridNode(node_id=node_id, speed=speed))
    return GridTopology(nodes=nodes, wan_latency=1e-4, wan_bandwidth=1e8,
                        name=f"stage-drift-{victim}")


def run_adaptive(victim: str):
    workload = ImagingWorkload(images=N_IMAGES, image_side=IMAGE_SIDE, seed=3)
    return Grasp(workload.pipeline(), drifting_grid(victim),
                 config=GraspConfig.adaptive()).run(workload.items())


def run_static(victim: str, mapping: str):
    workload = ImagingWorkload(images=N_IMAGES, image_side=IMAGE_SIDE, seed=3)
    grid = drifting_grid(victim)
    workers = [n for n in grid.node_ids if n != "frontend"]
    return StaticPipeline(workload.pipeline(), grid, mapping=mapping,
                          workers=workers, master_node="frontend").run(workload.items())


@pytest.fixture(scope="module")
def pipeline_sweep():
    rows = []
    for victim in COMPUTE_NODES:
        adaptive = run_adaptive(victim)
        declaration = run_static(victim, "declaration")
        speed_aware = run_static(victim, "speed")
        rows.append({
            "degraded_node": victim,
            "adaptive": adaptive.makespan,
            "static_declaration": declaration.makespan,
            "static_speed_aware": speed_aware.makespan,
            "adaptive_recalibrations": adaptive.recalibrations,
            "_runs": (adaptive, declaration, speed_aware),
        })

    table = ExperimentTable(
        title="E5 — imaging pipeline under a node degradation at t=6 "
              "(one scenario per degraded node)",
        columns=["degraded_node", "adaptive", "static_declaration",
                 "static_speed_aware", "adaptive_recalibrations"],
        notes="makespans in virtual seconds; MEAN row summarises the sweep",
    )
    for row in rows:
        table.add_row(row)
    table.add_row({
        "degraded_node": "MEAN",
        "adaptive": float(np.mean([r["adaptive"] for r in rows])),
        "static_declaration": float(np.mean([r["static_declaration"] for r in rows])),
        "static_speed_aware": float(np.mean([r["static_speed_aware"] for r in rows])),
        "adaptive_recalibrations": sum(r["adaptive_recalibrations"] for r in rows),
    })
    publish_block(format_table(table))
    return rows


def test_e5_outputs_identical_across_variants(pipeline_sweep):
    workload = ImagingWorkload(images=N_IMAGES, image_side=IMAGE_SIDE, seed=3)
    expected = workload.expected_outputs()
    adaptive, declaration, speed_aware = pipeline_sweep[0]["_runs"]
    assert adaptive.outputs == expected
    assert declaration.outputs == expected
    assert speed_aware.outputs == expected


def test_e5_adaptive_wins_on_average(pipeline_sweep):
    mean_adaptive = np.mean([r["adaptive"] for r in pipeline_sweep])
    mean_declaration = np.mean([r["static_declaration"] for r in pipeline_sweep])
    mean_speed = np.mean([r["static_speed_aware"] for r in pipeline_sweep])
    assert mean_adaptive < mean_declaration
    assert mean_adaptive < mean_speed


def test_e5_adaptive_bounds_worst_case(pipeline_sweep):
    """The adaptive pipeline's worst scenario is far better than the static
    mappings' worst scenario (stuck with a degraded heavy-stage host)."""
    worst_adaptive = max(r["adaptive"] for r in pipeline_sweep)
    worst_static = max(max(r["static_declaration"], r["static_speed_aware"])
                       for r in pipeline_sweep)
    assert worst_adaptive < worst_static


def test_e5_adaptation_fired_somewhere(pipeline_sweep):
    assert sum(r["adaptive_recalibrations"] for r in pipeline_sweep) >= 1


def test_e5_benchmark_adaptive_pipeline(benchmark, bench_rounds, pipeline_sweep):
    benchmark.pedantic(lambda: run_adaptive("big"), rounds=bench_rounds, iterations=1)
