"""E10: heterogeneity sweep — the value of fittest-node selection.

Varies the nominal speed spread of the grid and compares the adaptive farm
(which calibrates and selects the fittest subset) against static block
distribution and a calibration-free demand-driven farm.  The benefit of
GRASP grows with heterogeneity; on a homogeneous dedicated grid adaptation
is pure (small) overhead.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import compare_farm, sweep
from repro.analysis.reporting import format_table
from repro.workloads.synthetic import SyntheticWorkload

from bench_utils import make_dedicated_grid, publish_block

SPREADS = (1.0, 2.0, 4.0, 8.0, 16.0)


def compare_at_spread(spread: float):
    workload = SyntheticWorkload(tasks=160, mean_cost=8.0, cost_cv=0.2, seed=20)
    return compare_farm(
        skeleton_factory=workload.farm,
        inputs_factory=workload.items,
        grid_factory=lambda: make_dedicated_grid(seed=21, nodes=8, spread=spread),
        baselines=("static-block", "demand-driven"),
        workload_label=f"spread-{spread}",
    )


@pytest.fixture(scope="module")
def heterogeneity_sweep():
    comparisons = {}

    def run_one(spread):
        comparison = compare_at_spread(spread)
        comparisons[spread] = comparison
        return {
            "adaptive_makespan": comparison.adaptive.makespan,
            "static_block_makespan": comparison.baselines["static-block"].makespan,
            "demand_driven_makespan": comparison.baselines["demand-driven"].makespan,
            "improvement_vs_static": comparison.improvement_over("static-block"),
        }

    table = sweep("speed_spread", list(SPREADS), run_one,
                  title="E10 — heterogeneity sweep (dedicated grid, 8 nodes)")
    publish_block(format_table(table))
    return comparisons


def test_e10_benefit_grows_with_heterogeneity(heterogeneity_sweep):
    improvements = [heterogeneity_sweep[s].improvement_over("static-block")
                    for s in SPREADS]
    assert improvements[-1] > improvements[0]
    assert improvements[-1] > 1.3


def test_e10_homogeneous_grid_overhead_is_small(heterogeneity_sweep):
    homogeneous = heterogeneity_sweep[1.0]
    assert homogeneous.improvement_over("static-block") > 0.8


def test_e10_outputs_correct_everywhere(heterogeneity_sweep):
    workload = SyntheticWorkload(tasks=160, mean_cost=8.0, cost_cv=0.2, seed=20)
    expected = workload.expected_outputs()
    for comparison in heterogeneity_sweep.values():
        assert comparison.adaptive_result.outputs == pytest.approx(expected)


def test_e10_benchmark_high_heterogeneity(benchmark, bench_rounds, heterogeneity_sweep):
    benchmark.pedantic(lambda: compare_at_spread(8.0), rounds=bench_rounds, iterations=1)
