#!/usr/bin/env python
"""Parameter study on a bursty grid: adaptive GRASP farm vs static distribution.

Parameter sweeps are the canonical grid application the paper motivates.
This example evaluates a synthetic objective over a 3-axis parameter grid on
a non-dedicated grid whose nodes suffer bursty competing load, and compares:

* the adaptive GRASP farm (calibration + threshold-driven recalibration),
* the classic static block-distributed farm, and
* a speed-weighted static farm (knows nominal speeds, not dynamic load).

It then prints the comparison table the way the benchmark harness does.
"""

from __future__ import annotations

from repro import GridBuilder
from repro.analysis.experiments import compare_farm
from repro.analysis.reporting import format_table, to_markdown
from repro.analysis.experiments import ExperimentTable
from repro.workloads.parameter_sweep import ParameterSweep


def make_grid():
    return (
        GridBuilder()
        .heterogeneous(nodes=12, speed_spread=4.0)
        .with_dynamic_load("bursty", quiet_level=0.05, busy_level=0.8,
                           p_burst=0.06, p_calm=0.12, epoch=8.0)
        .named("bursty-campus-grid")
        .build(seed=7)
    )


def main() -> None:
    sweep = ParameterSweep(
        axes={
            "viscosity": [0.1 * i for i in range(10)],
            "reynolds": [100, 500, 1000, 5000],
            "resolution": [1, 2, 4],
        },
        base_cost=2.0,
    )
    print(f"parameter study: {len(sweep.points)} points, "
          f"total cost {sweep.total_cost():.0f} work units")

    comparison = compare_farm(
        skeleton_factory=sweep.farm,
        inputs_factory=sweep.items,
        grid_factory=make_grid,
        baselines=("static-block", "static-weighted"),
        workload_label="parameter-sweep",
    )

    table = ExperimentTable(
        title="adaptive vs static farm on a bursty 12-node grid",
        columns=["label", "makespan", "speedup", "efficiency", "recalibrations"],
    )
    for row in comparison.rows():
        table.add_row(row)
    print()
    print(format_table(table))
    print()
    print("markdown version:")
    print(to_markdown(table))
    print()
    print(f"improvement over static block:    "
          f"{comparison.improvement_over('static-block'):.2f}x")
    print(f"improvement over static weighted: "
          f"{comparison.improvement_over('static-weighted'):.2f}x")

    # The results themselves are real: verify against the sequential reference.
    assert comparison.adaptive_result.outputs == sweep.expected_outputs()
    print("result check: adaptive outputs match the sequential reference")


if __name__ == "__main__":
    main()
