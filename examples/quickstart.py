#!/usr/bin/env python
"""Quickstart: run an adaptive task farm on a simulated computational grid.

This is the smallest end-to-end GRASP program:

1. describe a grid (heterogeneous, non-dedicated),
2. wrap a sequential function in the task-farm skeleton,
3. hand both to the GRASP runtime and run.

The runtime walks the paper's four phases (programming, compilation,
calibration, execution) and returns the real outputs together with the
virtual-time performance report.
"""

from __future__ import annotations

from repro import Grasp, GraspConfig, GridBuilder, TaskFarm


def main() -> None:
    # A non-dedicated grid: 8 nodes, 4x speed spread, random-walk background
    # load from competing users.
    grid = (
        GridBuilder()
        .heterogeneous(nodes=8, speed_spread=4.0)
        .with_dynamic_load("randomwalk", mean_level=0.3)
        .named("quickstart-grid")
        .build(seed=42)
    )

    # The sequential computation: anything picklable works.  The cost model
    # tells the simulator how much virtual work each item represents.
    farm = TaskFarm(worker=lambda x: x * x, cost_model=lambda item: 5.0)

    grasp = Grasp(skeleton=farm, grid=grid, config=GraspConfig.adaptive())
    result = grasp.run(inputs=range(100))

    print("outputs (first 10):", result.outputs[:10])
    print(f"makespan:           {result.makespan:.2f} virtual seconds")
    print(f"nodes chosen:       {len(result.chosen_nodes)} of {len(grid)}")
    print(f"recalibrations:     {result.recalibrations}")
    print("phase durations:    ", {k: round(v, 2) for k, v in result.phase_durations().items()})
    print("tasks per node:     ", result.per_node_counts())


if __name__ == "__main__":
    main()
