#!/usr/bin/env python
"""Quickstart: one adaptive task farm, four parallel environments.

This is the smallest end-to-end GRASP program:

1. describe a grid (heterogeneous, non-dedicated),
2. wrap a sequential function in the task-farm skeleton,
3. hand both to the GRASP runtime and run.

The runtime walks the paper's four phases (programming, compilation,
calibration, execution).  The compilation phase links the *same* program
against a chosen execution backend:

* ``"simulated"`` (default) — deterministic virtual time on the grid
  simulator;
* ``"thread"`` — real OS threads under wall-clock monitoring;
* ``"process"`` — one serial worker process per node, escaping the GIL
  for CPU-bound work.  Payloads cross process boundaries, so worker
  functions must be picklable (module-level ``def``, not a lambda) —
  which is why ``square`` below is a top-level function;
* ``"asyncio"`` — one serial virtual queue per node on a shared event
  loop, for I/O-bound coroutine workers (``async def``) whose waits
  overlap instead of occupying threads;
* ``"cluster"`` — one TCP worker-agent subprocess per node (a localhost
  :class:`repro.cluster.LocalCluster`).  The same agents can run on other
  machines (``python -m repro.cluster.worker --connect HOST:PORT --node
  NAME``) — see the README's "Running on multiple machines".

No change to the skeleton, the configuration or the inputs.  Three extra
patterns appear at the end:

* **chunked dispatch** (``config.execution.chunk_size``) batches k tasks
  per dispatch to amortise IPC overhead on the process backend;
* **fault injection** (:class:`repro.FaultInjectingBackend`) replays
  node-death/slowdown schedules from ``repro.grid.failures`` against the
  concurrent backends, so the adaptation loop's failover paths run on
  real hardware;
* **streaming results** (``Grasp.as_completed``) yields each completed
  task as the adaptive loop collects it, instead of blocking for the
  whole :class:`repro.GraspResult`.
"""

from __future__ import annotations

from repro import (
    FarmOfPipelines,
    FaultInjectingBackend,
    Grasp,
    GraspConfig,
    GridBuilder,
    Stage,
    TaskFarm,
    ThreadBackend,
)
from repro.grid.failures import PermanentFailure


def square(x: int) -> int:
    # The sequential computation.  Module-level so every backend —
    # including the process backend, which pickles it — can ship it.
    return x * x


async def fetch_square(x: int) -> int:
    # An I/O-bound worker: the await stands in for an HTTP call.  On the
    # asyncio backend these waits overlap across all node queues.
    import asyncio
    await asyncio.sleep(0.002)
    return x * x


def slow_square(x: int) -> int:
    # A worker with measurable wall-clock duration, so the fault-injection
    # demo's scheduled node death lands mid-run instead of after the job.
    import time
    time.sleep(0.002)
    return x * x


def item_cost(item) -> float:
    # Tells the simulator how much virtual work each item represents (the
    # wall-clock backends measure real durations instead).
    return 5.0


def build_grid():
    # A non-dedicated grid: 8 nodes, 4x speed spread, random-walk background
    # load from competing users.
    return (
        GridBuilder()
        .heterogeneous(nodes=8, speed_spread=4.0)
        .with_dynamic_load("randomwalk", mean_level=0.3)
        .named("quickstart-grid")
        .build(seed=42)
    )


def build_farm() -> TaskFarm:
    return TaskFarm(worker=square, cost_model=item_cost)


def report(result, grid, backend_label: str, unit: str) -> None:
    print(f"--- backend={backend_label} ---")
    print("outputs (first 10):", result.outputs[:10])
    print(f"makespan:           {result.makespan:.2f} {unit} seconds")
    print(f"nodes chosen:       {len(result.chosen_nodes)} of {len(grid)}")
    print(f"recalibrations:     {result.recalibrations}")
    print("phase durations:    ",
          {k: round(v, 2) for k, v in result.phase_durations().items()})
    print("tasks per node:     ", result.per_node_counts())


def run_on(backend: str, chunk_size: int = 1) -> None:
    grid = build_grid()
    config = GraspConfig.adaptive()
    config.execution.chunk_size = chunk_size  # tasks per dispatch (IPC knob)
    grasp = Grasp(skeleton=build_farm(), grid=grid, config=config,
                  backend=backend)
    result = grasp.run(inputs=range(100))
    unit = "virtual" if backend == "simulated" else "wall-clock"
    label = backend if chunk_size == 1 else f"{backend}, chunk_size={chunk_size}"
    report(result, grid, label, unit)


def run_asyncio_io_bound() -> None:
    # The same farm shape with a coroutine worker: 100 simulated requests
    # whose service times overlap on one event loop.
    grid = build_grid()
    result = Grasp(skeleton=TaskFarm(worker=fetch_square, cost_model=item_cost),
                   grid=grid, config=GraspConfig.adaptive(),
                   backend="asyncio").run(inputs=range(100))
    report(result, grid, "asyncio (coroutine worker)", "wall-clock")


def run_streaming() -> None:
    # Consume results as they land instead of waiting for the whole report.
    grid = build_grid()
    run = Grasp(skeleton=build_farm(), grid=grid,
                config=GraspConfig.adaptive()).as_completed(inputs=range(100))
    seen = 0
    for task_result in run:
        seen += 1
        if seen in (1, 50, 100):
            phase = "calibration" if task_result.during_calibration else "execution"
            print(f"streamed result #{seen}: task {task_result.task_id} "
                  f"on {task_result.node_id} ({phase})")
    print(f"--- backend=simulated, streaming: {seen} results, "
          f"makespan {run.result.makespan:.2f} virtual seconds ---")


def run_local_cluster() -> None:
    # The distributed backend, demoed on one machine: a LocalCluster spawns
    # one worker-agent subprocess per node, the farm runs over real TCP,
    # and kill -9 on any agent mid-run would be routed around (see
    # tests/test_cluster.py for the murder scene).  Agents import payloads
    # by reference, so `square` must live in an importable module —
    # LocalCluster ships this script's path to the workers automatically.
    from repro.cluster import LocalCluster

    with LocalCluster(workers=4) as cluster:
        backend = cluster.backend()
        result = Grasp(skeleton=build_farm(), grid=backend.topology,
                       config=GraspConfig.adaptive(),
                       backend=backend).run(inputs=range(100))
        report(result, backend.topology, "cluster (4 localhost TCP agents)",
               "wall-clock")
        backend.close()


def normalise(x: float) -> float:
    # Stage 1 of the nested demo: bring the raw value into [0, 1).
    return (x % 97) / 97.0


def enrich(x: float) -> float:
    # Stage 2: a heavier transformation.
    return x * x + 0.5


def render(x: float) -> float:
    # Stage 3: final formatting.
    return round(x, 4)


def run_nested_composition() -> None:
    # A *nested* composition: a farm whose worker is itself a pipeline.
    # Skeletons lower onto the execution-plan IR (repro.core.plan), so the
    # composition keeps its structure — each item is dispatched as a
    # three-stage *chain*, every stage picking the earliest-free chosen
    # node, instead of collapsing into one opaque worker callable.  The
    # same adaptive loop (threshold, windows, recalibration) runs over it.
    grid = build_grid()
    composed = FarmOfPipelines([
        Stage(normalise, cost_model=lambda _: 1.0, name="normalise"),
        Stage(enrich, cost_model=lambda _: 4.0, name="enrich"),
        Stage(render, cost_model=lambda _: 1.0, name="render"),
    ])
    plan = composed.lower()
    print(f"--- nested composition: FarmOfPipelines lowers to "
          f"{type(plan).__name__}(body={type(plan.body).__name__}, "
          f"{plan.body.num_stages} stages) ---")
    result = Grasp(skeleton=composed, grid=grid,
                   config=GraspConfig.adaptive()).run(inputs=range(100))
    assert result.outputs == composed.run_sequential(range(100))
    report(result, grid, "simulated (nested farm-of-pipelines)", "virtual")


def run_with_fault_injection() -> None:
    # Kill one node 20 ms into the run: tasks caught on it are lost and
    # re-enqueued, the chosen set shrinks, and the job still completes.
    grid = build_grid()
    victim = grid.node_ids[2]
    backend = FaultInjectingBackend(
        ThreadBackend(topology=grid),
        failures=PermanentFailure.at(0.02, victim),
    )
    with backend:
        result = Grasp(skeleton=TaskFarm(worker=slow_square, cost_model=item_cost),
                       grid=grid, config=GraspConfig.adaptive(),
                       backend=backend).run(inputs=range(100))
    report(result, grid, f"thread+faults ({victim} dies at t=0.02s)",
           "wall-clock")
    print("lost tasks:         ", result.execution.lost_tasks)


def run_with_metrics() -> None:
    # Every run also aggregates metrics (counters, gauges, latency
    # histograms) alongside the event trace — result.metrics is the final
    # registry snapshot.  Setting GRASP_METRICS=metrics.json (or
    # GraspConfig(metrics_path=...)) dumps the same snapshot to disk for
    # `python -m repro.metrics show` and the `python -m repro.trace
    # regress` performance gate.  This demo runs last, so a GRASP_METRICS
    # dump from this script describes this deterministic simulated run.
    grid = build_grid()
    result = Grasp(skeleton=build_farm(), grid=grid,
                   config=GraspConfig.adaptive()).run(inputs=range(100))
    snapshot = result.metrics
    totals = {}
    for series in snapshot["series"]:
        if series["type"] == "counter":
            totals[series["name"]] = totals.get(series["name"], 0) + series["value"]
    print("--- metrics: final registry snapshot (simulated backend) ---")
    print(f"series recorded:    {len(snapshot['series'])}")
    print(f"dispatch accounting: issued={totals.get('dispatch.issued', 0):.0f} "
          f"resolved={totals.get('dispatch.resolved', 0):.0f} "
          f"lost={totals.get('dispatch.lost', 0):.0f}")
    print(f"tasks completed:    {totals.get('tasks.completed', 0):.0f}")
    latencies = [s for s in snapshot["series"]
                 if s["name"] == "dispatch.latency"]
    p95 = max((s["p95"] for s in latencies if s["p95"] is not None),
              default=None)
    print(f"dispatch p95:       {p95:.3f} virtual seconds "
          f"(across {len(latencies)} node series)")


def main() -> None:
    run_on("simulated")
    run_on("thread")
    run_on("process", chunk_size=4)
    run_asyncio_io_bound()
    run_local_cluster()
    run_streaming()
    run_nested_composition()
    run_with_fault_injection()
    run_with_metrics()


if __name__ == "__main__":
    main()
