#!/usr/bin/env python
"""Quickstart: one adaptive task farm, two parallel environments.

This is the smallest end-to-end GRASP program:

1. describe a grid (heterogeneous, non-dedicated),
2. wrap a sequential function in the task-farm skeleton,
3. hand both to the GRASP runtime and run.

The runtime walks the paper's four phases (programming, compilation,
calibration, execution).  The compilation phase links the *same* program
against a chosen execution backend: the default ``"simulated"`` backend
runs in deterministic virtual time on the grid simulator, while the
``"thread"`` backend executes the task payloads on real OS threads under
wall-clock monitoring — no change to the skeleton, the configuration or
the inputs.
"""

from __future__ import annotations

from repro import Grasp, GraspConfig, GridBuilder, TaskFarm


def build_grid():
    # A non-dedicated grid: 8 nodes, 4x speed spread, random-walk background
    # load from competing users.
    return (
        GridBuilder()
        .heterogeneous(nodes=8, speed_spread=4.0)
        .with_dynamic_load("randomwalk", mean_level=0.3)
        .named("quickstart-grid")
        .build(seed=42)
    )


def build_farm() -> TaskFarm:
    # The sequential computation: anything picklable works.  The cost model
    # tells the simulator how much virtual work each item represents (the
    # thread backend measures real durations instead).
    return TaskFarm(worker=lambda x: x * x, cost_model=lambda item: 5.0)


def run_on(backend: str) -> None:
    grid = build_grid()
    grasp = Grasp(skeleton=build_farm(), grid=grid,
                  config=GraspConfig.adaptive(), backend=backend)
    result = grasp.run(inputs=range(100))

    unit = "virtual" if backend == "simulated" else "wall-clock"
    print(f"--- backend={backend} ---")
    print("outputs (first 10):", result.outputs[:10])
    print(f"makespan:           {result.makespan:.2f} {unit} seconds")
    print(f"nodes chosen:       {len(result.chosen_nodes)} of {len(grid)}")
    print(f"recalibrations:     {result.recalibrations}")
    print("phase durations:    ",
          {k: round(v, 2) for k, v in result.phase_durations().items()})
    print("tasks per node:     ", result.per_node_counts())


def main() -> None:
    run_on("simulated")
    run_on("thread")


if __name__ == "__main__":
    main()
