#!/usr/bin/env python
"""Monte-Carlo estimation across a two-site grid with node churn.

Demonstrates three more of the library's capabilities together:

* multi-site topologies (two clusters joined by a slow wide-area link),
* node failures handled by the adaptive farm (tasks are re-enqueued and the
  dead node dropped from the chosen set), and
* statistical (multivariate) calibration using the resource monitor.
"""

from __future__ import annotations

from repro import Grasp, GraspConfig
from repro.core.parameters import CalibrationConfig, ExecutionConfig
from repro.core.ranking import RankingMode
from repro.grid.failures import PermanentFailure
from repro.grid.topology import GridBuilder
from repro.workloads.montecarlo import MonteCarloWorkload


def make_grid():
    grid = (
        GridBuilder()
        .site("edinburgh", nodes=6, speed=4.0)
        .site("barcelona", nodes=6, speed=2.5)
        .wan(latency=2e-2, bandwidth=5e6)
        .with_dynamic_load("randomwalk", mean_level=0.25)
        .named("two-site-grid")
        .build(seed=13)
    )
    # One Edinburgh node drops out of the grid 20 virtual seconds in.
    return grid.with_failure_model(PermanentFailure(failures={"edinburgh/n2": 20.0}))


def main() -> None:
    workload = MonteCarloWorkload(batches=96, samples_per_batch=20_000,
                                  samples_per_work_unit=4_000, seed=5)
    config = GraspConfig(
        calibration=CalibrationConfig(ranking=RankingMode.MULTIVARIATE,
                                      sample_per_node=1),
        execution=ExecutionConfig(threshold_factor=1.5),
    )

    grid = make_grid()
    result = Grasp(workload.farm(), grid, config=config).run(workload.items())

    estimate = workload.combine(result.outputs)
    print(f"π estimate from {workload.batches} batches: {estimate:.6f}")
    print(f"identical to the sequential reference:      "
          f"{estimate == workload.expected_value()}")
    print(f"makespan:        {result.makespan:.2f} virtual seconds")
    print(f"nodes chosen:    {len(result.chosen_nodes)} of {len(grid)}")
    print(f"recalibrations:  {result.recalibrations}")
    print(f"tasks re-queued after the node failure: {result.execution.lost_tasks}")
    per_site = {}
    for node, count in result.per_node_counts().items():
        per_site[node.split("/")[0]] = per_site.get(node.split("/")[0], 0) + count
    print(f"batches per site: {per_site}")


if __name__ == "__main__":
    main()
