#!/usr/bin/env python
"""Adaptive image-processing pipeline surviving a mid-run node degradation.

A four-stage imaging pipeline (denoise → convolve → threshold → count)
streams a batch of images across a small grid.  Six virtual seconds into the
run, the node hosting the heavy convolution stage is slammed by a competing
job.  The GRASP pipeline notices the throughput collapse (Algorithm 2),
recalibrates and remaps the stages; the static pipeline is stuck.
"""

from __future__ import annotations

from repro import Grasp, GraspConfig
from repro.baselines import StaticPipeline
from repro.grid.load import StepLoad
from repro.grid.node import GridNode
from repro.grid.topology import GridTopology
from repro.workloads.imaging import ImagingWorkload


def make_grid() -> GridTopology:
    nodes = [
        GridNode(node_id="frontend", speed=0.5),
        GridNode(node_id="big", speed=8.0,
                 load_model=StepLoad(steps=[(6.0, 0.95)], initial=0.0)),
        GridNode(node_id="mid1", speed=4.0),
        GridNode(node_id="mid2", speed=4.0),
        GridNode(node_id="small1", speed=2.0),
        GridNode(node_id="small2", speed=2.0),
    ]
    return GridTopology(nodes=nodes, wan_latency=1e-4, wan_bandwidth=1e8,
                        name="imaging-grid")


def main() -> None:
    workload = ImagingWorkload(images=96, image_side=32, seed=11)
    print(f"streaming {workload.images} images of {workload.image_side}x"
          f"{workload.image_side} pixels through 4 stages")

    adaptive = Grasp(workload.pipeline(), make_grid(),
                     config=GraspConfig.adaptive()).run(workload.items())

    grid = make_grid()
    static = StaticPipeline(
        workload.pipeline(), grid, mapping="speed",
        workers=[n for n in grid.node_ids if n != "frontend"],
        master_node="frontend",
    ).run(workload.items())

    expected = workload.expected_outputs()
    assert adaptive.outputs == expected
    assert static.outputs == expected

    print()
    print(f"adaptive pipeline makespan: {adaptive.makespan:8.2f} virtual s "
          f"({adaptive.recalibrations} recalibration(s))")
    print(f"static pipeline makespan:   {static.makespan:8.2f} virtual s")
    print(f"adaptive throughput:        {len(expected) / adaptive.makespan:8.2f} images/s")
    print(f"static throughput:          {len(expected) / static.makespan:8.2f} images/s")
    print()
    print("adaptation events recorded in the trace:")
    for event in adaptive.trace.filter("adaptation"):
        print(f"  t={event.time:8.2f}  {event.category}: {event.message}")


if __name__ == "__main__":
    main()
