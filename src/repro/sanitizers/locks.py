"""Lock-order sanitizer: runtime detection of potential deadlocks.

The concurrent runtime takes several locks (coordinator state, per-worker
send locks, backend state, the async submit/close locks).  A deadlock
needs two threads acquiring the same pair of locks in opposite orders —
something no single test run is guaranteed to interleave, but whose
*potential* is visible the moment both orders have ever been observed.

This module implements the classic lockdep idea: every instrumented lock
acquisition, while other instrumented locks are already held by the same
thread, records a directed edge ``held -> acquired`` in a global graph
keyed by lock *name* (not instance, so per-worker send locks aggregate
into one node).  If adding an edge closes a cycle, a
:class:`~repro.exceptions.LockOrderError`-worthy violation is recorded
carrying the acquisition stacks that witnessed both sides of the
inversion.

Everything is opt-in: :func:`make_lock` returns a plain
:class:`threading.Lock` unless the sanitizer is enabled (via
``GRASP_SANITIZE=locks`` or :func:`enable`), so the hot path is untouched
by default.  Violations are recorded, not raised at the acquisition site —
raising inside arbitrary runtime code would corrupt the very state the
test is exercising; call :func:`assert_clean` (or use the pytest fixture
in ``tests/conftest.py``) to fail the test afterwards.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import LockOrderError

__all__ = [
    "InstrumentedLock",
    "LockOrderGraph",
    "LockOrderViolation",
    "assert_clean",
    "default_graph",
    "disable",
    "enable",
    "enabled",
    "make_lock",
    "reset",
    "violations",
]


@dataclass
class LockOrderViolation:
    """One observed lock-order inversion.

    ``first_order`` / ``second_order`` are the (held, acquired) name pairs
    that together close a cycle; the stacks are the formatted acquisition
    stacks that witnessed each edge.
    """

    first_order: Tuple[str, str]
    second_order: Tuple[str, str]
    cycle: Tuple[str, ...]
    first_stack: str
    second_stack: str

    def describe(self) -> str:
        chain = " -> ".join(self.cycle)
        return (
            f"lock-order inversion: {self.first_order[0]} -> {self.first_order[1]} "
            f"conflicts with {self.second_order[0]} -> {self.second_order[1]} "
            f"(cycle: {chain})\n"
            f"--- stack that acquired {self.first_order[1]} "
            f"while holding {self.first_order[0]}:\n{self.first_stack}"
            f"--- stack that acquired {self.second_order[1]} "
            f"while holding {self.second_order[0]}:\n{self.second_stack}"
        )


def _capture_stack() -> str:
    # Drop the two innermost frames (this helper + the sanitizer hook) so
    # the stack ends at the runtime code that actually took the lock.
    return "".join(traceback.format_list(traceback.extract_stack()[:-2]))


@dataclass
class _Edge:
    stack: str


class LockOrderGraph:
    """Global acquisition-order graph shared by all instrumented locks.

    Thread-safe: the graph itself is protected by a plain (uninstrumented)
    mutex, and per-thread held-lock stacks live in ``threading.local``.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: Dict[Tuple[str, str], _Edge] = {}
        self._violations: List[LockOrderViolation] = []
        self._held = threading.local()

    # -- per-thread held stack -------------------------------------------

    def _stack(self) -> List[Tuple[str, "InstrumentedLock"]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    # -- recording hooks (called by InstrumentedLock) --------------------

    def note_acquired(self, lock: "InstrumentedLock") -> None:
        stack = self._stack()
        held_names = [name for name, inst in stack if inst is not lock]
        stack.append((lock.name, lock))
        if not held_names:
            return
        acquired_stack: Optional[str] = None
        with self._mutex:
            for held in held_names:
                if held == lock.name:
                    # Two same-named locks (e.g. two workers' send locks)
                    # held together is fine as long as no *other* lock
                    # class sits between them; a self-edge would be noise.
                    continue
                edge = (held, lock.name)
                if edge in self._edges:
                    continue
                if acquired_stack is None:
                    acquired_stack = _capture_stack()
                path = self._find_path(lock.name, held)
                if path is not None:
                    prior = self._edges.get((path[0], path[1]))
                    self._violations.append(
                        LockOrderViolation(
                            first_order=(path[0], path[1]),
                            second_order=edge,
                            cycle=tuple(path) + (lock.name,),
                            first_stack=prior.stack if prior else "<unknown>\n",
                            second_stack=acquired_stack,
                        )
                    )
                self._edges[edge] = _Edge(stack=acquired_stack)

    def note_released(self, lock: "InstrumentedLock") -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] is lock:
                del stack[i]
                return

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """DFS for a path src -> ... -> dst over recorded edges.

        Caller holds ``self._mutex``.
        """
        adjacency: Dict[str, List[str]] = {}
        for a, b in self._edges:
            adjacency.setdefault(a, []).append(b)
        seen = {src}
        trail = [src]

        def walk(node: str) -> Optional[List[str]]:
            if node == dst:
                return list(trail)
            for nxt in adjacency.get(node, ()):
                if nxt in seen:
                    continue
                seen.add(nxt)
                trail.append(nxt)
                found = walk(nxt)
                if found is not None:
                    return found
                trail.pop()
            return None

        return walk(src)

    # -- inspection ------------------------------------------------------

    def violations(self) -> List[LockOrderViolation]:
        with self._mutex:
            return list(self._violations)

    def edges(self) -> Dict[Tuple[str, str], str]:
        with self._mutex:
            return {pair: edge.stack for pair, edge in self._edges.items()}

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._violations.clear()

    def assert_clean(self) -> None:
        found = self.violations()
        if found:
            report = "\n\n".join(v.describe() for v in found)
            raise LockOrderError(
                f"{len(found)} lock-order violation(s) detected:\n{report}"
            )


class InstrumentedLock:
    """A ``threading.Lock`` stand-in that reports to a :class:`LockOrderGraph`.

    Implements the subset of the lock protocol the runtime (and
    ``threading.Condition``) relies on: ``acquire(blocking, timeout)``,
    ``release``, ``locked``, and the context-manager protocol.  Edges are
    recorded only after a *successful* acquire, so Condition's
    ``acquire(False)`` ownership probe records nothing when it fails.
    """

    __slots__ = ("name", "_graph", "_lock")

    def __init__(self, name: str, graph: Optional[LockOrderGraph] = None) -> None:
        self.name = name
        self._graph = graph if graph is not None else default_graph()
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._graph.note_acquired(self)
        return got

    def release(self) -> None:
        self._graph.note_released(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<InstrumentedLock {self.name!r} {state}>"


# -- module-level state ---------------------------------------------------

_DEFAULT_GRAPH = LockOrderGraph()
_FORCED = False


def default_graph() -> LockOrderGraph:
    """The process-wide graph new :class:`InstrumentedLock`\\ s report to."""
    return _DEFAULT_GRAPH


def enabled() -> bool:
    """Whether lock instrumentation is active for this process."""
    if _FORCED:
        return True
    raw = os.environ.get("GRASP_SANITIZE", "")
    return "locks" in (part.strip() for part in raw.split(","))


def enable() -> None:
    """Force the sanitizer on regardless of ``GRASP_SANITIZE``."""
    global _FORCED
    _FORCED = True


def disable() -> None:
    """Undo :func:`enable` (the environment variable still applies)."""
    global _FORCED
    _FORCED = False


def make_lock(name: str):
    """A lock for runtime hot paths: instrumented only when enabled.

    Call sites name their lock role (``"coordinator.state"``,
    ``"worker.send"``, ...); same-named locks share a graph node so the
    order discipline is checked per *role*, not per instance.
    """
    if enabled():
        return InstrumentedLock(name)
    return threading.Lock()


def violations() -> List[LockOrderViolation]:
    """Violations recorded on the default graph so far."""
    return _DEFAULT_GRAPH.violations()


def reset() -> None:
    """Clear the default graph's recorded edges and violations."""
    _DEFAULT_GRAPH.reset()


def assert_clean() -> None:
    """Raise :class:`~repro.exceptions.LockOrderError` if violations exist."""
    _DEFAULT_GRAPH.assert_clean()
