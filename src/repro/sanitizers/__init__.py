"""Opt-in runtime sanitizers for the concurrent runtime.

Static analysis (:mod:`repro.lint`) catches what is visible in the source;
the sanitizers catch what only shows up while the runtime is actually
interleaving threads.  They are **off by default** — production and normal
test runs pay nothing — and are enabled per-process via the
``GRASP_SANITIZE`` environment variable (a comma-separated list of
sanitizer names) or programmatically per sanitizer module.

Available sanitizers:

* ``locks`` (:mod:`repro.sanitizers.locks`) — records the per-thread lock
  acquisition-order graph of every instrumented lock site and reports
  cycles (potential deadlocks) with the stacks that witnessed both sides
  of the inversion.
"""

from __future__ import annotations

import os

__all__ = ["requested_sanitizers", "locks"]

#: Environment variable naming the sanitizers to enable, comma-separated
#: (e.g. ``GRASP_SANITIZE=locks``).
ENV_VAR = "GRASP_SANITIZE"


def requested_sanitizers() -> frozenset:
    """The sanitizer names requested via ``GRASP_SANITIZE``."""
    raw = os.environ.get(ENV_VAR, "")
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


from repro.sanitizers import locks  # noqa: E402  (re-export for discoverability)
