"""Resource-monitoring substrate (NWS-style sensors and forecasters).

The paper's calibration phase optionally "collects processor and bandwidth
values" from a resource-monitoring library, and the execution phase monitors
the grid periodically.  This package supplies the Python equivalent:

* :mod:`repro.monitor.sensors` — CPU-load and bandwidth sensors that sample
  the grid simulator (or accept externally supplied readings).
* :mod:`repro.monitor.history` — bounded time series of observations.
* :mod:`repro.monitor.forecasters` — short-term predictors (last value,
  running mean, sliding-window mean, median, exponential smoothing and an
  adaptive best-of-breed selector in the spirit of the Network Weather
  Service).
* :mod:`repro.monitor.thresholds` — the performance-threshold abstraction
  used by Algorithm 2 (absolute, relative and adaptive variants).
* :class:`repro.monitor.monitor.ResourceMonitor` — the facade that the GRASP
  runtime queries.
"""

from __future__ import annotations

from repro.monitor.history import Observation, TimeSeries
from repro.monitor.sensors import BandwidthSensor, CpuLoadSensor, Sensor
from repro.monitor.forecasters import (
    AdaptiveForecaster,
    ExponentialSmoothingForecaster,
    Forecaster,
    LastValueForecaster,
    MeanForecaster,
    MedianForecaster,
    SlidingWindowForecaster,
    make_forecaster,
)
from repro.monitor.thresholds import (
    AbsoluteThreshold,
    AdaptiveThreshold,
    PerformanceThreshold,
    RelativeThreshold,
)
from repro.monitor.monitor import ResourceMonitor, ResourceSnapshot

__all__ = [
    "Observation",
    "TimeSeries",
    "Sensor",
    "CpuLoadSensor",
    "BandwidthSensor",
    "Forecaster",
    "LastValueForecaster",
    "MeanForecaster",
    "MedianForecaster",
    "SlidingWindowForecaster",
    "ExponentialSmoothingForecaster",
    "AdaptiveForecaster",
    "make_forecaster",
    "PerformanceThreshold",
    "AbsoluteThreshold",
    "RelativeThreshold",
    "AdaptiveThreshold",
    "ResourceMonitor",
    "ResourceSnapshot",
]
