"""The resource-monitor facade used by the GRASP runtime.

:class:`ResourceMonitor` owns one CPU-load sensor per node and one bandwidth
sensor per (master, worker) pair, polls them on demand, and exposes the two
views the GRASP phases need:

* point-in-time :class:`ResourceSnapshot` objects for the statistical
  calibration (Algorithm 1), and
* forecasts of near-future load for the execution-phase adaptation policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.monitor.forecasters import AdaptiveForecaster, Forecaster
from repro.monitor.sensors import BandwidthSensor, CpuLoadSensor

__all__ = ["ResourceSnapshot", "ResourceMonitor"]


@dataclass(frozen=True)
class ResourceSnapshot:
    """Resource readings for one node at one instant."""

    node_id: str
    time: float
    cpu_load: float
    bandwidth_to_master: float


class ResourceMonitor:
    """Polls load/bandwidth sensors for a set of nodes.

    Parameters
    ----------
    simulator:
        The environment supplying the observables: the grid simulator or
        any :class:`~repro.backends.base.ExecutionBackend`.
    node_ids:
        Nodes to monitor.
    master_node:
        The node hosting the skeleton master/monitor process; bandwidth is
        measured from each worker toward this node, because that is the path
        results travel.  Defaults to the first monitored node.
    forecaster:
        Predictor applied to each node's load history (defaults to the
        adaptive best-of-breed forecaster).
    """

    def __init__(
        self,
        simulator,
        node_ids: Sequence[str],
        master_node: Optional[str] = None,
        forecaster: Optional[Forecaster] = None,
        history: int = 1024,
    ):
        if len(node_ids) == 0:
            raise ConfigurationError("ResourceMonitor needs at least one node")
        self.simulator = simulator
        self.node_ids = list(node_ids)
        self.master_node = master_node or self.node_ids[0]
        if self.master_node not in simulator.topology:
            raise ConfigurationError(f"unknown master node {self.master_node!r}")
        self.forecaster = forecaster or AdaptiveForecaster()

        self._cpu_sensors: Dict[str, CpuLoadSensor] = {
            node_id: CpuLoadSensor(simulator, node_id, capacity=history)
            for node_id in self.node_ids
        }
        self._bw_sensors: Dict[str, BandwidthSensor] = {
            node_id: BandwidthSensor(simulator, node_id, self.master_node, capacity=history)
            for node_id in self.node_ids
        }

    # ---------------------------------------------------------------- polling
    def poll(self, time: Optional[float] = None) -> Dict[str, ResourceSnapshot]:
        """Sample every monitored node at ``time`` (default: simulator now)."""
        t = self.simulator.now if time is None else float(time)
        snapshots: Dict[str, ResourceSnapshot] = {}
        for node_id in self.node_ids:
            cpu = self._cpu_sensors[node_id].read(t)
            bandwidth = self._bw_sensors[node_id].read(t)
            snapshots[node_id] = ResourceSnapshot(
                node_id=node_id, time=t, cpu_load=cpu, bandwidth_to_master=bandwidth
            )
        return snapshots

    def snapshot(self, node_id: str, time: Optional[float] = None) -> ResourceSnapshot:
        """Sample one node at ``time``."""
        if node_id not in self._cpu_sensors:
            raise ConfigurationError(f"node {node_id!r} is not monitored")
        t = self.simulator.now if time is None else float(time)
        return ResourceSnapshot(
            node_id=node_id,
            time=t,
            cpu_load=self._cpu_sensors[node_id].read(t),
            bandwidth_to_master=self._bw_sensors[node_id].read(t),
        )

    # -------------------------------------------------------------- forecasts
    def forecast_load(self, node_id: str) -> float:
        """Predicted near-future CPU load of ``node_id`` from its history.

        Returns NaN when no observations exist yet.
        """
        if node_id not in self._cpu_sensors:
            raise ConfigurationError(f"node {node_id!r} is not monitored")
        return self.forecaster.predict(self._cpu_sensors[node_id].history)

    def forecast_all(self) -> Dict[str, float]:
        """Predicted near-future CPU load for every monitored node."""
        return {node_id: self.forecast_load(node_id) for node_id in self.node_ids}

    # ---------------------------------------------------------------- history
    def load_history(self, node_id: str) -> List[float]:
        """Recorded CPU-load values for ``node_id``."""
        if node_id not in self._cpu_sensors:
            raise ConfigurationError(f"node {node_id!r} is not monitored")
        return self._cpu_sensors[node_id].history.values()

    def bandwidth_history(self, node_id: str) -> List[float]:
        """Recorded bandwidth values (node → master) for ``node_id``."""
        if node_id not in self._bw_sensors:
            raise ConfigurationError(f"node {node_id!r} is not monitored")
        return self._bw_sensors[node_id].history.values()
