"""Bounded observation time series.

Sensors append :class:`Observation` records; forecasters and thresholds read
them.  The series is bounded (a ring of the most recent ``capacity``
observations) because adaptation decisions only ever look at recent history.
"""

from __future__ import annotations

import collections
import itertools
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Observation", "TimeSeries"]


@dataclass(frozen=True)
class Observation:
    """One timestamped measurement."""

    time: float
    value: float


class TimeSeries:
    """A bounded, append-only series of observations."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._observations: Deque[Observation] = collections.deque(maxlen=capacity)
        self._total_appends = 0

    def append(self, time: float, value: float) -> Observation:
        """Record a new observation and return it."""
        obs = Observation(time=float(time), value=float(value))
        self._observations.append(obs)
        self._total_appends += 1
        return obs

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total_appends(self) -> int:
        """How many observations were ever appended (monotone).

        Exceeds ``len(self)`` once the ring has evicted old observations;
        incremental consumers (forecaster caches) use it to detect both new
        data and eviction.
        """
        return self._total_appends

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._observations)

    def __bool__(self) -> bool:
        return bool(self._observations)

    @property
    def last(self) -> Optional[Observation]:
        """The most recent observation, or ``None`` when empty."""
        return self._observations[-1] if self._observations else None

    def _tail(self, window: int) -> List[Observation]:
        """The most recent ``window`` observations in order, in O(window).

        A deque slice from the left would walk the whole ring; iterating
        ``reversed`` touches only the tail, which is what incremental
        consumers (windowed forecasters, forecaster caches) need.
        """
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        tail = list(itertools.islice(reversed(self._observations), window))
        tail.reverse()
        return tail

    def values(self, window: Optional[int] = None) -> List[float]:
        """The most recent ``window`` values (all when ``window`` is ``None``)."""
        if window is None:
            return [obs.value for obs in self._observations]
        return [obs.value for obs in self._tail(window)]

    def times(self, window: Optional[int] = None) -> List[float]:
        """The most recent ``window`` timestamps (all when ``window`` is ``None``)."""
        if window is None:
            return [obs.time for obs in self._observations]
        return [obs.time for obs in self._tail(window)]

    def since(self, time: float) -> List[Observation]:
        """Observations with timestamp ``>= time``."""
        return [obs for obs in self._observations if obs.time >= time]

    def mean(self, window: Optional[int] = None) -> float:
        """Mean of the most recent ``window`` values (NaN when empty)."""
        values = self.values(window)
        return float(np.mean(values)) if values else float("nan")

    def std(self, window: Optional[int] = None) -> float:
        """Standard deviation of recent values (NaN when empty)."""
        values = self.values(window)
        return float(np.std(values)) if values else float("nan")
