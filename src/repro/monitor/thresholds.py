"""Performance thresholds (the *Z* of Algorithm 2).

Algorithm 2 of the paper triggers recalibration when the *minimum* execution
time observed in a monitoring round exceeds a performance threshold ``Z``.
The paper leaves the provenance of ``Z`` open ("particular performance
thresholds based on the nature of the skeleton, the computation/communication
ratio of the program, and the availability of grid resources"), so this
module offers three concrete policies:

* :class:`AbsoluteThreshold` — a fixed value of ``Z`` in virtual seconds.
* :class:`RelativeThreshold` — ``Z = factor × reference``, where the
  reference is established from the calibration round (the common case in
  the experiments: "tolerate up to 1.5× the calibrated per-task time").
* :class:`AdaptiveThreshold` — a relative threshold whose reference tracks a
  low quantile of recent observations, so the tolerance follows genuine
  workload drift while still firing on node-local degradation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive

__all__ = [
    "PerformanceThreshold",
    "AbsoluteThreshold",
    "RelativeThreshold",
    "AdaptiveThreshold",
]


class PerformanceThreshold:
    """Base class: decide whether a round of execution times breaches *Z*."""

    def calibrate(self, reference_times: Sequence[float]) -> None:
        """Install the calibration-round reference (may be a no-op)."""

    def value(self) -> float:
        """The current numeric value of *Z* (virtual seconds)."""
        raise NotImplementedError

    def breached(self, round_times: Sequence[float]) -> bool:
        """Algorithm 2's test: ``min(round_times) > Z``.

        An empty round never breaches.
        """
        if len(round_times) == 0:
            return False
        return float(min(round_times)) > self.value()

    def observe(self, round_times: Sequence[float]) -> None:
        """Feed a round of observations to adaptive policies (default no-op)."""


class AbsoluteThreshold(PerformanceThreshold):
    """A fixed threshold in virtual seconds."""

    def __init__(self, z: float):
        check_positive(z, "z")
        self._z = float(z)

    def value(self) -> float:
        return self._z

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AbsoluteThreshold(z={self._z})"


class RelativeThreshold(PerformanceThreshold):
    """``Z = factor × reference`` with the reference set at calibration time.

    Until :meth:`calibrate` is called the threshold is infinite (never
    breached), which mirrors the paper's structure: Algorithm 2 only runs
    after Algorithm 1 has established the initial conditions.
    """

    def __init__(self, factor: float = 1.5, reference: Optional[float] = None):
        check_positive(factor, "factor")
        self.factor = float(factor)
        self._reference = float(reference) if reference is not None else None
        if self._reference is not None:
            check_positive(self._reference, "reference")

    def calibrate(self, reference_times: Sequence[float]) -> None:
        if len(reference_times) == 0:
            raise ConfigurationError("cannot calibrate a threshold from an empty sample")
        # The reference is the *median* calibrated time: robust to one slow
        # node dominating the sample.
        self._reference = float(np.median(list(reference_times)))
        if self._reference <= 0:
            # Zero-cost calibration tasks: fall back to a tiny positive
            # reference so the threshold stays meaningful.
            self._reference = 1e-9

    @property
    def reference(self) -> Optional[float]:
        """The calibrated reference time (``None`` before calibration)."""
        return self._reference

    def value(self) -> float:
        if self._reference is None:
            return float("inf")
        return self.factor * self._reference

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelativeThreshold(factor={self.factor}, reference={self._reference})"


class AdaptiveThreshold(RelativeThreshold):
    """A relative threshold whose reference drifts with recent observations.

    After each monitoring round the reference moves toward the round's
    ``quantile``-th percentile by a fraction ``adaptation_rate``.  This keeps
    *Z* meaningful when the workload's intrinsic cost drifts (e.g. later
    tasks are simply bigger) while still firing when individual nodes
    degrade relative to the rest.
    """

    def __init__(self, factor: float = 1.5, quantile: float = 0.25,
                 adaptation_rate: float = 0.2, reference: Optional[float] = None):
        super().__init__(factor=factor, reference=reference)
        if not (0.0 <= quantile <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {quantile}")
        if not (0.0 < adaptation_rate <= 1.0):
            raise ConfigurationError(
                f"adaptation_rate must be in (0, 1], got {adaptation_rate}"
            )
        self.quantile = float(quantile)
        self.adaptation_rate = float(adaptation_rate)

    def observe(self, round_times: Sequence[float]) -> None:
        if len(round_times) == 0 or self._reference is None:
            return
        target = float(np.quantile(list(round_times), self.quantile))
        if target <= 0:
            return
        self._reference += self.adaptation_rate * (target - self._reference)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveThreshold(factor={self.factor}, quantile={self.quantile}, "
            f"rate={self.adaptation_rate}, reference={self._reference})"
        )
