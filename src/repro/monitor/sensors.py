"""Resource sensors.

Sensors bridge an execution environment's observables (external CPU
utilisation and effective link bandwidth) into the monitoring layer's time
series.  Each sensor owns its own
:class:`repro.monitor.history.TimeSeries` and can be polled at arbitrary
times.  The environment may be the virtual-time grid simulator or any
:class:`~repro.backends.base.ExecutionBackend` — sensors only require the
``observe_load`` / ``observe_bandwidth`` / ``topology`` surface.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError
from repro.monitor.history import TimeSeries

__all__ = ["Sensor", "CpuLoadSensor", "BandwidthSensor"]


class Sensor:
    """Base class: a pollable scalar measurement with history."""

    def __init__(self, name: str, capacity: int = 1024):
        if not name:
            raise ConfigurationError("sensor name must be non-empty")
        self.name = name
        self.history = TimeSeries(capacity=capacity)

    def read(self, time: float) -> float:
        """Take a measurement at virtual ``time`` and record it."""
        value = self._measure(time)
        self.history.append(time, value)
        return value

    def _measure(self, time: float) -> float:
        raise NotImplementedError

    @property
    def last_value(self) -> Optional[float]:
        """The most recent reading, or ``None`` before the first poll."""
        last = self.history.last
        return None if last is None else last.value


class CpuLoadSensor(Sensor):
    """External CPU utilisation of one grid node (fraction in [0, 1))."""

    def __init__(self, simulator, node_id: str, capacity: int = 1024):
        super().__init__(name=f"cpu/{node_id}", capacity=capacity)
        if node_id not in simulator.topology:
            raise ConfigurationError(f"unknown node {node_id!r}")
        self.simulator = simulator
        self.node_id = node_id

    def _measure(self, time: float) -> float:
        return self.simulator.observe_load(self.node_id, time)


class BandwidthSensor(Sensor):
    """Effective bandwidth (bytes/s) between two grid nodes."""

    def __init__(self, simulator, src: str, dst: str, capacity: int = 1024):
        super().__init__(name=f"bw/{src}->{dst}", capacity=capacity)
        for node_id in (src, dst):
            if node_id not in simulator.topology:
                raise ConfigurationError(f"unknown node {node_id!r}")
        self.simulator = simulator
        self.src = src
        self.dst = dst

    def _measure(self, time: float) -> float:
        return self.simulator.observe_bandwidth(self.src, self.dst, time)
