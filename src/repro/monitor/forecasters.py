"""Short-term forecasters for resource observations.

The paper's calibration phase extrapolates node performance from recent
observations; NWS-style monitors do the same for load and bandwidth.  This
module provides a small family of predictors over a
:class:`repro.monitor.history.TimeSeries`:

* :class:`LastValueForecaster` — persistence (next = last observed).
* :class:`MeanForecaster` — running mean of the whole history.
* :class:`SlidingWindowForecaster` — mean of the last *k* observations.
* :class:`MedianForecaster` — median of the last *k* observations (robust to
  bursts).
* :class:`ExponentialSmoothingForecaster` — EWMA with configurable alpha.
* :class:`AdaptiveForecaster` — keeps every candidate predictor, tracks each
  one's mean absolute error on past one-step-ahead predictions and answers
  with the current best (the Network Weather Service "forecaster of
  forecasters" idea).

Experiment E12 compares their accuracy on synthetic load traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.monitor.history import TimeSeries

__all__ = [
    "Forecaster",
    "LastValueForecaster",
    "MeanForecaster",
    "SlidingWindowForecaster",
    "MedianForecaster",
    "ExponentialSmoothingForecaster",
    "AdaptiveForecaster",
    "make_forecaster",
]


class Forecaster:
    """Base class: predict the next value of a series."""

    #: short name used by ``make_forecaster`` and reports
    kind = "base"

    def predict(self, series: TimeSeries) -> float:
        """Predict the next observation of ``series``.

        Returns NaN when the series is empty — callers treat NaN as "no
        information" and fall back to uniform assumptions.
        """
        raise NotImplementedError

    def evaluate(self, values: Sequence[float]) -> float:
        """Mean absolute one-step-ahead error over ``values`` (lower is better)."""
        if len(values) < 2:
            return float("nan")
        series = TimeSeries(capacity=len(values))
        errors: List[float] = []
        for index, value in enumerate(values):
            if index > 0:
                prediction = self.predict(series)
                if not np.isnan(prediction):
                    errors.append(abs(prediction - value))
            series.append(float(index), float(value))
        return float(np.mean(errors)) if errors else float("nan")


class LastValueForecaster(Forecaster):
    """Persistence forecast: the next value equals the last observed value."""

    kind = "last"

    def predict(self, series: TimeSeries) -> float:
        last = series.last
        return float("nan") if last is None else last.value


class MeanForecaster(Forecaster):
    """Running mean of the entire (bounded) history."""

    kind = "mean"

    def predict(self, series: TimeSeries) -> float:
        return series.mean() if len(series) else float("nan")


class SlidingWindowForecaster(Forecaster):
    """Mean of the most recent ``window`` observations."""

    kind = "window"

    def __init__(self, window: int = 8):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window

    def predict(self, series: TimeSeries) -> float:
        if not len(series):
            return float("nan")
        return float(np.mean(series.values(self.window)))


class MedianForecaster(Forecaster):
    """Median of the most recent ``window`` observations (burst-robust)."""

    kind = "median"

    def __init__(self, window: int = 8):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window

    def predict(self, series: TimeSeries) -> float:
        if not len(series):
            return float("nan")
        return float(np.median(series.values(self.window)))


class ExponentialSmoothingForecaster(Forecaster):
    """Exponentially weighted moving average with smoothing factor ``alpha``."""

    kind = "ewma"

    def __init__(self, alpha: float = 0.3):
        if not (0.0 < alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha

    def predict(self, series: TimeSeries) -> float:
        values = series.values()
        if not values:
            return float("nan")
        estimate = values[0]
        for value in values[1:]:
            estimate = self.alpha * value + (1.0 - self.alpha) * estimate
        return float(estimate)


class AdaptiveForecaster(Forecaster):
    """Best-of-breed selector over a set of candidate forecasters.

    For every new prediction request it replays each candidate's one-step
    errors on the observed history and answers with the prediction of the
    candidate with the lowest mean absolute error so far.  Ties (including
    the empty-history case) fall back to the first candidate.
    """

    kind = "adaptive"

    def __init__(self, candidates: Optional[Sequence[Forecaster]] = None):
        if candidates is None:
            candidates = [
                LastValueForecaster(),
                SlidingWindowForecaster(window=4),
                SlidingWindowForecaster(window=16),
                MedianForecaster(window=8),
                ExponentialSmoothingForecaster(alpha=0.3),
                ExponentialSmoothingForecaster(alpha=0.7),
            ]
        self.candidates: List[Forecaster] = list(candidates)
        if not self.candidates:
            raise ConfigurationError("AdaptiveForecaster needs at least one candidate")

    def errors(self, series: TimeSeries) -> Dict[str, float]:
        """Mean absolute error of each candidate on the series history."""
        values = series.values()
        result: Dict[str, float] = {}
        for index, candidate in enumerate(self.candidates):
            key = f"{candidate.kind}#{index}"
            result[key] = candidate.evaluate(values)
        return result

    def best(self, series: TimeSeries) -> Forecaster:
        """The candidate with the lowest historical error (first on ties/NaN)."""
        values = series.values()
        best_candidate = self.candidates[0]
        best_error = float("inf")
        for candidate in self.candidates:
            error = candidate.evaluate(values)
            if not np.isnan(error) and error < best_error:
                best_error = error
                best_candidate = candidate
        return best_candidate

    def predict(self, series: TimeSeries) -> float:
        return self.best(series).predict(series)


_FORECASTER_FACTORIES = {
    "last": LastValueForecaster,
    "mean": MeanForecaster,
    "window": SlidingWindowForecaster,
    "median": MedianForecaster,
    "ewma": ExponentialSmoothingForecaster,
    "adaptive": AdaptiveForecaster,
}


def make_forecaster(kind: str, **kwargs) -> Forecaster:
    """Instantiate a forecaster by its short name.

    >>> make_forecaster("ewma", alpha=0.5).kind
    'ewma'
    """
    try:
        factory = _FORECASTER_FACTORIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown forecaster kind {kind!r}; expected one of "
            f"{sorted(_FORECASTER_FACTORIES)}"
        ) from None
    return factory(**kwargs)
