"""Short-term forecasters for resource observations.

The paper's calibration phase extrapolates node performance from recent
observations; NWS-style monitors do the same for load and bandwidth.  This
module provides a small family of predictors over a
:class:`repro.monitor.history.TimeSeries`:

* :class:`LastValueForecaster` — persistence (next = last observed).
* :class:`MeanForecaster` — running mean of the whole history.
* :class:`SlidingWindowForecaster` — mean of the last *k* observations.
* :class:`MedianForecaster` — median of the last *k* observations (robust to
  bursts).
* :class:`ExponentialSmoothingForecaster` — EWMA with configurable alpha.
* :class:`AdaptiveForecaster` — keeps every candidate predictor, tracks each
  one's mean absolute error on past one-step-ahead predictions and answers
  with the current best (the Network Weather Service "forecaster of
  forecasters" idea).

Experiment E12 compares their accuracy on synthetic load traces.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.monitor.history import TimeSeries

__all__ = [
    "Forecaster",
    "LastValueForecaster",
    "MeanForecaster",
    "SlidingWindowForecaster",
    "MedianForecaster",
    "ExponentialSmoothingForecaster",
    "AdaptiveForecaster",
    "make_forecaster",
]


class Forecaster:
    """Base class: predict the next value of a series."""

    #: short name used by ``make_forecaster`` and reports
    kind = "base"

    def predict(self, series: TimeSeries) -> float:
        """Predict the next observation of ``series``.

        Returns NaN when the series is empty — callers treat NaN as "no
        information" and fall back to uniform assumptions.
        """
        raise NotImplementedError

    def evaluate(self, values: Sequence[float]) -> float:
        """Mean absolute one-step-ahead error over ``values`` (lower is better)."""
        if len(values) < 2:
            return float("nan")
        series = TimeSeries(capacity=len(values))
        errors: List[float] = []
        for index, value in enumerate(values):
            if index > 0:
                prediction = self.predict(series)
                if not np.isnan(prediction):
                    errors.append(abs(prediction - value))
            series.append(float(index), float(value))
        return float(np.mean(errors)) if errors else float("nan")


class LastValueForecaster(Forecaster):
    """Persistence forecast: the next value equals the last observed value."""

    kind = "last"

    def predict(self, series: TimeSeries) -> float:
        last = series.last
        return float("nan") if last is None else last.value


class MeanForecaster(Forecaster):
    """Running mean of the entire (bounded) history."""

    kind = "mean"

    def predict(self, series: TimeSeries) -> float:
        return series.mean() if len(series) else float("nan")


class SlidingWindowForecaster(Forecaster):
    """Mean of the most recent ``window`` observations."""

    kind = "window"

    def __init__(self, window: int = 8):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window

    def predict(self, series: TimeSeries) -> float:
        if not len(series):
            return float("nan")
        return float(np.mean(series.values(self.window)))


class MedianForecaster(Forecaster):
    """Median of the most recent ``window`` observations (burst-robust)."""

    kind = "median"

    def __init__(self, window: int = 8):
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window

    def predict(self, series: TimeSeries) -> float:
        if not len(series):
            return float("nan")
        return float(np.median(series.values(self.window)))


class ExponentialSmoothingForecaster(Forecaster):
    """Exponentially weighted moving average with smoothing factor ``alpha``.

    The prediction is the EWMA fold over the series' (bounded) history.
    Rather than replaying that fold on every call — O(n) per predict,
    O(n²) across a run — the forecaster keeps per-series incremental state
    keyed on :attr:`~repro.monitor.history.TimeSeries.total_appends`: a
    repeated predict is O(1), a predict after *k* new observations folds
    only those *k*.  Once the ring starts evicting, the naive fold's
    starting value changes with every append, so the state falls back to a
    full (capacity-bounded) refold; predictions are bit-identical to the
    naive implementation in every regime.
    """

    kind = "ewma"

    def __init__(self, alpha: float = 0.3):
        if not (0.0 < alpha <= 1.0):
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        #: series -> (total_appends at fold time, folded estimate)
        self._state: "weakref.WeakKeyDictionary[TimeSeries, tuple]" = \
            weakref.WeakKeyDictionary()

    def _fold(self, values: Sequence[float],
              estimate: Optional[float] = None) -> float:
        for value in values:
            estimate = (value if estimate is None
                        else self.alpha * value + (1.0 - self.alpha) * estimate)
        assert estimate is not None
        return estimate

    def predict(self, series: TimeSeries) -> float:
        if not len(series):
            return float("nan")
        total = getattr(series, "total_appends", None)
        if total is None:  # foreign series type: stay naive
            return float(self._fold(series.values()))
        state = self._state.get(series)
        if state is not None:
            seen, estimate = state
            if seen == total:
                return float(estimate)
            if seen < total <= series.capacity:
                # No eviction since the cached fold: extend it with the
                # new tail only (O(new values), not O(history)).
                estimate = self._fold(series.values(total - seen), estimate)
                self._state[series] = (total, estimate)
                return float(estimate)
        estimate = self._fold(series.values())
        self._state[series] = (total, estimate)
        return float(estimate)


class _AdaptiveState:
    """Per-series incremental scoreboard of an :class:`AdaptiveForecaster`.

    ``mirror`` replays the observed prefix so each candidate's *pending*
    one-step-ahead prediction can be scored against the next value as it
    arrives — the same errors :meth:`Forecaster.evaluate` computes by
    replaying the whole history, accumulated once instead of per call.
    """

    __slots__ = ("seen", "mirror", "err_sum", "err_cnt", "pending")

    def __init__(self, capacity: int, n_candidates: int):
        self.seen = 0
        self.mirror = TimeSeries(capacity=capacity)
        self.err_sum = [0.0] * n_candidates
        self.err_cnt = [0] * n_candidates
        self.pending = [float("nan")] * n_candidates


class AdaptiveForecaster(Forecaster):
    """Best-of-breed selector over a set of candidate forecasters.

    Answers every prediction request with the prediction of the candidate
    whose one-step-ahead mean absolute error on the observed history is
    lowest.  Ties (including the empty-history case) fall back to the first
    candidate.

    :meth:`predict` keeps the error scoreboard incrementally (keyed on the
    series' append counter), so repeated predicts cost O(1) amortised per
    new observation instead of replaying the entire history per call —
    while returning exactly what the naive replay would.  Once the series'
    ring evicts history the replayed window would shift per append, so the
    forecaster falls back to the (capacity-bounded) naive replay.
    :meth:`errors` and :meth:`best` remain the naive diagnostic spellings.
    """

    kind = "adaptive"

    def __init__(self, candidates: Optional[Sequence[Forecaster]] = None):
        if candidates is None:
            candidates = [
                LastValueForecaster(),
                SlidingWindowForecaster(window=4),
                SlidingWindowForecaster(window=16),
                MedianForecaster(window=8),
                ExponentialSmoothingForecaster(alpha=0.3),
                ExponentialSmoothingForecaster(alpha=0.7),
            ]
        self.candidates: List[Forecaster] = list(candidates)
        if not self.candidates:
            raise ConfigurationError("AdaptiveForecaster needs at least one candidate")
        self._state: "weakref.WeakKeyDictionary[TimeSeries, _AdaptiveState]" = \
            weakref.WeakKeyDictionary()

    def errors(self, series: TimeSeries) -> Dict[str, float]:
        """Mean absolute error of each candidate on the series history."""
        values = series.values()
        result: Dict[str, float] = {}
        for index, candidate in enumerate(self.candidates):
            key = f"{candidate.kind}#{index}"
            result[key] = candidate.evaluate(values)
        return result

    def best(self, series: TimeSeries) -> Forecaster:
        """The candidate with the lowest historical error (first on ties/NaN)."""
        values = series.values()
        best_candidate = self.candidates[0]
        best_error = float("inf")
        for candidate in self.candidates:
            error = candidate.evaluate(values)
            if not np.isnan(error) and error < best_error:
                best_error = error
                best_candidate = candidate
        return best_candidate

    def predict(self, series: TimeSeries) -> float:
        if not len(series):
            return self.candidates[0].predict(series)
        total = getattr(series, "total_appends", None)
        if total is None or total > series.capacity:
            # Foreign series type, or the ring is evicting: incremental
            # errors would diverge from the naive replay — stay naive.
            return self.best(series).predict(series)
        state = self._state.get(series)
        if state is None or state.seen > total:
            state = _AdaptiveState(series.capacity, len(self.candidates))
            self._state[series] = state
        if state.seen < total:
            # The unseen suffix is exactly the last (total - seen) entries
            # (no eviction has occurred); fetch only that tail.
            fresh = total - state.seen
            values = series.values(fresh)
            times = series.times(fresh)
            for value, when in zip(values, times):
                for i, _ in enumerate(self.candidates):
                    prediction = state.pending[i]
                    if not np.isnan(prediction):
                        state.err_sum[i] += abs(prediction - value)
                        state.err_cnt[i] += 1
                state.mirror.append(when, value)
                for i, candidate in enumerate(self.candidates):
                    state.pending[i] = candidate.predict(state.mirror)
            state.seen = total
        best_candidate = self.candidates[0]
        best_error = float("inf")
        for i, candidate in enumerate(self.candidates):
            if not state.err_cnt[i]:
                continue
            error = state.err_sum[i] / state.err_cnt[i]
            if error < best_error:
                best_error = error
                best_candidate = candidate
        return best_candidate.predict(series)


_FORECASTER_FACTORIES = {
    "last": LastValueForecaster,
    "mean": MeanForecaster,
    "window": SlidingWindowForecaster,
    "median": MedianForecaster,
    "ewma": ExponentialSmoothingForecaster,
    "adaptive": AdaptiveForecaster,
}


def make_forecaster(kind: str, **kwargs) -> Forecaster:
    """Instantiate a forecaster by its short name.

    >>> make_forecaster("ewma", alpha=0.5).kind
    'ewma'
    """
    try:
        factory = _FORECASTER_FACTORIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown forecaster kind {kind!r}; expected one of "
            f"{sorted(_FORECASTER_FACTORIES)}"
        ) from None
    return factory(**kwargs)
