"""Exception hierarchy for the GRASP reproduction.

All library exceptions derive from :class:`GraspError` so callers can catch
library failures with a single ``except`` clause.  Each GRASP phase and each
substrate has its own subclass, mirroring the phase structure of the
methodology (programming, compilation, calibration, execution) plus the
substrates (grid, communication, scheduling).
"""

from __future__ import annotations


class GraspError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class ConfigurationError(GraspError):
    """Raised when a configuration object is internally inconsistent.

    Examples include a negative performance threshold, a calibration sample
    larger than the input set, or a grid description with zero nodes.
    """


class GridError(GraspError):
    """Raised by the grid simulator substrate.

    Covers malformed topologies (missing links, duplicate node identifiers),
    references to unknown nodes and attempts to use a failed node.
    """


class ClusterError(GridError):
    """Raised by the distributed cluster substrate (:mod:`repro.cluster`).

    Covers coordinator lifecycle problems (listening socket failures,
    registration timeouts), dispatches to nodes with no live worker agent
    and worker connections lost mid-task.  Subclasses :class:`GridError`
    because a cluster of TCP worker agents is one concrete parallel
    environment, exactly like the simulated grid.
    """


class ProtocolError(ClusterError):
    """Raised by the cluster wire protocol (:mod:`repro.cluster.protocol`).

    Covers malformed frames (bad magic, unsupported protocol version,
    oversized lengths), truncated frames at end-of-stream and payloads that
    do not decode to a known message type.
    """


class CommunicationError(GraspError):
    """Raised by the message-passing environment.

    Covers sends to unknown ranks, mismatched collective participation and
    deserialisation failures.
    """


class SkeletonError(GraspError):
    """Raised when a skeleton is constructed or invoked incorrectly.

    Examples include a pipeline with no stages, a farm without a worker
    function, or nesting that exceeds the supported composition depth.
    """


class CompilationError(GraspError):
    """Raised by the GRASP compilation (binding) phase.

    The compilation phase links a skeletal program with the grid environment
    and the monitoring library; failures here indicate the program cannot be
    deployed (e.g. more pipeline stages than available nodes and replication
    disabled).
    """


class CalibrationError(GraspError):
    """Raised by the calibration phase (Algorithm 1).

    Covers empty calibration samples, ranking failures (e.g. singular
    regression systems with no fallback) and selections that violate the
    skeleton's minimum node requirements.
    """


class ExecutionError(GraspError):
    """Raised by the execution phase (Algorithm 2).

    Covers worker function failures that exhaust retry policies, exhausted
    node pools after failures, and monitor inconsistencies.
    """


class SchedulingError(GraspError):
    """Raised by task-to-node schedulers.

    Covers attempts to schedule on an empty node set and policies asked to
    dispatch tasks that no longer exist.
    """


class LockOrderError(GraspError):
    """Raised by the lock-order sanitizer (:mod:`repro.sanitizers.locks`).

    Signals that two threads have been observed acquiring the same pair of
    instrumented locks in opposite orders — a potential deadlock, even if
    this particular run never interleaved into one.
    """


class LintError(GraspError):
    """Raised by the static-analysis engine (:mod:`repro.lint`).

    Covers unknown rule identifiers, unreadable target paths and source
    files that fail to parse.
    """


class WorkloadError(GraspError):
    """Raised by workload generators when parameters are invalid."""


class AnalysisError(GraspError):
    """Raised by the analysis/experiment harness for malformed results."""
