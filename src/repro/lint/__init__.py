"""graspcheck: repo-specific static analysis for the GRASP runtime.

Six PRs of review hardening fixed the same classes of concurrency bug by
hand (see CHANGES.md): sockets closed without ``shutdown()`` stranding
reader threads, unnamed threads escaping the ``grasp-*`` leak checks,
unpicklable callables reaching dispatch, ``BaseException`` capture
swallowing interrupts, raw wall-clock reads threatening simulated
bit-identity.  This package turns those invariants into enforced rules.

Run it as::

    PYTHONPATH=src python -m repro.lint src/repro

Findings can be suppressed inline with ``# graspcheck: disable=GCxxx``
on the offending line.  See :mod:`repro.lint.rules` for the rule registry
and per-rule documentation.
"""

from __future__ import annotations

from repro.lint.engine import Finding, lint_paths, lint_source
from repro.lint.rules import all_rules, get_rule

__all__ = ["Finding", "all_rules", "get_rule", "lint_paths", "lint_source"]
