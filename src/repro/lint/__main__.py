"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit status: 0 clean, 1 findings, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exceptions import LintError
from repro.lint.engine import lint_paths, render_json, render_text
from repro.lint.rules import rule_table


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="graspcheck: repo-specific static analysis for the GRASP runtime",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.list_rules:
        for row in rule_table():
            print(f"{row['id']}: {row['summary']}")
            print(f"    {row['rationale']}")
        return 0
    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        findings = lint_paths(args.paths, select=select)
    except LintError as exc:
        print(f"graspcheck: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
