"""GC004: payload-execution excepts must catch Exception, never BaseException."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule, own_nodes

#: The payload-execution entry points.  A ``try`` whose body calls one of
#: these is capturing user-code failure for shipment back to the driver.
_PAYLOAD_CALLS = {
    "run_payload",
    "run_chunk",
    "run_stage",
    "run_shared_payload",
    "run_shared_chunk",
    "run_shared_stage",
}


def _callee_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _stmt_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """The statement plus its own (non-nested-def) descendants."""
    yield stmt
    yield from own_nodes(stmt)


def _handler_too_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in types:
        name = expr.id if isinstance(expr, ast.Name) else getattr(expr, "attr", "")
        if name == "BaseException":
            return True
    return False


class PayloadExceptRule(Rule):
    id = "GC004"
    summary = "payload-execution except clauses must catch Exception, not BaseException"
    rationale = (
        "Capturing BaseException around run_payload() ships KeyboardInterrupt/"
        "SystemExit back to the driver as a task *result* instead of killing "
        "the worker agent; the capture was narrowed to Exception in PR 4 and "
        "must stay that way."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            body_calls_payload = any(
                isinstance(sub, ast.Call) and _callee_name(sub) in _PAYLOAD_CALLS
                for stmt in node.body
                for sub in _stmt_nodes(stmt)
            )
            if not body_calls_payload:
                continue
            for handler in node.handlers:
                if _handler_too_broad(handler):
                    label = (
                        "bare except"
                        if handler.type is None
                        else "except BaseException"
                    )
                    yield self.finding(
                        ctx,
                        handler,
                        f"{label} around a payload-execution call; catch "
                        "Exception so interrupts kill the agent instead of "
                        "being shipped to the driver as results",
                    )
