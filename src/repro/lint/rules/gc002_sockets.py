"""GC002: in cluster code, sockets must be shutdown() before close()."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule, dotted, iter_functions, own_nodes


def _is_socket_receiver(name: str) -> bool:
    last = name.rsplit(".", 1)[-1]
    return "sock" in last.lower()


class SocketShutdownRule(Rule):
    id = "GC002"
    summary = "socket.close() in cluster/ requires a shutdown() on the same socket"
    rationale = (
        "close() alone does not wake a peer thread blocked in recv(); the "
        "coordinator's _mark_dead had to learn shutdown-before-close after "
        "reader threads stranded on dead workers (PR 4).  Listening sockets "
        "(accept loops) are exempt via naming: this rule keys on receivers "
        "whose final attribute mentions 'sock'."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dir("cluster"):
            return
        for fn, _ in iter_functions(ctx.tree):
            shutdown_receivers: Set[str] = set()
            closes = []
            for node in own_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                receiver = dotted(node.func.value)
                if receiver is None or not _is_socket_receiver(receiver):
                    continue
                if node.func.attr == "shutdown":
                    shutdown_receivers.add(receiver)
                elif node.func.attr == "close":
                    closes.append((node, receiver))
            for node, receiver in closes:
                if receiver not in shutdown_receivers:
                    yield self.finding(
                        ctx,
                        node,
                        f"{receiver}.close() without a {receiver}.shutdown() in the "
                        "same function; a blocked reader on the peer side will "
                        "not wake",
                    )
