"""Shared infrastructure for graspcheck rules.

Each rule is a subclass of :class:`Rule` with a stable ``id`` (``GCxxx``),
a one-line ``summary``, a ``rationale`` naming the historical bug class it
encodes, and a ``check`` method that walks a parsed module and yields
:class:`~repro.lint.engine.Finding` objects.

Rules receive a :class:`FileContext` describing the file under analysis.
Path scoping uses *directory components* (``ctx.scope_parts``), taken
relative to the last ``repro`` component when present — so both
``src/repro/cluster/worker.py`` and a test fixture at
``tmp/cluster/worker.py`` scope as ``cluster``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.lint.engine import Finding

__all__ = ["FileContext", "Rule", "dotted", "own_nodes", "iter_functions"]


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    path: str
    source: str
    tree: ast.Module
    #: Path components used for scoping, relative to the package root when
    #: the path contains a ``repro`` component (e.g. ``("cluster", "worker.py")``).
    scope_parts: Tuple[str, ...]

    def in_dir(self, name: str) -> bool:
        """Whether any *directory* component of the scoped path equals ``name``."""
        return name in self.scope_parts[:-1]

    @property
    def basename(self) -> str:
        return self.scope_parts[-1] if self.scope_parts else self.path


class Rule:
    """Base class for graspcheck rules."""

    id: str = "GC000"
    summary: str = ""
    #: The historical bug class this rule encodes (shown by ``--list-rules``).
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def dotted(expr: ast.AST) -> Optional[str]:
    """The dotted-name string of an attribute/name chain, else None.

    ``self.sock.close`` -> ``"self.sock.close"``; anything containing a
    call or subscript along the chain returns None.
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """All descendant nodes of ``fn`` excluding nested function/class bodies.

    The roots of nested defs are still yielded (so a rule can notice them);
    their subtrees are not.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_functions(
    tree: ast.Module,
) -> Iterable[Tuple[ast.AST, bool]]:
    """Every function/async-function in the module, with an is-async flag."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node, False
        elif isinstance(node, ast.AsyncFunctionDef):
            yield node, True
