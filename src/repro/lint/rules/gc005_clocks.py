"""GC005: no raw wall-clock reads in core/, monitor/ or skeletons/."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule

_CLOCK_FNS = {
    "time",
    "monotonic",
    "perf_counter",
    "time_ns",
    "monotonic_ns",
    "perf_counter_ns",
}

_SCOPED_DIRS = ("core", "monitor", "skeletons")


class SimulatedClockRule(Rule):
    id = "GC005"
    summary = "no time.time()/time.monotonic() in core/, monitor/, skeletons/"
    rationale = (
        "The simulated grid promises bit-identical replays; a raw wall-clock "
        "read in scheduling/monitoring code silently breaks determinism.  "
        "Timing in these layers must route through the backend/simulator "
        "clock abstraction."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(ctx.in_dir(d) for d in _SCOPED_DIRS):
            return
        module_aliases: Set[str] = set()
        fn_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FNS:
                        fn_aliases.add(alias.asname or alias.name)
        if not module_aliases and not fn_aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
                and func.attr in _CLOCK_FNS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{func.value.id}.{func.attr}() in a simulated-clock layer; "
                    "route timing through the backend clock",
                )
            elif isinstance(func, ast.Name) and func.id in fn_aliases:
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() (imported from time) in a simulated-clock "
                    "layer; route timing through the backend clock",
                )
