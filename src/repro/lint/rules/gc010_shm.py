"""GC010: SharedMemory construction is confined to ``backends/shm.py``."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule, dotted


class SharedMemoryConfinementRule(Rule):
    id = "GC010"
    summary = "SharedMemory(...) only inside backends/shm.py"
    rationale = (
        "Shared-memory segments have process-crossing ownership: who "
        "registers with the resource tracker, who unlinks, and what "
        "happens on worker death are all encoded in the shm module's "
        "BufferRegistry/dumps_oob/loads_oob lifecycle.  A raw "
        "SharedMemory(...) constructed anywhere else bypasses those "
        "rules and shows up later as a tracker KeyError, a leaked "
        "/dev/shm entry, or a segment unlinked under a live reader."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.basename == "shm.py" and ctx.in_dir("backends"):
            return
        class_aliases: Set[str] = set()
        module_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "multiprocessing.shared_memory":
                        module_aliases.add(alias.asname
                                           or "multiprocessing.shared_memory")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "multiprocessing.shared_memory":
                    for alias in node.names:
                        if alias.name == "SharedMemory":
                            class_aliases.add(alias.asname or alias.name)
                elif node.module == "multiprocessing":
                    for alias in node.names:
                        if alias.name == "shared_memory":
                            module_aliases.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in class_aliases:
                yield self.finding(
                    ctx, node,
                    f"{func.id}(...) outside backends/shm.py; go through "
                    "BufferRegistry/dumps_oob/loads_oob so segment "
                    "ownership and cleanup follow the data-plane rules",
                )
            elif (isinstance(func, ast.Attribute)
                  and func.attr == "SharedMemory"):
                name = dotted(func.value)
                if name in module_aliases:
                    yield self.finding(
                        ctx, node,
                        f"{name}.SharedMemory(...) outside backends/shm.py; "
                        "go through BufferRegistry/dumps_oob/loads_oob so "
                        "segment ownership and cleanup follow the "
                        "data-plane rules",
                    )
