"""GC007: encode before send — no inline serialization inside sendall()."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule

_SERIALIZERS = {"encode", "dumps", "dumps_payload", "pack"}


def _serializer_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _SERIALIZERS
    if isinstance(func, ast.Attribute):
        return func.attr in _SERIALIZERS
    return False


class EncodeBeforeSendRule(Rule):
    id = "GC007"
    summary = "sendall() arguments must be pre-encoded frames"
    rationale = (
        "sock.sendall(encode(msg)) serializes while holding the send lock "
        "and, worse, lets a pickling failure escape *mid-protocol*: PR 6 "
        "moved all encoding ahead of the socket write so a bad payload "
        "fails before any bytes hit a healthy worker's stream."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dir("cluster"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("sendall", "send"):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if _serializer_call(sub):
                        yield self.finding(
                            ctx,
                            sub,
                            "inline serialization inside a socket send; encode "
                            "the frame first, then send the finished bytes",
                        )
