"""GC003: no lambdas or nested defs flowing into dispatch/payload positions."""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule, dotted

#: Callables whose arguments cross a pickling boundary.
_SINK_NAMES = {"register_payload", "dumps_payload", "submit_ref", "dispatch"}


def _sink_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute):
        if node.func.attr in _SINK_NAMES:
            return True
        if node.func.attr == "submit":
            receiver = dotted(node.func.value)
            return receiver is not None and "coordinator" in receiver.lower()
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id in _SINK_NAMES
    return False


class _NestedDefCollector(ast.NodeVisitor):
    """Names bound to defs that are nested inside another function."""

    def __init__(self) -> None:
        self.nested: Set[str] = set()
        self._depth = 0

    def _visit_fn(self, node: ast.AST, name: str) -> None:
        if self._depth > 0:
            self.nested.add(name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_fn(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_fn(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1


class PicklableDispatchRule(Rule):
    id = "GC003"
    summary = "no lambdas/nested defs in dispatch or payload-registry arguments"
    rationale = (
        "Dispatch arguments are pickled onto the wire; a lambda or closure "
        "fails to pickle at send time and historically cascade-killed "
        "healthy workers before encode-before-send landed (PR 6).  Static "
        "rejection keeps the failure at the author's desk."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        collector = _NestedDefCollector()
        collector.visit(ctx.tree)
        nested = collector.nested
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _sink_call(node):
                continue
            args: List[ast.expr] = list(node.args)
            args.extend(kw.value for kw in node.keywords)
            for arg in args:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        ctx,
                        arg,
                        "lambda passed into a dispatch/payload position; "
                        "lambdas do not pickle",
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    yield self.finding(
                        ctx,
                        arg,
                        f"nested function {arg.id!r} passed into a dispatch/"
                        "payload position; closures do not pickle",
                    )
