"""GC008: stateful decode loops must persist progress in ``finally``."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule, own_nodes


def _self_attr_assigns(node: ast.AST) -> Iterator[ast.Assign]:
    for sub in own_nodes(node):
        if not isinstance(sub, (ast.Assign, ast.AugAssign)):
            continue
        targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield sub  # type: ignore[misc]
                break


class DecodeProgressRule(Rule):
    id = "GC008"
    summary = "decoder-state write-backs after a loop must sit in a finally block"
    rationale = (
        "FrameDecoder.feed consumes a shared buffer in a loop; if the "
        "consumed-offset write-back runs only on the fall-through path, a "
        "ProtocolError mid-batch rewinds the stream and the next feed() "
        "re-decodes (or half-decodes) frames already delivered.  Progress "
        "must be persisted in a finally."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef) or "Decoder" not in cls.name:
                continue
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                loops = [
                    n for n in own_nodes(method) if isinstance(n, (ast.While, ast.For))
                ]
                if not loops:
                    continue
                protected: Set[int] = set()
                for sub in ast.walk(method):
                    if isinstance(sub, ast.Try) and sub.finalbody:
                        for stmt in sub.finalbody:
                            protected.update(id(n) for n in ast.walk(stmt))
                    if isinstance(sub, (ast.While, ast.For)):
                        for stmt in sub.body + sub.orelse:
                            protected.update(id(n) for n in ast.walk(stmt))
                for assign in _self_attr_assigns(method):
                    if id(assign) in protected:
                        continue
                    max_loop_line = max(loop.lineno for loop in loops)
                    if assign.lineno <= max_loop_line:
                        # Pre-loop initialisation is not a progress write-back.
                        continue
                    yield self.finding(
                        ctx,
                        assign,
                        "decoder state written back after the decode loop "
                        "outside a finally; an exception mid-batch loses or "
                        "replays progress",
                    )
