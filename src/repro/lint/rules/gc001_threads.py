"""GC001: every ``threading.Thread`` must be grasp-named with explicit daemon."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule, dotted


def _static_name_prefix(node: ast.AST) -> Optional[str]:
    """The static leading text of a name expression, if determinable.

    Handles plain string constants and f-strings whose first piece is a
    constant (``f"grasp-spmd-{rank}"``).  Returns None when the prefix
    cannot be determined statically.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


class ThreadNamingRule(Rule):
    id = "GC001"
    summary = "threading.Thread must be named grasp-* with explicit daemon="
    rationale = (
        "The teardown leak checks sweep for threads named grasp-*; an "
        "unnamed service thread escapes them silently (PR 4/5 hardening), "
        "and an implicit daemon flag inherits from the spawning thread, "
        "which differs between pytest and worker subprocesses."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted(node.func)
            if callee not in ("threading.Thread", "Thread"):
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            if "daemon" not in kwargs:
                yield self.finding(
                    ctx, node, "threading.Thread without explicit daemon= flag"
                )
            name_value = kwargs.get("name")
            if name_value is None:
                yield self.finding(
                    ctx,
                    node,
                    "threading.Thread without name=; service threads must be "
                    "named grasp-* so leak checks can find them",
                )
                continue
            prefix = _static_name_prefix(name_value)
            if prefix is None:
                yield self.finding(
                    ctx,
                    node,
                    "threading.Thread name is not statically grasp-*-prefixed; "
                    "start the name with a 'grasp-' literal",
                )
            elif not prefix.startswith("grasp-"):
                yield self.finding(
                    ctx,
                    node,
                    f"threading.Thread name {prefix!r}... must start with 'grasp-'",
                )
