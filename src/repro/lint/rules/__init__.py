"""The graspcheck rule registry.

Every rule ships with a stable ``GCxxx`` identifier, a one-line summary
and a rationale naming the historical bug class it encodes (the README's
"Static analysis & sanitizers" table is generated from the same
metadata).  Add new rules by defining a :class:`~repro.lint.rules.base.Rule`
subclass and listing it in :data:`_RULE_CLASSES`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import LintError
from repro.lint.rules.base import Rule
from repro.lint.rules.gc001_threads import ThreadNamingRule
from repro.lint.rules.gc002_sockets import SocketShutdownRule
from repro.lint.rules.gc003_picklable import PicklableDispatchRule
from repro.lint.rules.gc004_excepts import PayloadExceptRule
from repro.lint.rules.gc005_clocks import SimulatedClockRule
from repro.lint.rules.gc006_async import EventLoopBlockingRule
from repro.lint.rules.gc007_encode import EncodeBeforeSendRule
from repro.lint.rules.gc008_decode import DecodeProgressRule
from repro.lint.rules.gc009_metrics_clock import MetricsClockRule
from repro.lint.rules.gc010_shm import SharedMemoryConfinementRule

__all__ = ["Rule", "all_rules", "get_rule", "rule_table"]

_RULE_CLASSES = [
    ThreadNamingRule,
    SocketShutdownRule,
    PicklableDispatchRule,
    PayloadExceptRule,
    SimulatedClockRule,
    EventLoopBlockingRule,
    EncodeBeforeSendRule,
    DecodeProgressRule,
    MetricsClockRule,
    SharedMemoryConfinementRule,
]

_REGISTRY: Dict[str, Rule] = {cls.id: cls() for cls in _RULE_CLASSES}


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by its ``GCxxx`` identifier."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise LintError(f"unknown rule id {rule_id!r} (known: {known})") from None


def rule_table() -> List[Dict[str, str]]:
    """Registry metadata for ``--list-rules`` and documentation."""
    return [
        {"id": rule.id, "summary": rule.summary, "rationale": rule.rationale}
        for rule in all_rules()
    ]
