"""GC006: no blocking round-trips on the event-loop thread."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule, dotted, own_nodes

_POST_NAMES = {"post", "call_soon_threadsafe"}


def _lockish(name: Optional[str]) -> bool:
    if name is None:
        return False
    return "lock" in name.rsplit(".", 1)[-1].lower()


def _blocking_in(nodes, ctx: FileContext, rule: Rule) -> Iterator[Finding]:
    for node in nodes:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "result":
                yield rule.finding(
                    ctx,
                    node,
                    "blocking Future.result() on the event-loop thread; await "
                    "the future or hop off the loop first",
                )
            elif node.func.attr == "acquire" and _lockish(dotted(node.func.value)):
                yield rule.finding(
                    ctx,
                    node,
                    "blocking lock.acquire() on the event-loop thread; a held "
                    "lock plus a parked coroutine deadlocks the loop",
                )
        elif isinstance(node, ast.With):
            for item in node.items:
                if _lockish(dotted(item.context_expr)):
                    yield rule.finding(
                        ctx,
                        node,
                        "sync 'with <lock>' inside a coroutine; use a loop-safe "
                        "primitive or hop off the loop",
                    )


class EventLoopBlockingRule(Rule):
    id = "GC006"
    summary = "no blocking Future.result()/lock acquisition on the event-loop thread"
    rationale = (
        "backends/async_.py runs a private loop on a grasp-asyncio-loop "
        "thread; any synchronous wait posted onto it (Future.result(), a "
        "thread lock) parks the only thread that could ever satisfy the "
        "wait.  Applies to coroutine bodies and to callbacks handed to "
        "post()/call_soon_threadsafe()."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.basename.startswith("async"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from _blocking_in(own_nodes(node), ctx, self)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in _POST_NAMES:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        yield from _blocking_in(ast.walk(arg.body), ctx, self)
