"""GC009: no raw wall-clock reads in metrics/ outside the clock shim."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding
from repro.lint.rules.base import FileContext, Rule

_CLOCK_FNS = {
    "time",
    "monotonic",
    "perf_counter",
    "time_ns",
    "monotonic_ns",
    "perf_counter_ns",
}


class MetricsClockRule(Rule):
    id = "GC009"
    summary = "no time.time()/perf_counter() in metrics/ outside clock.py"
    rationale = (
        "Metric snapshots carry the backend's (possibly virtual) run clock "
        "plus one wall stamp from the dedicated shim; a raw clock read "
        "anywhere else in the metrics layer mixes wall time into "
        "virtual-time runs and makes snapshots irreproducible.  All "
        "wall-clock access goes through repro.metrics.clock."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dir("metrics"):
            return
        if ctx.basename == "clock.py":
            # The one sanctioned wall-clock shim.
            return
        module_aliases: Set[str] = set()
        fn_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FNS:
                        fn_aliases.add(alias.asname or alias.name)
        if not module_aliases and not fn_aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
                and func.attr in _CLOCK_FNS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{func.value.id}.{func.attr}() in the metrics layer; "
                    "wall-clock access belongs in repro.metrics.clock",
                )
            elif isinstance(func, ast.Name) and func.id in fn_aliases:
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() (imported from time) in the metrics "
                    "layer; wall-clock access belongs in repro.metrics.clock",
                )
