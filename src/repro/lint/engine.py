"""The graspcheck analysis engine.

Parses each target file once, runs every (selected) rule over the AST,
filters findings through inline ``# graspcheck: disable=...`` suppression
comments, and renders the result as text or JSON.

Kept free of rule imports at module level: rules import
:class:`Finding` from here, and the registry is resolved lazily inside
:func:`lint_source` / :func:`lint_paths`.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import LintError

__all__ = ["Finding", "lint_source", "lint_paths", "render_text", "render_json"]

#: Inline suppression syntax: ``# graspcheck: disable=GC001`` (one rule),
#: ``# graspcheck: disable=GC001,GC002`` (several), or a bare
#: ``# graspcheck: disable`` (every rule on that line).
_SUPPRESS_RE = re.compile(r"graspcheck:\s*disable(?:=(?P<ids>[A-Z0-9,\s]+))?")


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions: line -> set of rule ids, or None for "all"."""
    out: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            line = tok.start[0]
            ids = match.group("ids")
            if ids is None:
                out[line] = None
            else:
                wanted = {part.strip() for part in ids.split(",") if part.strip()}
                existing = out.get(line, set())
                if existing is None:
                    continue
                out[line] = existing | wanted
    except tokenize.TokenError:
        # Unterminated strings etc.; the ast parse will report the real error.
        pass
    return out


def _scope_parts(path: str) -> Tuple[str, ...]:
    parts = Path(path).parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        scoped = parts[idx + 1 :]
        if scoped:
            return scoped
    return parts


def _resolve_rules(select: Optional[Sequence[str]]):
    from repro.lint.rules import all_rules, get_rule

    if select is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in select]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over one source string."""
    from repro.lint.rules.base import FileContext

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: failed to parse: {exc}") from exc
    ctx = FileContext(
        path=path, source=source, tree=tree, scope_parts=_scope_parts(path)
    )
    suppressed = _suppressions(source)
    findings: List[Finding] = []
    for rule in _resolve_rules(select):
        for finding in rule.check(ctx):
            if finding.line in suppressed:
                ids = suppressed[finding.line]
                if ids is None or finding.rule_id in ids:
                    continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _iter_target_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.is_file():
            yield path
        else:
            raise LintError(f"no such file or directory: {raw}")


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over files and directories."""
    findings: List[Finding] = []
    for path in _iter_target_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(path), select=select))
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(
        f"graspcheck: {len(findings)} finding(s)"
        if findings
        else "graspcheck: clean"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {
            "findings": [asdict(finding) for finding in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )
