"""MPI-like parallel environment substrate.

The original GRASP implementation is an ANSI C library on top of MPI; the
"parallel environment handles the underlying metacomputer/computational
grid, including the node initialisation, grid resource co-allocation,
inter-domain scheduling, and other infrastructure matters" (paper, §GRASP
Methodology).  This package provides the equivalent layer for the Python
reproduction:

* :class:`Message` and payload-size estimation.
* :class:`SimulatedCommunicator` — point-to-point and collective operations
  whose *costs* are charged against the virtual-time grid simulator.  This
  is the backend used by the GRASP runtime and all experiments.
* :class:`ThreadCommunicator` — an in-process, real-concurrency backend
  (threads + queues) exposing the same API, used to demonstrate that the
  skeleton programming interface also drives genuine parallel execution.
* :mod:`repro.comm.collectives` — tree/linear collective algorithms shared
  by both backends.
"""

from __future__ import annotations

from repro.comm.message import Message, estimate_size
from repro.comm.channel import Channel
from repro.comm.communicator import Communicator, SimulatedCommunicator
from repro.comm.inproc import ThreadCommunicator, run_spmd
from repro.comm.collectives import (
    binomial_tree_rounds,
    broadcast_completion_times,
    gather_completion_time,
    scatter_completion_times,
)

__all__ = [
    "Message",
    "estimate_size",
    "Channel",
    "Communicator",
    "SimulatedCommunicator",
    "ThreadCommunicator",
    "run_spmd",
    "binomial_tree_rounds",
    "broadcast_completion_times",
    "scatter_completion_times",
    "gather_completion_time",
]
