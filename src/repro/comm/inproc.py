"""In-process, real-concurrency communicator backend.

The simulated backend answers *how long would this take on the grid*; this
backend actually runs rank functions concurrently inside one Python process
using threads and :class:`repro.comm.channel.Channel` FIFOs.  It exists to

* demonstrate that the skeleton programming API is a genuine executable
  interface rather than a cost model, and
* provide a convenient local execution mode for the examples (results are
  identical to sequential execution; speed-up is not the point, virtual-time
  experiments are run on the simulator).

The API mirrors mpi4py's lower-case, pickle-based methods: ``send``,
``recv``, ``bcast``, ``scatter``, ``gather``, ``barrier``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.comm.channel import Channel
from repro.comm.message import Message
from repro.exceptions import CommunicationError

__all__ = ["ThreadCommunicator", "run_spmd"]


class _SharedState:
    """State shared by all ranks of one thread-backed communicator."""

    def __init__(self, size: int):
        self.size = size
        # channels[dst][src] — per-sender FIFO so tags cannot interleave
        # between senders.
        self.channels: Dict[int, Dict[int, Channel]] = {
            dst: {src: Channel() for src in range(size)} for dst in range(size)
        }
        self.barrier = threading.Barrier(size)
        self.collective_lock = threading.Lock()
        self.collective_buffers: Dict[str, Dict[int, Any]] = {}
        self.collective_events: Dict[str, threading.Event] = {}


class ThreadCommunicator:
    """Per-rank handle onto a thread-backed communicator.

    Instances are created by :func:`run_spmd`; each rank's function receives
    its own handle (same ``size``, different ``rank``).
    """

    def __init__(self, state: _SharedState, rank: int):
        self._state = state
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self._state.size

    # ----------------------------------------------------------- point2point
    def send(self, payload: Any, dst: int, tag: int = 0) -> None:
        """Send ``payload`` to rank ``dst`` (non-blocking buffered send)."""
        if not (0 <= dst < self.size):
            raise CommunicationError(f"dst rank {dst} out of range")
        message = Message.make(src=self.rank, dst=dst, payload=payload, tag=tag)
        self._state.channels[dst][self.rank].put(message)

    def recv(self, src: int, tag: Optional[int] = None,
             timeout: Optional[float] = 30.0) -> Any:
        """Receive the next message from ``src`` (optionally tag-filtered)."""
        if not (0 <= src < self.size):
            raise CommunicationError(f"src rank {src} out of range")
        message = self._state.channels[self.rank][src].get(tag=tag, timeout=timeout)
        return message.payload

    # ------------------------------------------------------------ collectives
    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        self._state.barrier.wait()

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root``; every rank returns it."""
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(payload, dst, tag=-101)
            return payload
        return self.recv(root, tag=-101)

    def scatter(self, payloads: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter one element per rank from ``root``; returns this rank's element."""
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise CommunicationError(
                    f"scatter at root needs exactly {self.size} payloads"
                )
            for dst in range(self.size):
                if dst != root:
                    self.send(payloads[dst], dst, tag=-102)
            return payloads[root]
        return self.recv(root, tag=-102)

    def gather(self, payload: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one element per rank at ``root``; other ranks return ``None``."""
        if self.rank == root:
            results: List[Any] = [None] * self.size
            results[root] = payload
            for src in range(self.size):
                if src != root:
                    results[src] = self.recv(src, tag=-103)
            return results
        self.send(payload, root, tag=-103)
        return None

    def allgather(self, payload: Any) -> List[Any]:
        """Gather at rank 0 then broadcast; every rank returns the full list."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, payload: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        """Reduce per-rank values with binary ``op``; root returns the result."""
        gathered = self.gather(payload, root=root)
        if self.rank != root:
            return None
        assert gathered is not None
        accumulator = gathered[0]
        for value in gathered[1:]:
            accumulator = op(accumulator, value)
        return accumulator


def run_spmd(size: int, fn: Callable[[ThreadCommunicator], Any],
             timeout: Optional[float] = 60.0) -> List[Any]:
    """Run ``fn(comm)`` on ``size`` ranks concurrently; return per-rank results.

    Any exception raised by a rank is re-raised in the caller (wrapped in
    :class:`~repro.exceptions.CommunicationError` with the rank identified)
    after all threads have been joined.
    """
    if size < 1:
        raise CommunicationError(f"size must be >= 1, got {size}")
    state = _SharedState(size)
    results: List[Any] = [None] * size
    errors: List[Optional[BaseException]] = [None] * size

    def runner(rank: int) -> None:
        comm = ThreadCommunicator(state, rank)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            errors[rank] = exc
            # Unblock peers stuck in the barrier.
            state.barrier.abort()

    threads = [threading.Thread(target=runner, args=(rank,),
                                name=f"grasp-spmd-rank-{rank}", daemon=True)
               for rank in range(size)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)

    for rank, error in enumerate(errors):
        if error is not None:
            raise CommunicationError(f"rank {rank} failed: {error!r}") from error
    for rank, thread in enumerate(threads):
        if thread.is_alive():
            raise CommunicationError(f"rank {rank} did not finish within the timeout")
    return results
