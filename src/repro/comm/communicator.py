"""Communicators: the MPI-like interface bound to a grid.

A communicator maps integer *ranks* onto grid node identifiers and provides
point-to-point and collective operations.  Two backends implement the
interface:

* :class:`SimulatedCommunicator` (this module) — operations are charged as
  virtual-time transfers against a :class:`repro.grid.simulator.GridSimulator`.
  It is time-explicit: every call takes the time at which each participant
  is ready and returns the time(s) at which the operation completes, which
  is exactly what the skeleton executors need to build schedules.
* :class:`repro.comm.inproc.ThreadCommunicator` — real concurrent execution
  with threads and channels, for demonstrating the API outside the
  simulator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.comm.collectives import (
    broadcast_completion_times,
    gather_completion_time,
    scatter_completion_times,
)
from repro.comm.message import Message, estimate_size
from repro.exceptions import CommunicationError

__all__ = ["Communicator", "SimulatedCommunicator"]


class Communicator:
    """Abstract rank-addressed communicator."""

    def __init__(self, node_ids: Sequence[str]):
        if len(node_ids) == 0:
            raise CommunicationError("a communicator needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise CommunicationError("node identifiers bound to ranks must be unique")
        self._node_ids = list(node_ids)

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._node_ids)

    @property
    def node_ids(self) -> List[str]:
        """Node identifier per rank."""
        return list(self._node_ids)

    def node_of(self, rank: int) -> str:
        """Grid node identifier bound to ``rank``."""
        self._check_rank(rank)
        return self._node_ids[rank]

    def rank_of(self, node_id: str) -> int:
        """Rank bound to ``node_id``."""
        try:
            return self._node_ids.index(node_id)
        except ValueError:
            raise CommunicationError(
                f"node {node_id!r} is not part of this communicator"
            ) from None

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise CommunicationError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )

    def sub_communicator(self, ranks: Sequence[int]) -> "Communicator":
        """Create a communicator over a subset of ranks (new ranks 0..k-1)."""
        raise NotImplementedError


class SimulatedCommunicator(Communicator):
    """Cost-accounting communicator over a transfer-charging environment.

    All operations are *time-explicit*: they take starting/ready times and
    return completion times, leaving the decision of how to interleave
    computation to the caller (the skeleton executors).  The environment is
    usually the virtual-time grid simulator, but any object with the
    ``transfer``/``topology`` surface (e.g. an
    :class:`~repro.backends.base.ExecutionBackend`) works; the compilation
    phase binds one communicator per compiled program.
    """

    def __init__(self, simulator, node_ids: Sequence[str]):
        super().__init__(node_ids)
        for node_id in node_ids:
            if node_id not in simulator.topology:
                raise CommunicationError(f"node {node_id!r} is not in the grid topology")
        self.simulator = simulator
        self._messages: List[Message] = []

    # ----------------------------------------------------------- point2point
    def send(self, src: int, dst: int, payload: Any, at_time: float,
             tag: int = 0, nbytes: Optional[int] = None) -> Message:
        """Send ``payload`` from ``src`` to ``dst`` starting at ``at_time``.

        Returns the :class:`Message` with its ``delivered_at`` time filled in.
        """
        self._check_rank(src)
        self._check_rank(dst)
        size = estimate_size(payload) if nbytes is None else int(nbytes)
        transfer = self.simulator.transfer(
            self.node_of(src), self.node_of(dst), size, at_time=at_time
        )
        message = Message(src=src, dst=dst, payload=payload, tag=tag,
                          nbytes=size, sent_at=transfer.started,
                          delivered_at=transfer.finished)
        self._messages.append(message)
        return message

    def transfer_time(self, src: int, dst: int, nbytes: float, at_time: float) -> float:
        """Duration of a hypothetical transfer (not committed to history)."""
        self._check_rank(src)
        self._check_rank(dst)
        link = self.simulator.topology.link_between(self.node_of(src), self.node_of(dst))
        return link.transfer_time(nbytes, at_time)

    # ------------------------------------------------------------ collectives
    def broadcast(self, root: int, payload: Any, at_time: float,
                  algorithm: str = "tree", nbytes: Optional[int] = None) -> Dict[int, float]:
        """Broadcast ``payload`` from ``root``; returns per-rank arrival times."""
        self._check_rank(root)
        size = estimate_size(payload) if nbytes is None else int(nbytes)
        times = broadcast_completion_times(
            self.size, size, at_time, self.transfer_time,
            algorithm=algorithm, root=root,
        )
        # Commit the implied transfers so simulator history reflects them.
        for rank, finish in times.items():
            if rank != root:
                self._messages.append(Message(
                    src=root, dst=rank, payload=payload, tag=-1,
                    nbytes=size, sent_at=at_time, delivered_at=finish,
                ))
        return times

    def scatter(self, root: int, payloads: Sequence[Any], at_time: float,
                nbytes_per_rank: Optional[Sequence[float]] = None) -> Dict[int, float]:
        """Scatter one payload per rank from ``root``; returns arrival times."""
        self._check_rank(root)
        if len(payloads) != self.size:
            raise CommunicationError(
                f"scatter needs {self.size} payloads, got {len(payloads)}"
            )
        sizes = (
            [estimate_size(p) for p in payloads]
            if nbytes_per_rank is None
            else [float(n) for n in nbytes_per_rank]
        )
        times = scatter_completion_times(self.size, sizes, at_time,
                                         self.transfer_time, root=root)
        for rank, finish in times.items():
            if rank != root:
                self._messages.append(Message(
                    src=root, dst=rank, payload=payloads[rank], tag=-2,
                    nbytes=int(sizes[rank]), sent_at=at_time, delivered_at=finish,
                ))
        return times

    def gather(self, root: int, ready_times: Sequence[float],
               payloads: Sequence[Any],
               nbytes_per_rank: Optional[Sequence[float]] = None) -> float:
        """Gather one payload per rank at ``root``; returns completion time.

        ``ready_times[i]`` is the virtual time at which rank ``i``'s payload
        becomes available for sending.
        """
        self._check_rank(root)
        if len(payloads) != self.size or len(ready_times) != self.size:
            raise CommunicationError("gather needs one payload and ready time per rank")
        sizes = (
            [estimate_size(p) for p in payloads]
            if nbytes_per_rank is None
            else [float(n) for n in nbytes_per_rank]
        )
        finish = gather_completion_time(self.size, sizes, list(ready_times),
                                        self.transfer_time, root=root)
        for rank in range(self.size):
            if rank != root:
                self._messages.append(Message(
                    src=rank, dst=root, payload=payloads[rank], tag=-3,
                    nbytes=int(sizes[rank]), sent_at=float(ready_times[rank]),
                    delivered_at=finish,
                ))
        return finish

    def barrier(self, ready_times: Sequence[float]) -> float:
        """All ranks wait for each other; returns the release time."""
        if len(ready_times) != self.size:
            raise CommunicationError("barrier needs one ready time per rank")
        # Synchronisation cost: a gather of empty messages to rank 0 followed
        # by a broadcast of an empty message, both latency-bound.
        gather_done = gather_completion_time(
            self.size, [0.0] * self.size, list(ready_times), self.transfer_time, root=0
        )
        release = broadcast_completion_times(
            self.size, 0.0, gather_done, self.transfer_time, algorithm="tree", root=0
        )
        return max(release.values())

    # ----------------------------------------------------------------- misc
    @property
    def messages(self) -> List[Message]:
        """All messages sent through this communicator."""
        return list(self._messages)

    def total_bytes(self) -> int:
        """Total payload bytes moved through this communicator."""
        return sum(m.nbytes for m in self._messages)

    def sub_communicator(self, ranks: Sequence[int]) -> "SimulatedCommunicator":
        for rank in ranks:
            self._check_rank(rank)
        if len(ranks) == 0:
            raise CommunicationError("sub-communicator needs at least one rank")
        return SimulatedCommunicator(
            self.simulator, [self.node_of(rank) for rank in ranks]
        )
