"""Collective-operation cost algorithms.

The simulated communicator needs to know *when* each participant of a
collective completes.  This module contains the pure algorithms — given
point-to-point transfer times, compute per-rank completion times for
broadcast (linear and binomial-tree), scatter and gather — so they can be
unit-tested independently of the simulator and shared between backends.

All functions take a ``transfer_time(src_rank, dst_rank, nbytes, at_time)``
callable, mirroring :meth:`repro.grid.simulator.GridSimulator.transfer`
without committing the transfers, and return completion times indexed by
rank.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.exceptions import CommunicationError

__all__ = [
    "binomial_tree_rounds",
    "broadcast_completion_times",
    "scatter_completion_times",
    "gather_completion_time",
]

TransferTimeFn = Callable[[int, int, float, float], float]
"""Signature: (src_rank, dst_rank, nbytes, start_time) -> duration."""


def binomial_tree_rounds(size: int) -> List[List[tuple]]:
    """Sender/receiver pairs per round of a binomial-tree broadcast.

    Rank 0 is the root.  Round ``r`` has every rank ``< 2**r`` that already
    holds the data send to rank ``peer = rank + 2**r`` when that peer exists.
    Returns a list of rounds, each a list of ``(src, dst)`` pairs.

    >>> binomial_tree_rounds(4)
    [[(0, 1)], [(0, 2), (1, 3)]]
    """
    if size < 1:
        raise CommunicationError(f"size must be >= 1, got {size}")
    rounds: List[List[tuple]] = []
    have = 1
    r = 0
    while have < size:
        pairs = []
        step = 1 << r
        for src in range(min(step, size)):
            dst = src + step
            if dst < size:
                pairs.append((src, dst))
        rounds.append(pairs)
        have += len(pairs)
        r += 1
    return rounds


def broadcast_completion_times(
    size: int,
    nbytes: float,
    start_time: float,
    transfer_time: TransferTimeFn,
    algorithm: str = "tree",
    root: int = 0,
) -> Dict[int, float]:
    """Completion time per rank for broadcasting ``nbytes`` from ``root``.

    ``algorithm`` is ``"tree"`` (binomial, log₂ rounds) or ``"linear"``
    (root sends to every rank sequentially).  Ranks are relabelled so the
    requested root plays the role of rank 0 in the tree schedule.
    """
    if size < 1:
        raise CommunicationError(f"size must be >= 1, got {size}")
    if not (0 <= root < size):
        raise CommunicationError(f"root {root} out of range for size {size}")
    if algorithm not in {"tree", "linear"}:
        raise CommunicationError(f"unknown broadcast algorithm {algorithm!r}")

    # Map virtual rank (tree position) <-> actual rank.
    actual = lambda virtual: (virtual + root) % size  # noqa: E731

    completion: Dict[int, float] = {root: float(start_time)}
    if size == 1:
        return completion

    if algorithm == "linear":
        t = float(start_time)
        for virtual in range(1, size):
            dst = actual(virtual)
            duration = transfer_time(root, dst, nbytes, t)
            arrival = t + duration
            completion[dst] = arrival
            # The root's next send starts once the previous one is handed off.
            t = arrival
        return completion

    for pairs in binomial_tree_rounds(size):
        for virtual_src, virtual_dst in pairs:
            src = actual(virtual_src)
            dst = actual(virtual_dst)
            send_start = completion[src]
            duration = transfer_time(src, dst, nbytes, send_start)
            completion[dst] = send_start + duration
    return completion


def scatter_completion_times(
    size: int,
    nbytes_per_rank: Sequence[float],
    start_time: float,
    transfer_time: TransferTimeFn,
    root: int = 0,
) -> Dict[int, float]:
    """Completion time per rank for a root-sequential scatter.

    The root sends each rank its own chunk in rank order (the linear scatter
    used by the original skeleton implementations); the root's own chunk is
    available immediately.
    """
    if len(nbytes_per_rank) != size:
        raise CommunicationError(
            f"expected {size} chunk sizes, got {len(nbytes_per_rank)}"
        )
    if not (0 <= root < size):
        raise CommunicationError(f"root {root} out of range for size {size}")
    completion: Dict[int, float] = {root: float(start_time)}
    t = float(start_time)
    for rank in range(size):
        if rank == root:
            continue
        duration = transfer_time(root, rank, float(nbytes_per_rank[rank]), t)
        arrival = t + duration
        completion[rank] = arrival
        t = arrival
    return completion


def gather_completion_time(
    size: int,
    nbytes_per_rank: Sequence[float],
    ready_times: Sequence[float],
    transfer_time: TransferTimeFn,
    root: int = 0,
) -> float:
    """Time at which the root holds every rank's contribution.

    Rank ``i``'s contribution becomes available at ``ready_times[i]``; the
    root receives contributions one at a time (single network interface), in
    the order they become ready.
    """
    if len(nbytes_per_rank) != size or len(ready_times) != size:
        raise CommunicationError("nbytes_per_rank and ready_times must have length == size")
    if not (0 <= root < size):
        raise CommunicationError(f"root {root} out of range for size {size}")

    order = sorted((rank for rank in range(size) if rank != root),
                   key=lambda rank: ready_times[rank])
    receiver_free = float(ready_times[root])
    for rank in order:
        start = max(receiver_free, float(ready_times[rank]))
        duration = transfer_time(rank, root, float(nbytes_per_rank[rank]), start)
        receiver_free = start + duration
    return receiver_free
