"""Messages and payload-size estimation.

Communication cost in the simulator depends on message size.  Real MPI knows
the byte count of every buffer; for arbitrary Python payloads we estimate the
serialised size with :mod:`pickle` (with cheap fast paths for the common
cases: NumPy arrays, bytes, strings and numbers).  Callers that know better
can always pass an explicit ``nbytes``.
"""

from __future__ import annotations

import pickle
import sys
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = ["Message", "estimate_size"]

#: Fixed per-message envelope overhead in bytes (headers, tags, pickling
#: framing).  Small but non-zero so that zero-byte payloads still cost a
#: latency-bound message.
ENVELOPE_BYTES = 64


def estimate_size(payload: Any) -> int:
    """Estimate the serialised size of ``payload`` in bytes.

    Fast paths avoid pickling large NumPy arrays just to measure them.
    """
    if payload is None:
        return ENVELOPE_BYTES
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes) + ENVELOPE_BYTES
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload) + ENVELOPE_BYTES
    if isinstance(payload, str):
        return len(payload.encode("utf-8")) + ENVELOPE_BYTES
    if isinstance(payload, (int, float, bool, complex)):
        return sys.getsizeof(payload) + ENVELOPE_BYTES
    if isinstance(payload, (list, tuple)) and payload and all(
        isinstance(item, (int, float, bool)) for item in payload
    ):
        return 8 * len(payload) + ENVELOPE_BYTES
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)) + ENVELOPE_BYTES
    except Exception:
        # Unpicklable payloads (e.g. closures over locks) still need a size;
        # fall back to a conservative flat estimate.
        return 1024 + ENVELOPE_BYTES


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    ``sent_at`` / ``delivered_at`` are virtual times filled in by the
    simulated backend; the thread backend leaves them at 0.
    """

    src: int
    dst: int
    payload: Any
    tag: int = 0
    nbytes: int = 0
    sent_at: float = 0.0
    delivered_at: float = 0.0

    @staticmethod
    def make(src: int, dst: int, payload: Any, tag: int = 0,
             nbytes: Optional[int] = None, sent_at: float = 0.0,
             delivered_at: float = 0.0) -> "Message":
        """Build a message, estimating ``nbytes`` when not supplied."""
        size = estimate_size(payload) if nbytes is None else int(nbytes)
        return Message(src=src, dst=dst, payload=payload, tag=tag,
                       nbytes=size, sent_at=sent_at, delivered_at=delivered_at)

    @property
    def latency(self) -> float:
        """Delivery delay in virtual seconds (0 for the thread backend)."""
        return self.delivered_at - self.sent_at
