"""FIFO channels used by the in-process communicator backend.

A :class:`Channel` is a thread-safe, optionally bounded FIFO of
:class:`repro.comm.message.Message` objects with tag-selective receive —
the minimal feature set needed to implement MPI-style ``send``/``recv``
between threads.
"""

from __future__ import annotations

import collections
import threading
from typing import Deque, Optional

from repro.comm.message import Message
from repro.exceptions import CommunicationError

__all__ = ["Channel"]


class Channel:
    """A thread-safe FIFO of messages with optional tag filtering."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise CommunicationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._queue: Deque[Message] = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(self, message: Message, timeout: Optional[float] = None) -> None:
        """Append ``message``, blocking while the channel is full."""
        with self._not_full:
            if self._closed:
                raise CommunicationError("cannot put into a closed channel")
            while self._capacity is not None and len(self._queue) >= self._capacity:
                if not self._not_full.wait(timeout):
                    raise CommunicationError("timed out waiting for channel space")
            self._queue.append(message)
            self._not_empty.notify()

    def get(self, tag: Optional[int] = None, timeout: Optional[float] = None) -> Message:
        """Remove and return the first message (matching ``tag`` if given).

        Blocks until a matching message arrives or ``timeout`` elapses.
        """
        with self._not_empty:
            while True:
                for index, message in enumerate(self._queue):
                    if tag is None or message.tag == tag:
                        del self._queue[index]
                        self._not_full.notify()
                        return message
                if self._closed:
                    raise CommunicationError("channel closed while waiting for a message")
                if not self._not_empty.wait(timeout):
                    raise CommunicationError("timed out waiting for a message")

    def close(self) -> None:
        """Close the channel; waiting receivers are woken with an error."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed
