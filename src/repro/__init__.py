"""GRASP: Grid-Adaptive Structured Parallelism.

A Python reproduction of *"Adaptive Structured Parallelism for Computational
Grids"* (González-Vélez & Cole, PPoPP 2007).  The package provides:

* :mod:`repro.grid` — a deterministic discrete-event simulator of a
  heterogeneous, non-dedicated computational grid (nodes, links, sites,
  background-load models, failures).
* :mod:`repro.comm` — an MPI-like message-passing environment layered on the
  simulator (point-to-point and collective operations with communication
  cost accounting).
* :mod:`repro.monitor` — resource sensors and short-term forecasters in the
  spirit of the Network Weather Service.
* :mod:`repro.skeletons` — algorithmic skeletons: task farm, pipeline and
  extensions (map, reduce, divide-and-conquer, composition).
* :mod:`repro.backends` — execution backends: the
  :class:`~repro.backends.base.ExecutionBackend` interface plus the
  virtual-time :class:`~repro.backends.simulated.SimulatedBackend`, the
  wall-clock :class:`~repro.backends.threaded.ThreadBackend` (real OS
  threads), the GIL-escaping
  :class:`~repro.backends.process.ProcessBackend` (one serial worker
  process per node), the coroutine-native
  :class:`~repro.backends.async_.AsyncBackend` (one asyncio event loop,
  I/O waits overlapped across per-node queues) and the
  :class:`~repro.backends.faults.FaultInjectingBackend` decorator that
  drives node-loss/slowdown schedules against any of them.
* :mod:`repro.cluster` — the distributed layer: TCP worker agents
  (``python -m repro.cluster.worker``), a coordinator, and the
  :class:`~repro.cluster.backend.ClusterBackend` that runs the adaptive
  loop on a real multi-host grid (``backend="cluster"`` spawns a
  localhost :class:`~repro.cluster.local.LocalCluster`).
* :mod:`repro.core` — the GRASP methodology itself: the four phases
  (programming, compilation, calibration, execution), Algorithm 1
  (calibration / fittest-node selection) and Algorithm 2 (threshold-driven
  adaptive execution, shared by all skeletons through
  :class:`~repro.core.engine.AdaptiveEngine`).
* :mod:`repro.baselines` — non-adaptive comparators.
* :mod:`repro.workloads` — synthetic and kernel workloads used by the
  experiments.
* :mod:`repro.analysis` — metrics and the experiment harness that
  regenerates the tables/series reported in ``EXPERIMENTS.md``.

Quickstart
----------

>>> from repro import Grasp, TaskFarm, GridBuilder
>>> grid = GridBuilder().heterogeneous(nodes=8, speed_spread=4.0).build(seed=1)
>>> farm = TaskFarm(worker=lambda x: x * x)
>>> grasp = Grasp(skeleton=farm, grid=grid)
>>> result = grasp.run(inputs=range(64))
>>> sorted(result.outputs)[:4]
[0, 1, 4, 9]
"""

from __future__ import annotations

from repro._version import __version__
from repro.exceptions import (
    GraspError,
    CalibrationError,
    ClusterError,
    CompilationError,
    ConfigurationError,
    ExecutionError,
    GridError,
    ProtocolError,
    SchedulingError,
    SkeletonError,
)
from repro.grid import GridBuilder, GridNode, GridTopology, NetworkLink, Site
from repro.grid.simulator import GridSimulator
from repro.backends import (
    AsyncBackend,
    ExecutionBackend,
    FaultInjectingBackend,
    ProcessBackend,
    SimulatedBackend,
    ThreadBackend,
)
from repro.skeletons import (
    DivideAndConquer,
    FarmOfPipelines,
    MapSkeleton,
    Pipeline,
    PipelineOfFarms,
    ReduceSkeleton,
    Stage,
    TaskFarm,
)
from repro.core import (
    CalibrationConfig,
    CalibrationReport,
    ChainPlan,
    ExecutionConfig,
    ExecutionReport,
    FanPlan,
    Grasp,
    GraspConfig,
    GraspResult,
    Phase,
    PlanExecutor,
    PlanStage,
    RankingMode,
    StreamingRun,
)
from repro.cluster import ClusterBackend, ClusterCoordinator, LocalCluster
from repro.baselines import StaticFarm, StaticPipeline
from repro.monitor import PerformanceThreshold, ResourceMonitor

__all__ = [
    "__version__",
    # exceptions
    "GraspError",
    "CalibrationError",
    "ClusterError",
    "CompilationError",
    "ConfigurationError",
    "ExecutionError",
    "GridError",
    "ProtocolError",
    "SchedulingError",
    "SkeletonError",
    # grid
    "GridBuilder",
    "GridNode",
    "GridTopology",
    "NetworkLink",
    "Site",
    "GridSimulator",
    # backends
    "ExecutionBackend",
    "SimulatedBackend",
    "ThreadBackend",
    "ProcessBackend",
    "AsyncBackend",
    "FaultInjectingBackend",
    # cluster
    "ClusterBackend",
    "ClusterCoordinator",
    "LocalCluster",
    # skeletons
    "TaskFarm",
    "Pipeline",
    "Stage",
    "MapSkeleton",
    "ReduceSkeleton",
    "DivideAndConquer",
    "FarmOfPipelines",
    "PipelineOfFarms",
    # core
    "Grasp",
    "GraspConfig",
    "GraspResult",
    "StreamingRun",
    "Phase",
    "RankingMode",
    "CalibrationConfig",
    "CalibrationReport",
    "ExecutionConfig",
    "ExecutionReport",
    "PlanStage",
    "FanPlan",
    "ChainPlan",
    "PlanExecutor",
    # baselines
    "StaticFarm",
    "StaticPipeline",
    # monitor
    "ResourceMonitor",
    "PerformanceThreshold",
]
