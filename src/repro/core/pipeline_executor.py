"""Algorithm 2 for the pipeline.

The adaptive pipeline executor implements the execution phase for the
pipeline skeleton over any :class:`~repro.backends.base.ExecutionBackend`:

* **Stage mapping** — the calibration ranking assigns the heaviest stages
  (by estimated per-item cost) to the fittest nodes.  When
  ``replicate_stages`` is enabled and more nodes were chosen than there are
  stages, the spare nodes replicate the costliest *replicable* stages and
  items alternate between replicas.
* **Streaming** — items flow through the stages in order; a stage's node
  serialises its items (each node is a serial resource in every backend),
  and inter-stage transfers are charged through the backend's transfer-cost
  hook.
* **Monitoring rounds** — every ``monitor_interval`` completed items
  (default: one round per chosen node count) the monitor, which receives
  every result, collects the gaps between consecutive item completions
  normalised per work unit (the pipeline's reciprocal throughput);
  ``min(T) > Z`` breaches.  Per-stage times are still recorded for the
  re-ranking path.
* **Adaptation** — a breach triggers, via the shared
  :class:`~repro.core.engine.AdaptiveEngine`, a probe recalibration (the
  probes reuse a representative item and are *not* counted as job output,
  because an item cannot leave the stream) followed by a remapping of
  stages onto the new fittest nodes; each remapped stage is charged a
  state-migration transfer.

On an eager backend (the simulator) items stream synchronously and the
result is bit-identical to the historical executor; on a concurrent backend
the stage chains of a monitoring window execute as overlapping futures —
genuine pipelining on real threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import collections

from repro.backends import ChainStage, DispatchHandle, ExecutionBackend, as_backend
from repro.core.calibration import CalibrationReport
from repro.core.engine import (
    AdaptiveEngine,
    MonitoringWindow,
    ResultCursor,
    drain_stream,
)
from repro.core.execution import ExecutionReport
from repro.core.parameters import GraspConfig
from repro.exceptions import ExecutionError
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.skeletons.pipeline import Pipeline, Stage
from repro.utils.tracing import Tracer

__all__ = ["PipelineExecutor", "StageMapping", "build_stage_mapping",
           "lower_pipeline_stages"]


@dataclass(frozen=True)
class _StageCost:
    """Picklable ``value -> work units`` for one pipeline stage.

    Chain stage ``cost``/``apply`` callables cross a process boundary on
    the process backend, so they must pickle; a closure over the pipeline
    would not.  Each carries only its own :class:`~repro.skeletons.pipeline.Stage`
    — shipping the whole pipeline would serialise every stage's captured
    state on every stage hop.  ``pick`` always runs master-side and may
    stay a closure.
    """

    stage: Stage

    def __call__(self, value):
        return self.stage.cost(value)


@dataclass(frozen=True)
class _StageApply:
    """Picklable ``value -> value`` for one pipeline stage."""

    stage: Stage

    def __call__(self, value):
        return self.stage.fn(value)


@dataclass(frozen=True)
class _RunItem:
    """Picklable whole-chain probe payload (recalibration dispatches it)."""

    pipeline: Pipeline

    def __call__(self, task: Task):
        return self.pipeline.run_item(task.payload)


def lower_pipeline_stages(pipeline: Pipeline, pick_for_stage) -> List[ChainStage]:
    """Lower ``pipeline`` onto backend chain stages.

    ``pick_for_stage(index)`` returns the node-pick callable for one stage
    (a fixed node for static mappings, replica selection for adaptive
    ones); cost and apply always come from the pipeline itself, so every
    chain construction shares one lowering.
    """
    return [
        ChainStage(
            pick=pick_for_stage(index),
            cost=_StageCost(pipeline.stages[index]),
            apply=_StageApply(pipeline.stages[index]),
        )
        for index in range(pipeline.num_stages)
    ]


class StageMapping:
    """Assignment of pipeline stages to grid nodes (with optional replicas)."""

    def __init__(self, assignment: Dict[int, List[str]]):
        if not assignment:
            raise ExecutionError("stage mapping cannot be empty")
        for stage, nodes in assignment.items():
            if not nodes:
                raise ExecutionError(f"stage {stage} has no nodes assigned")
        self.assignment: Dict[int, List[str]] = {
            stage: list(nodes) for stage, nodes in assignment.items()
        }
        self._next_replica: Dict[int, int] = {stage: 0 for stage in assignment}

    def nodes_for(self, stage: int) -> List[str]:
        """All nodes serving ``stage`` (one unless the stage is replicated)."""
        return list(self.assignment[stage])

    def pick_node(self, stage: int, free_at) -> str:
        """Choose the replica with the earliest availability for the next item."""
        nodes = self.assignment[stage]
        if len(nodes) == 1:
            return nodes[0]
        return min(nodes, key=lambda n: (free_at(n), n))

    def all_nodes(self) -> List[str]:
        """Every distinct node used by the mapping, in stage order."""
        seen: Dict[str, None] = {}
        for stage in sorted(self.assignment):
            for node in self.assignment[stage]:
                seen.setdefault(node, None)
        return list(seen)

    def as_dict(self) -> Dict[int, List[str]]:
        return {stage: list(nodes) for stage, nodes in self.assignment.items()}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StageMapping) and self.assignment == other.assignment


def build_stage_mapping(
    pipeline: Pipeline,
    ranked_nodes: Sequence[str],
    sample_item: object,
    replicate: bool = False,
) -> StageMapping:
    """Map stages onto ranked nodes, heaviest stage to fittest node.

    ``ranked_nodes`` must contain at least ``pipeline.num_stages`` entries;
    extra nodes are used as replicas of the costliest replicable stages when
    ``replicate`` is enabled (otherwise they are left unused).
    """
    stages = pipeline.num_stages
    if len(ranked_nodes) < stages:
        raise ExecutionError(
            f"pipeline needs {stages} nodes, calibration chose {len(ranked_nodes)}"
        )
    costs = [pipeline.stage_cost(i, sample_item) for i in range(stages)]
    order = sorted(range(stages), key=lambda i: -costs[i])
    assignment: Dict[int, List[str]] = {}
    for position, stage_index in enumerate(order):
        assignment[stage_index] = [ranked_nodes[position]]

    if replicate and len(ranked_nodes) > stages:
        spares = list(ranked_nodes[stages:])
        replicable = [i for i in order if pipeline.stages[i].replicable]
        if replicable:
            cursor = 0
            for spare in spares:
                assignment[replicable[cursor % len(replicable)]].append(spare)
                cursor += 1
    return StageMapping(assignment)


class PipelineExecutor:
    """Adaptive execution engine for the pipeline skeleton."""

    def __init__(
        self,
        pipeline: Pipeline,
        simulator: Union[GridSimulator, ExecutionBackend],
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.backend = as_backend(simulator)
        if not self.backend.has_node(master_node):
            raise ExecutionError(f"unknown master node {master_node!r}")
        if not pool:
            raise ExecutionError("pipeline executor needs a non-empty node pool")
        self.pipeline = pipeline
        self.simulator = getattr(self.backend, "simulator", None)
        self.config = config
        self.master_node = master_node
        self.pool = list(pool)
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.engine = AdaptiveEngine(
            backend=self.backend, config=config, master_node=master_node,
            pool=self.pool, monitor=monitor, tracer=self.tracer,
        )

    # ------------------------------------------------------------------ run
    def run(self, tasks: Sequence[Task], calibration: CalibrationReport,
            start_time: Optional[float] = None) -> ExecutionReport:
        """Stream every item through the pipeline adaptively; return the report."""
        return drain_stream(self.as_completed(tasks, calibration, start_time))

    def as_completed(self, tasks: Sequence[Task],
                     calibration: CalibrationReport,
                     start_time: Optional[float] = None,
                     ) -> Iterator[TaskResult]:
        """Stream items through the pipeline, yielding results as they land.

        The streaming form of :meth:`run`: each item's final
        :class:`~repro.skeletons.base.TaskResult` is yielded as soon as the
        monitor folds its completion into the current window.  On
        concurrent backends a window's chains are resolved together and
        folded by completion time (the inter-arrival statistic requires
        it), so yields arrive window-by-window in completion order within
        each window; lower ``ExecutionConfig.monitor_interval`` for
        tighter streaming.  The generator's return value is the final
        :class:`~repro.core.execution.ExecutionReport`.
        """
        exec_cfg = self.config.execution
        engine = self.engine
        start = calibration.finished if start_time is None else float(start_time)
        items = list(tasks)
        if not items:
            raise ExecutionError("pipeline execution needs at least one item")

        sample_item = items[0].payload
        mapping = build_stage_mapping(
            self.pipeline, calibration.chosen, sample_item,
            replicate=exec_cfg.replicate_stages,
        )
        chain = self._chain_stages(mapping)

        report = engine.begin(calibration, start)
        report.chosen_history.append(mapping.all_nodes())
        cursor = ResultCursor(report)

        # Results of calibration-phase items are produced by the caller
        # (Grasp.run) because the pipeline sample runs all stages per item.
        window_size = max(1, exec_cfg.monitor_interval or
                          max(len(mapping.all_nodes()), 1))

        emit_time = start  # the master releases items into the stream
        pending = collections.deque(items)

        self.tracer.record("phase.execution.start", "pipeline execution started",
                           mapping=mapping.as_dict(), items=len(pending))

        # The monitor node observes the stream of results it receives.  Its
        # decision statistic T is the gap between consecutive item
        # completions, normalised per work unit of the completing item —
        # i.e. the reciprocal throughput of the whole pipeline.  A window
        # whose *minimum* normalised gap exceeds Z (Algorithm 2's rule)
        # means even the best recent inter-arrival is too slow: the stream
        # is throttled by a degraded stage, so the skeleton adapts.
        last_completion: Optional[float] = None

        def collect(task: Task, outcome) -> None:
            """Fold one streamed item into the window and the report."""
            nonlocal last_completion
            result = TaskResult(
                task_id=task.task_id, output=outcome.output,
                node_id=outcome.final_node, submitted=outcome.submitted,
                started=outcome.submitted, finished=outcome.finished,
                stage=self.pipeline.num_stages - 1,
            )
            report.results.append(result)
            window.span(result.submitted, result.finished)
            if last_completion is not None:
                gap = max(result.finished - last_completion, 0.0)
                window.record_unit(
                    gap / (outcome.item_cost if outcome.item_cost > 0 else 1.0)
                )
            last_completion = result.finished
            for node_id, duration, cost, started in outcome.stage_records:
                window.record_node(
                    node_id,
                    duration / (cost if cost > 0 else 1.0),
                    self.backend.observe_load(node_id, started),
                )

        while pending:
            window = MonitoringWindow(floor=emit_time)
            inflight: List[Tuple[Task, DispatchHandle]] = []

            for _ in range(min(window_size, len(pending))):
                task = pending.popleft()
                handle = self.backend.dispatch_chain(
                    task, chain, master_node=self.master_node, at_time=emit_time,
                )
                emit_time = handle.next_emit
                if self.backend.eager:
                    collect(task, handle.outcome())
                    yield from cursor.drain()
                else:
                    inflight.append((task, handle))
            # Concurrent chains may finish out of submission order; fold them
            # by completion time so the inter-arrival gap statistic (and its
            # zero clamp) keeps measuring real throughput.
            resolved = [(task, handle.outcome()) for task, handle in inflight]
            for task, outcome in sorted(resolved, key=lambda pair: pair[1].finished):
                collect(task, outcome)
                yield from cursor.drain()

            if window.empty:
                continue

            # --------------------------------------------------- monitoring
            nodes_before = mapping.all_nodes()

            def on_recalibrate() -> None:
                nonlocal mapping, chain, emit_time
                probe_queue: collections.deque = collections.deque([pending[0]])
                # Probes are never counted (consume=False), so the simulator
                # skips the payload entirely; measurement-based backends run
                # the full stage chain to time the node on real work.
                recal = engine.recalibrate(
                    probe_queue, at_time=window.finished,
                    execute_fn=_RunItem(self.pipeline),
                    min_nodes=self.pipeline.num_stages, consume=False,
                    min_alive=self.pipeline.num_stages,
                    insufficient_message=(
                        "not enough live nodes to host every pipeline stage"
                    ),
                )
                new_mapping = build_stage_mapping(
                    self.pipeline, recal.chosen, sample_item,
                    replicate=exec_cfg.replicate_stages,
                )
                emit_time = self._apply_remap(mapping, new_mapping,
                                              max(window.finished, recal.finished))
                mapping = new_mapping
                chain = self._chain_stages(mapping)
                self.tracer.record("adaptation.recalibrate", "pipeline remapped",
                                   round=engine.round_index,
                                   mapping=mapping.as_dict())

            def on_rerank() -> None:
                nonlocal mapping, chain, emit_time
                ranked = engine.rerank(
                    window, at_time=window.finished,
                    min_nodes=self.pipeline.num_stages,
                    min_alive=self.pipeline.num_stages,
                    insufficient_message=(
                        "not enough live nodes to host every pipeline stage"
                    ),
                )
                new_mapping = build_stage_mapping(
                    self.pipeline, ranked, sample_item,
                    replicate=exec_cfg.replicate_stages,
                )
                emit_time = self._apply_remap(mapping, new_mapping, window.finished)
                mapping = new_mapping
                chain = self._chain_stages(mapping)
                self.tracer.record("adaptation.rerank", "pipeline re-ranked",
                                   round=engine.round_index,
                                   mapping=mapping.as_dict())

            engine.observe_window(
                window,
                has_pending=bool(pending),
                nodes_before=nodes_before,
                nodes_now=lambda: mapping.all_nodes(),
                on_recalibrate=on_recalibrate,
                on_rerank=on_rerank,
            )
            yield from cursor.drain()

        report = engine.finish()
        self.tracer.record("phase.execution.end", "pipeline execution finished",
                           results=len(report.results),
                           recalibrations=report.recalibrations)
        return report

    # ------------------------------------------------------------ internals
    def _chain_stages(self, mapping: StageMapping) -> List[ChainStage]:
        """Lower the current stage mapping onto backend chain stages."""
        return lower_pipeline_stages(
            self.pipeline,
            lambda index: (lambda free_at, _i=index, _m=mapping:
                           _m.pick_node(_i, free_at)),
        )

    def _apply_remap(self, old: StageMapping, new: StageMapping, at_time: float) -> float:
        """Charge state migration for every stage whose node changed.

        Returns the time at which the stream may resume.
        """
        migration_bytes = self.config.execution.migration_bytes
        resume = at_time
        if migration_bytes <= 0:
            return resume
        for stage, new_nodes in new.as_dict().items():
            old_nodes = old.as_dict().get(stage, [])
            if old_nodes and new_nodes and old_nodes[0] != new_nodes[0]:
                transfer = self.backend.transfer(old_nodes[0], new_nodes[0],
                                                 migration_bytes, at_time=at_time)
                resume = max(resume, transfer.finished)
        return resume
