"""Algorithm 2 for the pipeline (compatibility shim).

The adaptive pipeline loop used to live here; it now lives once in
:class:`~repro.core.plan_executor.PlanExecutor`, which walks the
execution-plan IR (:mod:`repro.core.plan`) for every skeleton.
:class:`PipelineExecutor` is kept as a thin, behaviour-identical facade:
it lowers the pipeline onto a :class:`~repro.core.plan.ChainPlan` and
delegates both the blocking and the streaming form to the plan executor.
Reports are bit-identical to the historical executor — pinned by the
goldens in ``tests/test_backends_equivalence.py``.

``StageMapping`` and the stage-mapping/lowering helpers also moved to
:mod:`repro.core.plan_executor`; the pipeline-typed spellings here stay
for callers holding a :class:`~repro.skeletons.pipeline.Pipeline`
(the static baselines, historical tests).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

from repro.backends import ChainStage, ExecutionBackend
from repro.core.calibration import CalibrationReport
from repro.core.execution import ExecutionReport
from repro.core.parameters import GraspConfig
from repro.core.plan_executor import (
    PlanExecutor,
    StageMapping,
    build_plan_mapping,
    lower_chain_stages,
)
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.skeletons.pipeline import Pipeline
from repro.utils.tracing import Tracer

__all__ = ["PipelineExecutor", "StageMapping", "build_stage_mapping",
           "lower_pipeline_stages"]


def lower_pipeline_stages(pipeline: Pipeline, pick_for_stage) -> List[ChainStage]:
    """Lower ``pipeline`` onto backend chain stages.

    ``pick_for_stage(index)`` returns the node-pick callable for one stage
    (a fixed node for static mappings, replica selection for adaptive
    ones); cost and apply always come from the pipeline itself, so every
    chain construction shares one lowering.
    """
    return lower_chain_stages(pipeline.lower(), pick_for_stage)


def build_stage_mapping(
    pipeline: Pipeline,
    ranked_nodes: Sequence[str],
    sample_item: object,
    replicate: bool = False,
) -> StageMapping:
    """Map stages onto ranked nodes, heaviest stage to fittest node.

    ``ranked_nodes`` must contain at least ``pipeline.num_stages``
    entries; extra nodes are used as replicas of the costliest
    replicable stages when ``replicate`` is enabled (otherwise they are
    left unused).
    """
    return build_plan_mapping(pipeline.lower(), ranked_nodes, sample_item,
                              replicate=replicate)


class PipelineExecutor:
    """Adaptive execution engine for the pipeline skeleton.

    Since the plan-IR refactor this class contains no adaptive-loop
    logic of its own: it is ``PlanExecutor`` over ``pipeline.lower()``.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        simulator: Union[GridSimulator, ExecutionBackend],
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.pipeline = pipeline
        self._executor = PlanExecutor(
            plan=pipeline.lower(), simulator=simulator, config=config,
            master_node=master_node, pool=pool, monitor=monitor,
            tracer=tracer,
        )
        self.backend = self._executor.backend
        self.simulator = self._executor.simulator
        self.config = config
        self.master_node = master_node
        self.pool = self._executor.pool
        self.monitor = monitor
        self.tracer = self._executor.tracer
        self.engine = self._executor.engine

    # ------------------------------------------------------------------ run
    def run(self, tasks: Sequence[Task], calibration: CalibrationReport,
            start_time: Optional[float] = None) -> ExecutionReport:
        """Stream every item through the pipeline adaptively; return the report."""
        return self._executor.run(tasks, calibration, start_time)

    def as_completed(self, tasks: Sequence[Task],
                     calibration: CalibrationReport,
                     start_time: Optional[float] = None,
                     ) -> Iterator[TaskResult]:
        """Stream items through the pipeline, yielding results as they land.

        See :meth:`PlanExecutor.as_completed`; the generator's return
        value is the final :class:`~repro.core.execution.ExecutionReport`.
        """
        return self._executor.as_completed(tasks, calibration, start_time)
