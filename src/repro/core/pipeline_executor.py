"""Algorithm 2 for the pipeline.

The adaptive pipeline executor implements the execution phase for the
pipeline skeleton:

* **Stage mapping** — the calibration ranking assigns the heaviest stages
  (by estimated per-item cost) to the fittest nodes.  When
  ``replicate_stages`` is enabled and more nodes were chosen than there are
  stages, the spare nodes replicate the costliest *replicable* stages and
  items alternate between replicas.
* **Streaming** — items flow through the stages in order; a stage's node
  serialises its items (the simulator's per-core queue provides the stage
  occupancy), and inter-stage transfers are charged on the grid links.
* **Monitoring rounds** — every ``monitor_interval`` completed items
  (default: one round per chosen node count) the monitor, which receives
  every result, collects the gaps between consecutive item completions
  normalised per work unit (the pipeline's reciprocal throughput);
  ``min(T) > Z`` breaches.  Per-stage times are still recorded for the
  re-ranking path.
* **Adaptation** — a breach triggers a probe recalibration (the probes reuse
  a representative item and are *not* counted as job output, because an item
  cannot leave the stream) followed by a remapping of stages onto the new
  fittest nodes; each remapped stage is charged a state-migration transfer.
"""

from __future__ import annotations

import collections
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.adaptation import decide, rerank_from_history
from repro.core.calibration import CalibrationReport, calibrate
from repro.core.execution import ExecutionReport, MonitoringRound
from repro.core.parameters import AdaptationAction, GraspConfig
from repro.exceptions import ExecutionError
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.skeletons.pipeline import Pipeline
from repro.utils.tracing import Tracer

__all__ = ["PipelineExecutor", "StageMapping"]


class StageMapping:
    """Assignment of pipeline stages to grid nodes (with optional replicas)."""

    def __init__(self, assignment: Dict[int, List[str]]):
        if not assignment:
            raise ExecutionError("stage mapping cannot be empty")
        for stage, nodes in assignment.items():
            if not nodes:
                raise ExecutionError(f"stage {stage} has no nodes assigned")
        self.assignment: Dict[int, List[str]] = {
            stage: list(nodes) for stage, nodes in assignment.items()
        }
        self._next_replica: Dict[int, int] = {stage: 0 for stage in assignment}

    def nodes_for(self, stage: int) -> List[str]:
        """All nodes serving ``stage`` (one unless the stage is replicated)."""
        return list(self.assignment[stage])

    def pick_node(self, stage: int, free_at) -> str:
        """Choose the replica with the earliest availability for the next item."""
        nodes = self.assignment[stage]
        if len(nodes) == 1:
            return nodes[0]
        return min(nodes, key=lambda n: (free_at(n), n))

    def all_nodes(self) -> List[str]:
        """Every distinct node used by the mapping, in stage order."""
        seen: Dict[str, None] = {}
        for stage in sorted(self.assignment):
            for node in self.assignment[stage]:
                seen.setdefault(node, None)
        return list(seen)

    def as_dict(self) -> Dict[int, List[str]]:
        return {stage: list(nodes) for stage, nodes in self.assignment.items()}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StageMapping) and self.assignment == other.assignment


def build_stage_mapping(
    pipeline: Pipeline,
    ranked_nodes: Sequence[str],
    sample_item: object,
    replicate: bool = False,
) -> StageMapping:
    """Map stages onto ranked nodes, heaviest stage to fittest node.

    ``ranked_nodes`` must contain at least ``pipeline.num_stages`` entries;
    extra nodes are used as replicas of the costliest replicable stages when
    ``replicate`` is enabled (otherwise they are left unused).
    """
    stages = pipeline.num_stages
    if len(ranked_nodes) < stages:
        raise ExecutionError(
            f"pipeline needs {stages} nodes, calibration chose {len(ranked_nodes)}"
        )
    costs = [pipeline.stage_cost(i, sample_item) for i in range(stages)]
    order = sorted(range(stages), key=lambda i: -costs[i])
    assignment: Dict[int, List[str]] = {}
    for position, stage_index in enumerate(order):
        assignment[stage_index] = [ranked_nodes[position]]

    if replicate and len(ranked_nodes) > stages:
        spares = list(ranked_nodes[stages:])
        replicable = [i for i in order if pipeline.stages[i].replicable]
        if replicable:
            cursor = 0
            for spare in spares:
                assignment[replicable[cursor % len(replicable)]].append(spare)
                cursor += 1
    return StageMapping(assignment)


class PipelineExecutor:
    """Adaptive execution engine for the pipeline skeleton."""

    def __init__(
        self,
        pipeline: Pipeline,
        simulator: GridSimulator,
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        if master_node not in simulator.topology:
            raise ExecutionError(f"unknown master node {master_node!r}")
        if not pool:
            raise ExecutionError("pipeline executor needs a non-empty node pool")
        self.pipeline = pipeline
        self.simulator = simulator
        self.config = config
        self.master_node = master_node
        self.pool = list(pool)
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)

    # ------------------------------------------------------------------ run
    def run(self, tasks: Sequence[Task], calibration: CalibrationReport,
            start_time: Optional[float] = None) -> ExecutionReport:
        """Stream every item through the pipeline adaptively; return the report."""
        exec_cfg = self.config.execution
        start = calibration.finished if start_time is None else float(start_time)
        items = list(tasks)
        if not items:
            raise ExecutionError("pipeline execution needs at least one item")

        sample_item = items[0].payload
        mapping = build_stage_mapping(
            self.pipeline, calibration.chosen, sample_item,
            replicate=exec_cfg.replicate_stages,
        )
        threshold = exec_cfg.make_threshold()
        threshold.calibrate(calibration.unit_times())

        report = ExecutionReport(started=start, finished=start)
        report.chosen_history.append(mapping.all_nodes())

        # Results of calibration-phase items are produced by the caller
        # (Grasp.run) because the pipeline sample runs all stages per item.
        window = exec_cfg.monitor_interval or max(len(mapping.all_nodes()), 1)
        window = max(1, window)

        round_index = 0
        recalibrations = 0
        emit_time = start  # the master releases items into the stream
        pending = collections.deque(items)

        self.tracer.record("phase.execution.start", "pipeline execution started",
                           mapping=mapping.as_dict(), items=len(pending))

        # The monitor node observes the stream of results it receives.  Its
        # decision statistic T is the gap between consecutive item
        # completions, normalised per work unit of the completing item —
        # i.e. the reciprocal throughput of the whole pipeline.  A window
        # whose *minimum* normalised gap exceeds Z (Algorithm 2's rule)
        # means even the best recent inter-arrival is too slow: the stream
        # is throttled by a degraded stage, so the skeleton adapts.
        last_completion: Optional[float] = None

        while pending:
            unit_times: List[float] = []
            node_times: Dict[str, List[float]] = collections.defaultdict(list)
            node_loads: Dict[str, List[float]] = collections.defaultdict(list)
            window_start = float("inf")
            window_end = emit_time

            for _ in range(min(window, len(pending))):
                task = pending.popleft()
                result, stage_records, emit_time, item_cost = self._stream_item(
                    task, mapping, emit_time
                )
                report.results.append(result)
                window_start = min(window_start, result.submitted)
                window_end = max(window_end, result.finished)
                if last_completion is not None:
                    gap = max(result.finished - last_completion, 0.0)
                    unit_times.append(gap / (item_cost if item_cost > 0 else 1.0))
                last_completion = result.finished
                for node_id, duration, cost, started in stage_records:
                    normalised = duration / (cost if cost > 0 else 1.0)
                    node_times[node_id].append(normalised)
                    node_loads[node_id].append(
                        self.simulator.observe_load(node_id, started)
                    )

            if not unit_times:
                continue

            self.simulator.advance_to(window_end)
            breached = threshold.breached(unit_times)
            z_value = threshold.value()
            threshold.observe(unit_times)
            decision = decide(breached, exec_cfg.adaptation, recalibrations,
                              exec_cfg.max_recalibrations)
            nodes_before = mapping.all_nodes()

            if decision.action is AdaptationAction.RECALIBRATE and pending:
                probe_queue: collections.deque = collections.deque([pending[0]])
                recal = calibrate(
                    tasks=probe_queue,
                    pool=self._alive_pool(window_end),
                    execute_fn=lambda t: None,
                    simulator=self.simulator,
                    config=self.config.calibration,
                    master_node=self.master_node,
                    min_nodes=self.pipeline.num_stages,
                    at_time=window_end,
                    monitor=self.monitor,
                    consume=False,
                    tracer=self.tracer,
                )
                report.recalibration_reports.append(recal)
                new_mapping = build_stage_mapping(
                    self.pipeline, recal.chosen, sample_item,
                    replicate=exec_cfg.replicate_stages,
                )
                emit_time = self._apply_remap(mapping, new_mapping,
                                              max(window_end, recal.finished))
                mapping = new_mapping
                threshold.calibrate(recal.unit_times())
                recalibrations += 1
                self.tracer.record("adaptation.recalibrate", "pipeline remapped",
                                   round=round_index, mapping=mapping.as_dict())
            elif decision.action is AdaptationAction.RERANK and pending:
                ranked = rerank_from_history(
                    node_times, node_loads, self.config.calibration,
                    min_nodes=self.pipeline.num_stages,
                    pool=self._alive_pool(window_end),
                )
                new_mapping = build_stage_mapping(
                    self.pipeline, ranked, sample_item,
                    replicate=exec_cfg.replicate_stages,
                )
                emit_time = self._apply_remap(mapping, new_mapping, window_end)
                mapping = new_mapping
                recalibrations += 1
                self.tracer.record("adaptation.rerank", "pipeline re-ranked",
                                   round=round_index, mapping=mapping.as_dict())

            if mapping.all_nodes() != nodes_before:
                report.chosen_history.append(mapping.all_nodes())

            report.rounds.append(
                MonitoringRound(
                    index=round_index,
                    started=window_start if window_start != float("inf") else window_end,
                    finished=window_end,
                    unit_times=unit_times,
                    threshold=z_value,
                    breached=breached,
                    action=decision.action if breached else None,
                    chosen_before=nodes_before,
                    chosen_after=mapping.all_nodes(),
                )
            )
            round_index += 1

        report.recalibrations = recalibrations
        report.finished = max(
            [report.started] + [r.finished for r in report.results]
        )
        self.tracer.record("phase.execution.end", "pipeline execution finished",
                           results=len(report.results),
                           recalibrations=recalibrations)
        return report

    # ------------------------------------------------------------ internals
    def _alive_pool(self, time: float) -> List[str]:
        alive = [n for n in self.pool if self.simulator.is_available(n, time)]
        if len(alive) < self.pipeline.num_stages:
            raise ExecutionError(
                "not enough live nodes to host every pipeline stage"
            )
        return alive

    def _stream_item(
        self, task: Task, mapping: StageMapping, emit_time: float
    ) -> Tuple[TaskResult, List[Tuple[str, float, float, float]], float, float]:
        """Push one item through every stage; return its result and stage records.

        Returns ``(result, stage_records, next_emit_time, item_cost)`` where
        each stage record is ``(node_id, duration, cost, started)``,
        ``next_emit_time`` is when the master may release the next item (the
        first stage's input hand-off completes) and ``item_cost`` is the
        item's total compute cost across all stages.
        """
        value = task.payload
        stage_records: List[Tuple[str, float, float, float]] = []
        previous_node = self.master_node
        available_at = emit_time
        payload_bytes = task.input_bytes
        first_handoff = emit_time
        item_cost = 0.0

        for stage_index in range(self.pipeline.num_stages):
            node = mapping.pick_node(stage_index, self.simulator.node_free_at)
            transfer = self.simulator.transfer(previous_node, node, payload_bytes,
                                               at_time=available_at)
            if stage_index == 0:
                first_handoff = transfer.finished
            cost = self.pipeline.stage_cost(stage_index, value)
            item_cost += cost
            execution = self.simulator.run_task(node, cost, at_time=transfer.finished)
            value = self.pipeline.apply_stage(stage_index, value)
            stage_records.append((node, execution.duration, cost, execution.started))
            previous_node = node
            available_at = execution.finished
            payload_bytes = task.output_bytes

        back = self.simulator.transfer(previous_node, self.master_node,
                                       task.output_bytes, at_time=available_at)
        result = TaskResult(
            task_id=task.task_id, output=value, node_id=previous_node,
            submitted=emit_time, started=emit_time, finished=back.finished,
            stage=self.pipeline.num_stages - 1,
        )
        return result, stage_records, first_handoff, item_cost

    def _apply_remap(self, old: StageMapping, new: StageMapping, at_time: float) -> float:
        """Charge state migration for every stage whose node changed.

        Returns the time at which the stream may resume.
        """
        migration_bytes = self.config.execution.migration_bytes
        resume = at_time
        if migration_bytes <= 0:
            return resume
        for stage, new_nodes in new.as_dict().items():
            old_nodes = old.as_dict().get(stage, [])
            if old_nodes and new_nodes and old_nodes[0] != new_nodes[0]:
                transfer = self.simulator.transfer(old_nodes[0], new_nodes[0],
                                                   migration_bytes, at_time=at_time)
                resume = max(resume, transfer.finished)
        return resume
