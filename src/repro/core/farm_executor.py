"""Algorithm 2 for the task farm (compatibility shim).

The adaptive farm loop used to live here; it now lives once in
:class:`~repro.core.plan_executor.PlanExecutor`, which walks the
execution-plan IR (:mod:`repro.core.plan`) for every skeleton.
:class:`FarmExecutor` is kept as a thin, behaviour-identical facade: it
lowers its arguments onto a leaf :class:`~repro.core.plan.FanPlan`
(independent units, demand-driven dispatch, chunked, loss-capped) and
delegates both the blocking and the streaming form to the plan executor.
Reports are bit-identical to the historical executor — pinned by the
goldens in ``tests/test_backends_equivalence.py``.
"""

from __future__ import annotations

from typing import Callable, Deque, Iterator, Optional, Sequence, Union

from repro.backends import ExecutionBackend
from repro.core.calibration import CalibrationReport
from repro.core.execution import ExecutionReport
from repro.core.parameters import GraspConfig
from repro.core.plan import FanPlan
from repro.core.plan_executor import PlanExecutor
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.utils.tracing import Tracer

__all__ = ["FarmExecutor"]


class FarmExecutor:
    """Adaptive execution engine for farm-like skeletons.

    Any skeleton whose tasks are independent (task farm, map, reduce
    blocks, divide-and-conquer leaves) is executed by this engine; the
    caller supplies ``execute_fn`` to produce each task's real output.
    Since the plan-IR refactor this class contains no adaptive-loop
    logic of its own: it is ``PlanExecutor`` over
    ``FanPlan(body=execute_fn)``.
    """

    def __init__(
        self,
        execute_fn: Callable[[Task], object],
        simulator: Union[GridSimulator, ExecutionBackend],
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        min_nodes: int = 1,
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.execute_fn = execute_fn
        self._executor = PlanExecutor(
            plan=FanPlan(body=execute_fn, min_nodes=max(1, min_nodes)),
            simulator=simulator, config=config, master_node=master_node,
            pool=pool, min_nodes=max(1, min_nodes), monitor=monitor,
            tracer=tracer,
        )
        self.backend = self._executor.backend
        self.simulator = self._executor.simulator
        self.config = config
        self.master_node = master_node
        self.pool = self._executor.pool
        self.min_nodes = self._executor.min_nodes
        self.monitor = monitor
        self.tracer = self._executor.tracer
        self.scheduler = self._executor.scheduler
        self.engine = self._executor.engine

    # ------------------------------------------------------------------ run
    def run(self, tasks: Deque[Task], calibration: CalibrationReport,
            start_time: Optional[float] = None) -> ExecutionReport:
        """Execute all pending ``tasks`` adaptively; return the report."""
        return self._executor.run(tasks, calibration, start_time)

    def as_completed(self, tasks: Deque[Task], calibration: CalibrationReport,
                     start_time: Optional[float] = None,
                     ) -> Iterator[TaskResult]:
        """Execute adaptively, yielding each result as it lands.

        See :meth:`PlanExecutor.as_completed`; the generator's return
        value is the final :class:`~repro.core.execution.ExecutionReport`
        (also reachable as ``self.engine.report``).
        """
        return self._executor.as_completed(tasks, calibration, start_time)
