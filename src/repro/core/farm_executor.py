"""Algorithm 2 for the task farm.

The adaptive farm executor implements the execution phase for the task-farm
skeleton over the virtual-time grid:

* **Demand-driven dispatch** — the next task goes to the chosen worker that
  is free earliest (self-scheduling), with inputs shipped from the master
  through a serially reused master uplink and results shipped back.
* **Monitoring rounds** — after every ``monitor_interval`` completed tasks
  (default: one per chosen worker) the monitor inspects the normalised
  execution times of the round; per Algorithm 2, a round whose *minimum*
  time exceeds the threshold *Z* breaches.
* **Adaptation** — a breach triggers the configured action: full
  recalibration over the whole node pool (the feedback edge of Figure 1,
  consuming pending tasks so the probe work still contributes to the job) or
  a cheap re-ranking from monitoring history.  The new fittest set takes
  effect for all not-yet-dispatched tasks.
* **Failure handling** — a worker that becomes unavailable is dropped from
  the chosen set; a task caught on a failing node is re-enqueued.
"""

from __future__ import annotations

import collections
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.core.adaptation import decide, rerank_from_history
from repro.core.calibration import CalibrationReport, calibrate
from repro.core.execution import ExecutionReport, MonitoringRound
from repro.core.parameters import AdaptationAction, GraspConfig
from repro.core.scheduler import DemandDrivenScheduler
from repro.exceptions import ExecutionError
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.utils.tracing import Tracer

__all__ = ["FarmExecutor"]


class FarmExecutor:
    """Adaptive execution engine for farm-like skeletons.

    Any skeleton whose tasks are independent (task farm, map, reduce blocks,
    divide-and-conquer leaves) is executed by this engine; the caller
    supplies ``execute_fn`` to produce each task's real output.
    """

    def __init__(
        self,
        execute_fn: Callable[[Task], object],
        simulator: GridSimulator,
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        min_nodes: int = 1,
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        if master_node not in simulator.topology:
            raise ExecutionError(f"unknown master node {master_node!r}")
        if not pool:
            raise ExecutionError("farm executor needs a non-empty node pool")
        self.execute_fn = execute_fn
        self.simulator = simulator
        self.config = config
        self.master_node = master_node
        self.pool = list(pool)
        self.min_nodes = max(1, min_nodes)
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.scheduler = DemandDrivenScheduler()

    # ------------------------------------------------------------------ run
    def run(self, tasks: Deque[Task], calibration: CalibrationReport,
            start_time: Optional[float] = None) -> ExecutionReport:
        """Execute all pending ``tasks`` adaptively; return the report."""
        exec_cfg = self.config.execution
        start = calibration.finished if start_time is None else float(start_time)

        chosen = self._workers_from(calibration.chosen)
        threshold = exec_cfg.make_threshold()
        threshold.calibrate(calibration.unit_times())

        report = ExecutionReport(started=start, finished=start)
        report.chosen_history.append(list(chosen))

        master_free = start
        round_index = 0
        recalibrations = 0

        self.tracer.record("phase.execution.start", "farm execution started",
                           chosen=list(chosen), tasks=len(tasks))

        while tasks:
            window = exec_cfg.monitor_interval or len(chosen)
            window = max(1, window)
            window_tasks = min(window, len(tasks))

            unit_times: List[float] = []
            node_times: Dict[str, List[float]] = collections.defaultdict(list)
            node_loads: Dict[str, List[float]] = collections.defaultdict(list)
            window_start = float("inf")
            window_end = start

            dispatched = 0
            while dispatched < window_tasks and tasks:
                task = tasks.popleft()
                outcome = self._dispatch(task, chosen, master_free)
                if outcome is None:
                    # Every chosen worker is dead: force recalibration over
                    # the remaining pool (or fail if nothing is left).
                    tasks.appendleft(task)
                    chosen = self._recover_pool(chosen, master_free)
                    report.chosen_history.append(list(chosen))
                    continue
                result, execution, send_start, master_free_after, lost = outcome
                master_free = master_free_after
                if lost:
                    tasks.appendleft(task)
                    report.lost_tasks += 1
                    chosen = [n for n in chosen if n != execution.node_id]
                    if not chosen:
                        chosen = self._recover_pool(chosen, master_free)
                    report.chosen_history.append(list(chosen))
                    continue

                report.results.append(result)
                dispatched += 1
                cost = task.cost if task.cost > 0 else 1.0
                unit_times.append(execution.duration / cost)
                node_times[execution.node_id].append(execution.duration / cost)
                node_loads[execution.node_id].append(
                    self.simulator.observe_load(execution.node_id, execution.started)
                )
                window_start = min(window_start, send_start)
                window_end = max(window_end, result.finished)

            if not unit_times:
                continue

            # --------------------------------------------------- monitoring
            self.simulator.advance_to(window_end)
            breached = threshold.breached(unit_times)
            z_value = threshold.value()
            threshold.observe(unit_times)
            decision = decide(breached, exec_cfg.adaptation, recalibrations,
                              exec_cfg.max_recalibrations)
            chosen_before = list(chosen)

            if decision.action is AdaptationAction.RECALIBRATE and tasks:
                recal = calibrate(
                    tasks=tasks,
                    pool=self._alive_pool(window_end),
                    execute_fn=self.execute_fn,
                    simulator=self.simulator,
                    config=self.config.calibration,
                    master_node=self.master_node,
                    min_nodes=self.min_nodes,
                    at_time=window_end,
                    monitor=self.monitor,
                    consume=True,
                    tracer=self.tracer,
                )
                report.results.extend(recal.results)
                report.recalibration_reports.append(recal)
                chosen = self._workers_from(recal.chosen)
                threshold.calibrate(recal.unit_times())
                master_free = max(master_free, recal.finished)
                window_end = max(window_end, recal.finished)
                recalibrations += 1
                self.tracer.record("adaptation.recalibrate", "farm recalibrated",
                                   round=round_index, chosen=list(chosen))
            elif decision.action is AdaptationAction.RERANK and tasks:
                chosen = self._workers_from(
                    rerank_from_history(
                        node_times, node_loads, self.config.calibration,
                        min_nodes=self.min_nodes, pool=self._alive_pool(window_end),
                    )
                )
                recalibrations += 1
                self.tracer.record("adaptation.rerank", "farm re-ranked",
                                   round=round_index, chosen=list(chosen))

            if chosen != chosen_before:
                report.chosen_history.append(list(chosen))

            report.rounds.append(
                MonitoringRound(
                    index=round_index,
                    started=window_start if window_start != float("inf") else window_end,
                    finished=window_end,
                    unit_times=unit_times,
                    threshold=z_value,
                    breached=breached,
                    action=decision.action if breached else None,
                    chosen_before=chosen_before,
                    chosen_after=list(chosen),
                )
            )
            round_index += 1

        report.recalibrations = recalibrations
        report.finished = max(
            [report.started] + [r.finished for r in report.results]
        )
        self.tracer.record("phase.execution.end", "farm execution finished",
                           results=len(report.results),
                           recalibrations=recalibrations)
        return report

    # ------------------------------------------------------------ internals
    def _workers_from(self, chosen: Sequence[str]) -> List[str]:
        """The worker set derived from a chosen-node list.

        The master only computes when configured to (or when it is the only
        chosen node).
        """
        workers = list(chosen)
        if not self.config.execution.master_computes and len(workers) > 1:
            workers = [n for n in workers if n != self.master_node] or workers
        if not workers:
            raise ExecutionError("calibration selected an empty worker set")
        return workers

    def _alive_pool(self, time: float) -> List[str]:
        alive = [n for n in self.pool if self.simulator.is_available(n, time)]
        if not alive:
            raise ExecutionError("every node in the pool has failed")
        return alive

    def _recover_pool(self, chosen: Sequence[str], time: float) -> List[str]:
        """Rebuild the worker set from whatever pool nodes are still alive."""
        alive = self._alive_pool(time)
        self.tracer.record("adaptation.failover", "rebuilt worker set after failures",
                           alive=list(alive))
        return self._workers_from(alive)

    def _dispatch(self, task: Task, chosen: Sequence[str], master_free: float):
        """Send one task to the earliest-free worker and execute it.

        Returns ``None`` when no chosen worker is available, otherwise a
        tuple ``(result, execution, send_start, new_master_free, lost)``
        where ``lost`` indicates the node failed before completing the task.
        """
        ready = {
            node: max(self.simulator.node_free_at(node), master_free)
            for node in chosen
            if self.simulator.is_available(node, max(self.simulator.node_free_at(node),
                                                     master_free))
        }
        if not ready:
            return None
        node = self.scheduler.next_node(ready)
        send_start = ready[node]

        send = self.simulator.transfer(self.master_node, node, task.input_bytes,
                                       at_time=send_start)
        execution = self.simulator.run_task(node, task.cost, at_time=send.finished)
        new_master_free = send.finished

        if not self.simulator.is_available(node, execution.finished):
            # The node failed while (virtually) holding the task.
            return (None, execution, send_start, new_master_free, True)

        back = self.simulator.transfer(node, self.master_node, task.output_bytes,
                                       at_time=execution.finished)
        output = self.execute_fn(task)
        result = TaskResult(
            task_id=task.task_id, output=output, node_id=node,
            submitted=send_start, started=execution.started,
            finished=back.finished, stage=task.stage,
        )
        return (result, execution, send_start, new_master_free, False)
