"""Algorithm 2 for the task farm.

The adaptive farm executor implements the execution phase for the task-farm
skeleton over any :class:`~repro.backends.base.ExecutionBackend`:

* **Demand-driven dispatch** — the next task goes to the chosen worker that
  is free earliest (self-scheduling), with inputs shipped from the master
  through a serially reused master uplink and results shipped back.  With
  ``ExecutionConfig.chunk_size > 1`` the unit of dispatch becomes a *chunk*
  of k tasks (one backend dispatch, one decision-statistic sample),
  amortising per-dispatch IPC overhead on the process backend.
* **Monitoring rounds** — after every ``monitor_interval`` completed tasks
  (default: one per chosen worker) the monitor inspects the normalised
  execution times of the round; per Algorithm 2, a round whose *minimum*
  time exceeds the threshold *Z* breaches.
* **Adaptation** — a breach triggers the configured action via the shared
  :class:`~repro.core.engine.AdaptiveEngine`: full recalibration over the
  whole node pool (the feedback edge of Figure 1, consuming pending tasks
  so the probe work still contributes to the job) or a cheap re-ranking
  from monitoring history.  The new fittest set takes effect for all
  not-yet-dispatched tasks.
* **Failure handling** — a worker that becomes unavailable is dropped from
  the chosen set; a task caught on a failing node is re-enqueued.  On the
  simulator failures come from the topology's failure model; on the
  wall-clock backends they come from
  :class:`~repro.backends.faults.FaultInjectingBackend` (or a genuinely
  dead worker process).

On an eager backend (the virtual-time simulator) every dispatch resolves
immediately and the loop is step-for-step identical to the historical
executor.  On a concurrent backend (threads, processes) dispatches within a
monitoring window overlap: the window is filled first and collected
afterwards, which is where the real parallelism comes from.
"""

from __future__ import annotations

from typing import Callable, Deque, Iterator, List, Optional, Sequence, Tuple, Union

from repro.backends import (
    DispatchHandle,
    DispatchOutcome,
    ExecutionBackend,
    as_backend,
)
from repro.core.calibration import CalibrationReport
from repro.core.engine import (
    AdaptiveEngine,
    MonitoringWindow,
    ResultCursor,
    drain_stream,
)
from repro.core.execution import ExecutionReport
from repro.core.parameters import GraspConfig
from repro.core.scheduler import DemandDrivenScheduler
from repro.exceptions import ExecutionError
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.utils.tracing import Tracer

__all__ = ["FarmExecutor"]


class FarmExecutor:
    """Adaptive execution engine for farm-like skeletons.

    Any skeleton whose tasks are independent (task farm, map, reduce blocks,
    divide-and-conquer leaves) is executed by this engine; the caller
    supplies ``execute_fn`` to produce each task's real output.
    """

    def __init__(
        self,
        execute_fn: Callable[[Task], object],
        simulator: Union[GridSimulator, ExecutionBackend],
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        min_nodes: int = 1,
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.backend = as_backend(simulator)
        if not self.backend.has_node(master_node):
            raise ExecutionError(f"unknown master node {master_node!r}")
        if not pool:
            raise ExecutionError("farm executor needs a non-empty node pool")
        self.execute_fn = execute_fn
        self.simulator = getattr(self.backend, "simulator", None)
        self.config = config
        self.master_node = master_node
        self.pool = list(pool)
        self.min_nodes = max(1, min_nodes)
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.scheduler = DemandDrivenScheduler()
        self.engine = AdaptiveEngine(
            backend=self.backend, config=config, master_node=master_node,
            pool=self.pool, monitor=monitor, tracer=self.tracer,
        )

    # ------------------------------------------------------------------ run
    def run(self, tasks: Deque[Task], calibration: CalibrationReport,
            start_time: Optional[float] = None) -> ExecutionReport:
        """Execute all pending ``tasks`` adaptively; return the report."""
        return drain_stream(self.as_completed(tasks, calibration, start_time))

    def as_completed(self, tasks: Deque[Task], calibration: CalibrationReport,
                     start_time: Optional[float] = None,
                     ) -> Iterator[TaskResult]:
        """Execute adaptively, yielding each result as it lands.

        The streaming form of :meth:`run`: the same dispatch/monitor/adapt
        loop, but every completed :class:`~repro.skeletons.base.TaskResult`
        (including results of recalibration probes, which count toward the
        job) is yielded as soon as the loop *collects* it, so callers can
        consume output while later windows are still executing.  On
        concurrent backends a monitoring window's dispatches are collected
        in fan-in (submission) order, so within one window a slow early
        chunk delays the yield of faster later ones — lower
        ``ExecutionConfig.monitor_interval`` for tighter streaming.  The
        generator's return value is the final
        :class:`~repro.core.execution.ExecutionReport` (also reachable as
        ``self.engine.report`` once the stream is exhausted).
        """
        exec_cfg = self.config.execution
        engine = self.engine
        start = calibration.finished if start_time is None else float(start_time)

        chosen = self._workers_from(calibration.chosen)
        report = engine.begin(calibration, start)
        report.chosen_history.append(list(chosen))
        cursor = ResultCursor(report)

        master_free = start
        chunk_size = max(1, exec_cfg.chunk_size)
        # A node that loses every task it is given (a worker that can never
        # run, e.g. persistently failing to spawn) would otherwise be
        # re-dispatched forever on backends whose availability query cannot
        # see the breakage; cap total losses so a livelock becomes an error.
        lost_task_limit = max(64, 8 * (len(tasks) + len(self.pool)))

        self.tracer.record("phase.execution.start", "farm execution started",
                           chosen=list(chosen), tasks=len(tasks),
                           chunk_size=chunk_size)

        def collect(chunk: List[Task], handle: DispatchHandle) -> int:
            """Fold one finished chunk dispatch into the window.

            Handles per-task losses (a node died while holding work — the
            fault-injection path on concurrent backends, the failure models
            on the simulator): lost tasks are re-enqueued in order and the
            dead node leaves the chosen set.  Returns the number of tasks
            that completed.
            """
            nonlocal chosen
            outcome = handle.outcome()
            survived: List[Tuple[Task, DispatchOutcome]] = []
            lost: List[Task] = []
            for task, task_outcome in zip(chunk, outcome.outcomes):
                if task_outcome.lost:
                    lost.append(task)
                else:
                    survived.append((task, task_outcome))
            if lost:
                tasks.extendleft(reversed(lost))
                report.lost_tasks += len(lost)
                if report.lost_tasks > lost_task_limit:
                    raise ExecutionError(
                        f"{report.lost_tasks} tasks lost (limit "
                        f"{lost_task_limit}): a node appears to lose every "
                        "task it is given; aborting instead of thrashing"
                    )
                chosen = [n for n in chosen if n != outcome.node_id]
                if not chosen:
                    chosen = self._recover_pool(master_free)
                report.chosen_history.append(list(chosen))
            if not survived:
                return 0
            for task, task_outcome in survived:
                report.results.append(task_outcome.to_task_result(task))
            window.record_chunk(
                outcome.node_id,
                [task_outcome for _, task_outcome in survived],
                [task.cost if task.cost > 0 else 1.0 for task, _ in survived],
            )
            return len(survived)

        while tasks:
            # The window budget is monitor units × chunk size: one round
            # still collects ~one decision sample per chosen worker, and
            # chunking cannot shrink the number of concurrent dispatches
            # (chunk_size=1 keeps the historical task-per-unit budget).
            window_size = max(1, exec_cfg.monitor_interval or len(chosen))
            window_tasks = min(window_size * chunk_size, len(tasks))
            window = MonitoringWindow(floor=start)

            dispatched = 0
            inflight: List[Tuple[List[Task], DispatchHandle]] = []
            while dispatched < window_tasks and tasks:
                take = min(chunk_size, window_tasks - dispatched, len(tasks))
                chunk = [tasks.popleft() for _ in range(max(1, take))]
                handle = self._dispatch(chunk, chosen, master_free)
                if handle is None:
                    # Every chosen worker is dead: force recalibration over
                    # the remaining pool (or fail if nothing is left).
                    tasks.extendleft(reversed(chunk))
                    chosen = self._recover_pool(master_free)
                    report.chosen_history.append(list(chosen))
                    continue
                master_free = handle.master_free_after
                if self.backend.eager:
                    dispatched += collect(chunk, handle)
                    yield from cursor.drain()
                else:
                    # Concurrent backend: let the window's chunks overlap
                    # across the workers and fan them in afterwards.
                    inflight.append((chunk, handle))
                    dispatched += len(chunk)
            for chunk, handle in inflight:
                collect(chunk, handle)
                yield from cursor.drain()

            if window.empty:
                continue

            # --------------------------------------------------- monitoring
            chosen_before = list(chosen)

            def on_recalibrate() -> None:
                nonlocal chosen, master_free
                recal = engine.recalibrate(
                    tasks, at_time=window.finished, execute_fn=self.execute_fn,
                    min_nodes=self.min_nodes, consume=True,
                )
                report.results.extend(recal.results)
                chosen = self._workers_from(recal.chosen)
                master_free = max(master_free, recal.finished)
                window.span(finished=recal.finished)
                self.tracer.record("adaptation.recalibrate", "farm recalibrated",
                                   round=engine.round_index, chosen=list(chosen))

            def on_rerank() -> None:
                nonlocal chosen
                chosen = self._workers_from(
                    engine.rerank(window, at_time=window.finished,
                                  min_nodes=self.min_nodes)
                )
                self.tracer.record("adaptation.rerank", "farm re-ranked",
                                   round=engine.round_index, chosen=list(chosen))

            engine.observe_window(
                window,
                has_pending=bool(tasks),
                nodes_before=chosen_before,
                nodes_now=lambda: list(chosen),
                on_recalibrate=on_recalibrate,
                on_rerank=on_rerank,
            )
            # Recalibration consumed pending tasks; their results stream too.
            yield from cursor.drain()

        report = engine.finish()
        self.tracer.record("phase.execution.end", "farm execution finished",
                           results=len(report.results),
                           recalibrations=report.recalibrations)
        return report

    # ------------------------------------------------------------ internals
    def _workers_from(self, chosen: Sequence[str]) -> List[str]:
        """The worker set derived from a chosen-node list.

        The master only computes when configured to (or when it is the only
        chosen node).
        """
        workers = list(chosen)
        if not self.config.execution.master_computes and len(workers) > 1:
            workers = [n for n in workers if n != self.master_node] or workers
        if not workers:
            raise ExecutionError("calibration selected an empty worker set")
        return workers

    def _recover_pool(self, time: float) -> List[str]:
        """Rebuild the worker set from whatever pool nodes are still alive."""
        alive = self.engine.alive_pool(time)
        self.tracer.record("adaptation.failover", "rebuilt worker set after failures",
                           alive=list(alive))
        return self._workers_from(alive)

    def _dispatch(self, chunk: Sequence[Task], chosen: Sequence[str],
                  master_free: float) -> Optional[DispatchHandle]:
        """Send one chunk of tasks to the earliest-free chosen worker.

        Returns ``None`` when no chosen worker is available.
        """
        backend = self.backend
        ready = {}
        for node in chosen:
            free_at = max(backend.node_free_at(node), master_free)
            if backend.is_available(node, free_at):
                ready[node] = free_at
        if not ready:
            return None
        node = self.scheduler.next_node(ready)
        return backend.dispatch_chunk(
            chunk, node, self.execute_fn, master_node=self.master_node,
            at_time=ready[node], check_loss=True,
        )
