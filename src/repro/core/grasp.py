"""The GRASP facade: orchestrating the four phases.

:class:`Grasp` is the library's main entry point.  Given a skeleton and a
grid topology, :meth:`Grasp.run` walks the methodology of Figure 1:

1. **Programming** — wrap the skeleton and its parameterisation into a
   :class:`~repro.core.program.SkeletalProgram`.
2. **Compilation** — bind it to the parallel environment (an
   :class:`~repro.backends.base.ExecutionBackend` — the virtual-time grid
   simulator or real OS threads — plus communicator and monitor) via
   :func:`~repro.core.compilation.compile_program`.
3. **Calibration** — Algorithm 1 selects the fittest nodes (the sample work
   counts toward the job).
4. **Execution** — Algorithm 2 runs the skeleton adaptively, feeding back to
   calibration whenever the performance threshold is breached.

The result is a :class:`GraspResult` carrying the real outputs, the virtual
makespan, the phase timeline, and every calibration/execution report, so the
experiments can measure exactly what the paper's evaluation measured.
"""

from __future__ import annotations

import dataclasses
import json
import os
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.backends import ExecutionBackend
from repro.core.calibration import CalibrationReport, calibrate
from repro.core.compilation import CompiledProgram, compile_program
from repro.core.execution import ExecutionReport
from repro.core.parameters import GraspConfig
from repro.core.phases import Phase, PhaseTimeline
from repro.core.plan import ChainPlan
from repro.core.plan_executor import PlanExecutor
from repro.core.program import SkeletalProgram
from repro.exceptions import ExecutionError, GraspError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.skeletons.base import Skeleton, TaskResult
from repro.utils.tracing import Tracer

__all__ = ["Grasp", "GraspResult", "StreamingRun"]


@dataclass
class GraspResult:
    """Everything one GRASP run produced."""

    outputs: Any
    results: List[TaskResult]
    makespan: float
    phases: PhaseTimeline
    calibration: CalibrationReport
    execution: ExecutionReport
    compiled: CompiledProgram
    config: GraspConfig

    @property
    def recalibrations(self) -> int:
        """Feedback-edge traversals (execution → calibration)."""
        return self.execution.recalibrations

    @property
    def chosen_nodes(self) -> List[str]:
        """The node set selected by the initial calibration."""
        return list(self.calibration.chosen)

    @property
    def total_tasks(self) -> int:
        """Number of completed task results (calibration + execution)."""
        return len(self.results)

    def per_node_counts(self) -> Dict[str, int]:
        """Tasks completed per node across the whole run."""
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.node_id] = counts.get(result.node_id, 0) + 1
        return counts

    def phase_durations(self) -> Dict[str, float]:
        """Virtual time spent per phase."""
        return self.phases.as_dict()

    @property
    def trace(self) -> Tracer:
        """The run's tracer (phase transitions, adaptation events, …)."""
        return self.compiled.tracer

    @property
    def metrics(self) -> Optional[Dict[str, Any]]:
        """Final metrics snapshot of the run, or None when metrics are
        disabled (``GraspConfig(metrics=False)``).

        A fresh :meth:`~repro.metrics.MetricsRegistry.snapshot` per
        access; the underlying registry is reachable as
        ``result.compiled.metrics``.
        """
        registry = self.compiled.metrics
        return registry.snapshot() if registry is not None else None


class StreamingRun:
    """A GRASP run consumed result-by-result.

    Iterating yields every :class:`~repro.skeletons.base.TaskResult` the
    run produces — calibration samples first (their work counts toward the
    job), then execution results in the order the adaptive loop collects
    them.  On concurrent backends collection proceeds one monitoring
    window at a time (farm windows fan in by submission order, pipeline
    windows by completion time); lower ``ExecutionConfig.monitor_interval``
    for tighter streaming.  After the iterator is exhausted,
    :attr:`result` holds the complete :class:`GraspResult`.

    The run advances only as the caller iterates: an abandoned stream stops
    dispatching.  Call :meth:`close` (or exhaust the stream) to release an
    internally created backend.
    """

    def __init__(self, stream: Iterator[TaskResult],
                 cleanup: Optional[Any] = None,
                 metrics: Optional[Any] = None):
        self._stream = stream
        self._metrics = metrics
        # The backend exists before the generator first runs (compilation
        # is eager), but GC of a *never-started* generator skips its
        # finally blocks — so a dropped, never-iterated run would leak the
        # backend's workers.  A finalizer closes it on GC; backend close
        # is idempotent, so the normal exhaustion path closing first is
        # fine.  (cleanup must not reference this object, or it would
        # never become collectable.)
        self._cleanup = (weakref.finalize(self, cleanup)
                         if cleanup is not None else None)
        #: The full :class:`GraspResult`; ``None`` until the stream is
        #: exhausted.
        self.result: Optional[GraspResult] = None

    def __iter__(self) -> "StreamingRun":
        return self

    def __next__(self) -> TaskResult:
        try:
            return next(self._stream)
        except StopIteration as stop:
            if self.result is None and stop.value is not None:
                self.result = stop.value
            raise StopIteration from None

    def metrics(self) -> Optional[Dict[str, Any]]:
        """A live snapshot of the run's metrics, or None when disabled.

        Safe to call at any point of the stream — the registry snapshots
        without stopping the writers — so a consumer can watch counters
        and latency percentiles move while results are still landing.
        """
        registry = self._metrics
        return registry.snapshot() if registry is not None else None

    def close(self) -> None:
        """Abandon the run early, releasing internally created backends."""
        self._stream.close()
        # Closing a never-started generator skips its finally blocks, so
        # release the eagerly-compiled backend explicitly (close is
        # idempotent — a normally-exhausted stream already released it).
        if self._cleanup is not None:
            self._cleanup()


class Grasp:
    """Adaptive structured-parallelism runtime (the paper's contribution).

    ``backend`` selects the parallel environment: ``"simulated"`` (default,
    deterministic virtual time), ``"thread"`` (real OS threads under
    wall-clock monitoring), ``"process"`` (serial worker processes — true
    parallelism for CPU-bound, picklable payloads), ``"asyncio"`` (one
    event loop for coroutine workers), ``"cluster"`` (one localhost TCP
    worker agent per grid node — pass a
    :class:`~repro.cluster.backend.ClusterBackend` instance instead to run
    on real remote machines) or any
    :class:`~repro.backends.base.ExecutionBackend` instance, e.g. a
    :class:`~repro.backends.faults.FaultInjectingBackend` wrapping one of
    the concurrent backends.

    Examples
    --------
    >>> from repro import Grasp, TaskFarm, GridBuilder
    >>> grid = GridBuilder().heterogeneous(nodes=6, speed_spread=4.0).build(seed=1)
    >>> grasp = Grasp(skeleton=TaskFarm(worker=lambda x: x + 1), grid=grid)
    >>> result = grasp.run(inputs=range(32))
    >>> result.outputs == [x + 1 for x in range(32)]
    True

    >>> result = Grasp(skeleton=TaskFarm(worker=lambda x: x + 1), grid=grid,
    ...                backend="thread").run(inputs=range(32))
    >>> result.outputs == [x + 1 for x in range(32)]
    True
    """

    def __init__(
        self,
        skeleton: Skeleton,
        grid: GridTopology,
        config: Optional[GraspConfig] = None,
        simulator: Optional[GridSimulator] = None,
        backend: Union[None, str, ExecutionBackend] = None,
        trace_path: Optional[str] = None,
    ):
        self.skeleton = skeleton
        self.grid = grid
        self.config = config or GraspConfig()
        if trace_path is not None:
            # Shorthand for GraspConfig(trace_path=...): every run of this
            # Grasp writes its JSONL event stream to the given path.
            self.config = dataclasses.replace(self.config,
                                              trace_path=trace_path)
        self._external_simulator = simulator
        self._backend = backend

    # ------------------------------------------------------------------ run
    def run(self, inputs: Iterable[Any], start_time: float = 0.0) -> GraspResult:
        """Run the skeleton on ``inputs`` over the grid; return the result."""
        stream = self.as_completed(inputs, start_time=start_time)
        for _ in stream:
            pass
        assert stream.result is not None
        return stream.result

    def as_completed(self, inputs: Iterable[Any],
                     start_time: float = 0.0) -> StreamingRun:
        """Run the skeleton, yielding each result as it lands.

        The streaming form of :meth:`run`: returns a :class:`StreamingRun`
        whose iteration drives the four phases and yields every completed
        :class:`~repro.skeletons.base.TaskResult` as the adaptive loop
        collects it — calibration samples first, then execution results —
        instead of blocking until the whole :class:`GraspResult` is ready.

        Examples
        --------
        >>> from repro import Grasp, TaskFarm, GridBuilder
        >>> grid = GridBuilder().homogeneous(nodes=4).build(seed=0)
        >>> run = Grasp(skeleton=TaskFarm(worker=lambda x: x + 1),
        ...             grid=grid).as_completed(inputs=range(8))
        >>> seen = [r.output for r in run]      # results as they land
        >>> sorted(seen) == list(range(1, 9)) and run.result.makespan > 0
        True
        """
        # Programming and compilation run eagerly so misconfiguration
        # (unknown backend, master outside the pool, empty inputs) raises
        # here, at the call site, not at the first next().
        timeline = PhaseTimeline()

        # ---------------------------------------------------- 1. programming
        timeline.enter(Phase.PROGRAMMING, start_time)
        program = SkeletalProgram(self.skeleton, self.config)
        tasks = program.make_tasks(inputs)
        expected = len(tasks)
        timeline.leave(start_time)

        # ---------------------------------------------------- 2. compilation
        timeline.enter(Phase.COMPILATION, start_time)
        compiled = compile_program(program, self.grid,
                                   simulator=self._external_simulator,
                                   at_time=start_time,
                                   backend=self._backend)

        def cleanup() -> None:
            if compiled.owns_backend:
                compiled.backend.close()
            # Flush and release any trace sinks even when the run is
            # abandoned before its first next() (the finalizer path).
            compiled.tracer.close()

        return StreamingRun(
            self._stream(compiled, program, tasks, expected, timeline,
                         start_time),
            cleanup=cleanup,
            metrics=compiled.metrics,
        )

    def _stream(self, compiled, program, tasks, expected, timeline,
                start_time: float) -> Iterator[TaskResult]:
        try:
            result = yield from self._stream_compiled(
                compiled, program, tasks, expected, timeline, start_time)
            return result
        finally:
            if compiled.owns_backend:
                compiled.backend.close()
            # The run is over (or abandoned): flush and close the trace
            # sinks so the JSONL file is complete the moment the stream
            # ends.  The tracer itself stays readable (result.trace).
            compiled.tracer.close()
            self._dump_metrics(compiled)

    def _dump_metrics(self, compiled) -> None:
        """Dump the final snapshot when a metrics path is configured.

        Like ``GRASP_TRACE``, the file is overwritten per run: a process
        running several skeletons leaves the last run's snapshot behind.
        """
        registry = compiled.metrics
        if registry is None:
            return
        path = self.config.metrics_path or os.environ.get("GRASP_METRICS")
        if not path:
            return
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def _stream_compiled(self, compiled, program, tasks, expected, timeline,
                         start_time: float) -> Iterator[TaskResult]:
        compiled.tracer.record("phase.programming", "skeletal program created",
                               tasks=expected,
                               skeleton=program.properties.name)
        timeline.leave(start_time)

        # ---------------------------------------------------- 3. calibration
        timeline.enter(Phase.CALIBRATION, start_time)
        calibration = calibrate(
            tasks=tasks,
            pool=compiled.pool,
            execute_fn=program.execute_task,
            config=self.config.calibration,
            master_node=compiled.master_node,
            min_nodes=program.min_nodes,
            at_time=start_time,
            monitor=compiled.monitor,
            consume=True,
            tracer=compiled.tracer,
            backend=compiled.backend,
        )
        timeline.leave(calibration.finished)
        # Calibration samples count toward the job; stream them first.
        yield from calibration.results

        # ------------------------------------------------------ 4. execution
        # Every skeleton lowered onto the plan IR during the programming
        # phase; one executor walks any plan shape adaptively.
        timeline.enter(Phase.EXECUTION, calibration.finished)
        if isinstance(program.plan, ChainPlan) and not tasks:
            raise ExecutionError(
                "the calibration sample consumed every pipeline item; "
                "reduce sample_per_node or supply more inputs"
            )
        executor = PlanExecutor(
            plan=program.plan,
            simulator=compiled.backend,
            config=self.config,
            master_node=compiled.master_node,
            pool=compiled.pool,
            min_nodes=program.min_nodes,
            monitor=compiled.monitor,
            tracer=compiled.tracer,
        )
        execution = yield from executor.as_completed(tasks, calibration)

        # Interleave the feedback edge (recalibrations) into the timeline so
        # the Figure-1 trace shows execution → calibration → execution cycles.
        for recal in execution.recalibration_reports:
            timeline.leave(recal.started)
            timeline.enter(Phase.CALIBRATION, recal.started)
            timeline.leave(recal.finished)
            timeline.enter(Phase.EXECUTION, recal.finished)
        timeline.leave(max(execution.finished, calibration.finished))

        # ---------------------------------------------------------- results
        all_results = list(calibration.results) + list(execution.results)
        seen = {}
        for result in all_results:
            if result.task_id in seen:
                raise GraspError(f"task {result.task_id} completed twice")
            seen[result.task_id] = result
        if len(seen) != expected:
            raise GraspError(
                f"run produced {len(seen)} results for {expected} tasks"
            )
        ordered_outputs = [seen[task_id].output for task_id in sorted(seen)]
        outputs = program.assemble(ordered_outputs)

        makespan = max(execution.finished, calibration.finished) - start_time
        compiled.backend.advance_to(execution.finished)

        return GraspResult(
            outputs=outputs,
            results=all_results,
            makespan=makespan,
            phases=timeline,
            calibration=calibration,
            execution=execution,
            compiled=compiled,
            config=self.config,
        )
