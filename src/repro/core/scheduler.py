"""Task-to-node scheduling policies.

The GRASP execution phase "modif[ies] the task scheduling according to the
inherent properties of the skeleton".  For the task farm those properties
allow fully demand-driven self-scheduling; the static baselines use the
classic a-priori distributions (block and cyclic), optionally weighted by
nominal node speed.  Keeping the policies as standalone objects lets the
experiments swap them independently of the adaptation machinery (ablation
E4/E5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import SchedulingError
from repro.skeletons.base import Task

__all__ = [
    "Scheduler",
    "DemandDrivenScheduler",
    "StaticBlockScheduler",
    "StaticCyclicScheduler",
    "WeightedBlockScheduler",
]


class Scheduler:
    """Base class: assign tasks to a fixed set of nodes."""

    def assign(self, tasks: Sequence[Task], nodes: Sequence[str]) -> Dict[str, List[Task]]:
        """Return the per-node task lists of an a-priori assignment.

        Demand-driven policies raise — they make decisions online and are
        queried through :meth:`next_node` instead.
        """
        raise NotImplementedError

    def next_node(self, node_ready_times: Dict[str, float]) -> str:
        """Pick the node to receive the next task (online policies only)."""
        raise NotImplementedError


@dataclass
class DemandDrivenScheduler(Scheduler):
    """Self-scheduling: the next task goes to the node that is free earliest.

    Ties are broken by node identifier so runs are deterministic.
    """

    def assign(self, tasks: Sequence[Task], nodes: Sequence[str]) -> Dict[str, List[Task]]:
        raise SchedulingError(
            "DemandDrivenScheduler decides online; use next_node instead of assign"
        )

    def next_node(self, node_ready_times: Dict[str, float]) -> str:
        if not node_ready_times:
            raise SchedulingError("no nodes available to schedule on")
        return min(node_ready_times.items(), key=lambda kv: (kv[1], kv[0]))[0]


@dataclass
class StaticBlockScheduler(Scheduler):
    """Contiguous equal-count blocks, one per node (the classic static farm)."""

    def assign(self, tasks: Sequence[Task], nodes: Sequence[str]) -> Dict[str, List[Task]]:
        if not nodes:
            raise SchedulingError("no nodes available to schedule on")
        tasks = list(tasks)
        boundaries = np.linspace(0, len(tasks), len(nodes) + 1).astype(int)
        return {
            node: tasks[boundaries[i]:boundaries[i + 1]]
            for i, node in enumerate(nodes)
        }

    def next_node(self, node_ready_times: Dict[str, float]) -> str:
        raise SchedulingError("StaticBlockScheduler assigns a priori; use assign")


@dataclass
class StaticCyclicScheduler(Scheduler):
    """Round-robin (cyclic) distribution of tasks over nodes."""

    def assign(self, tasks: Sequence[Task], nodes: Sequence[str]) -> Dict[str, List[Task]]:
        if not nodes:
            raise SchedulingError("no nodes available to schedule on")
        assignment: Dict[str, List[Task]] = {node: [] for node in nodes}
        for index, task in enumerate(tasks):
            assignment[nodes[index % len(nodes)]].append(task)
        return assignment

    def next_node(self, node_ready_times: Dict[str, float]) -> str:
        raise SchedulingError("StaticCyclicScheduler assigns a priori; use assign")


@dataclass
class WeightedBlockScheduler(Scheduler):
    """Blocks sized proportionally to a per-node weight (e.g. nominal speed).

    This is the strongest *static* comparator: it exploits known
    heterogeneity but cannot react to dynamic load, which is precisely the
    gap adaptation closes (experiment E4).
    """

    weights: Optional[Dict[str, float]] = None

    def assign(self, tasks: Sequence[Task], nodes: Sequence[str]) -> Dict[str, List[Task]]:
        if not nodes:
            raise SchedulingError("no nodes available to schedule on")
        tasks = list(tasks)
        weights = np.array(
            [
                (self.weights or {}).get(node, 1.0)
                for node in nodes
            ],
            dtype=float,
        )
        if np.any(weights <= 0):
            raise SchedulingError("all scheduling weights must be > 0")
        shares = weights / weights.sum()
        counts = np.floor(shares * len(tasks)).astype(int)
        # Distribute the remainder to the heaviest-weighted nodes first.
        remainder = len(tasks) - int(counts.sum())
        order = np.argsort(-shares)
        for i in range(remainder):
            counts[order[i % len(nodes)]] += 1

        assignment: Dict[str, List[Task]] = {}
        cursor = 0
        for node, count in zip(nodes, counts):
            assignment[node] = tasks[cursor:cursor + int(count)]
            cursor += int(count)
        return assignment

    def next_node(self, node_ready_times: Dict[str, float]) -> str:
        raise SchedulingError("WeightedBlockScheduler assigns a priori; use assign")
