"""Node-ranking strategies for the calibration phase.

Algorithm 1: "Nodes are ranked by extrapolating their performance based on
the execution times only (the faster a node the fitter it is), or on
statistical functions, such as univariate and multivariate linear regression
involving execution time, processor load, and bandwidth utilisation."

This module turns per-node calibration observations into a ranked list of
:class:`NodeScore` objects (lower score = fitter node).  Three modes:

* :attr:`RankingMode.TIME_ONLY` — score is the mean observed per-unit
  execution time.
* :attr:`RankingMode.UNIVARIATE` — fit ``time ~ load`` across all
  observations and score each node by the fitted prediction at its
  *forecast* load; the fit separates a node that was slow because it was
  momentarily loaded from one that is intrinsically slow.
* :attr:`RankingMode.MULTIVARIATE` — fit ``time ~ load + 1/bandwidth`` and
  predict with each node's forecast load and observed bandwidth, additionally
  accounting for the result-return path.

Both statistical modes fall back to time-only scores when the regression is
degenerate (fewer than three observations, or no variance in the
predictors), mirroring the defensive behaviour a production runtime needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import CalibrationError
from repro.utils.stats import multivariate_linear_regression, univariate_linear_regression

__all__ = ["RankingMode", "NodeScore", "rank_nodes"]


class RankingMode(enum.Enum):
    """How calibration extrapolates node performance (Algorithm 1)."""

    TIME_ONLY = "time_only"
    UNIVARIATE = "univariate"
    MULTIVARIATE = "multivariate"


@dataclass(frozen=True)
class NodeScore:
    """Fitness score of one node (lower is fitter)."""

    node_id: str
    score: float
    mean_time: float
    mean_load: float
    mean_bandwidth: float
    observations: int

    def __lt__(self, other: "NodeScore") -> bool:  # pragma: no cover - trivial
        return self.score < other.score


def _mean(values: Sequence[float], default: float = float("nan")) -> float:
    return float(np.mean(values)) if len(values) else default


def rank_nodes(
    times: Dict[str, Sequence[float]],
    loads: Optional[Dict[str, Sequence[float]]] = None,
    bandwidths: Optional[Dict[str, Sequence[float]]] = None,
    forecast_loads: Optional[Dict[str, float]] = None,
    mode: RankingMode = RankingMode.TIME_ONLY,
) -> List[NodeScore]:
    """Rank nodes from calibration observations.

    Parameters
    ----------
    times:
        Per-node observed execution times, normalised to seconds per work
        unit so differently sized sample tasks remain comparable.
    loads:
        Per-node processor-load observations taken alongside each time
        (required for the statistical modes).
    bandwidths:
        Per-node bandwidth-to-master observations (required for
        MULTIVARIATE).
    forecast_loads:
        Predicted near-future load per node (defaults to the node's mean
        observed load); statistical modes extrapolate to this value.
    mode:
        The ranking mode.

    Returns
    -------
    list of NodeScore, sorted fittest-first.
    """
    if not times:
        raise CalibrationError("cannot rank an empty set of nodes")
    for node_id, values in times.items():
        if len(values) == 0:
            raise CalibrationError(f"node {node_id} has no calibration observations")

    loads = loads or {}
    bandwidths = bandwidths or {}
    forecast_loads = forecast_loads or {}

    mean_times = {n: _mean(v) for n, v in times.items()}
    mean_loads = {n: _mean(loads.get(n, []), default=0.0) for n in times}
    mean_bws = {n: _mean(bandwidths.get(n, []), default=float("nan")) for n in times}

    scores: Dict[str, float] = {}

    if mode is RankingMode.TIME_ONLY:
        scores = dict(mean_times)
    else:
        # Pool every (load [, 1/bandwidth]) -> time observation across nodes.
        pooled_t: List[float] = []
        pooled_load: List[float] = []
        pooled_inv_bw: List[float] = []
        for node_id, node_times in times.items():
            node_loads = list(loads.get(node_id, []))
            node_bws = list(bandwidths.get(node_id, []))
            for index, t in enumerate(node_times):
                load = node_loads[index] if index < len(node_loads) else mean_loads[node_id]
                bw = node_bws[index] if index < len(node_bws) else mean_bws[node_id]
                pooled_t.append(float(t))
                pooled_load.append(float(load))
                pooled_inv_bw.append(1.0 / bw if bw and not np.isnan(bw) and bw > 0 else 0.0)

        degenerate = (
            len(pooled_t) < 3
            or float(np.std(pooled_load)) == 0.0
        )
        if mode is RankingMode.MULTIVARIATE and not degenerate:
            degenerate = float(np.std(pooled_inv_bw)) == 0.0 and float(np.std(pooled_load)) == 0.0

        if degenerate:
            scores = dict(mean_times)
        elif mode is RankingMode.UNIVARIATE:
            fit = univariate_linear_regression(pooled_load, pooled_t)
            for node_id in times:
                predicted_load = float(
                    forecast_loads.get(node_id, mean_loads[node_id])
                )
                # Node-specific residual keeps intrinsic speed differences:
                # score = node mean time adjusted to the forecast load.
                residual = mean_times[node_id] - fit.predict(mean_loads[node_id])
                scores[node_id] = max(fit.predict(predicted_load) + residual, 1e-12)
        else:  # MULTIVARIATE
            features = list(zip(pooled_load, pooled_inv_bw))
            fit = multivariate_linear_regression(features, pooled_t)
            for node_id in times:
                predicted_load = float(
                    forecast_loads.get(node_id, mean_loads[node_id])
                )
                inv_bw = (
                    1.0 / mean_bws[node_id]
                    if (mean_bws[node_id] and not np.isnan(mean_bws[node_id])
                        and mean_bws[node_id] > 0)
                    else 0.0
                )
                residual = mean_times[node_id] - fit.predict(
                    (mean_loads[node_id], inv_bw)
                )
                scores[node_id] = max(
                    fit.predict((predicted_load, inv_bw)) + residual, 1e-12
                )

    ranked = [
        NodeScore(
            node_id=node_id,
            score=float(scores[node_id]),
            mean_time=float(mean_times[node_id]),
            mean_load=float(mean_loads[node_id]),
            mean_bandwidth=float(mean_bws[node_id]) if not np.isnan(mean_bws[node_id]) else 0.0,
            observations=len(times[node_id]),
        )
        for node_id in times
    ]
    ranked.sort(key=lambda s: (s.score, s.node_id))
    return ranked
