"""Algorithm 1 — the calibration phase.

"The calibration is an autonomic stage, which executes a sample of the data
on every allocated node, extrapolating the node performance in order to
select the fittest nodes for the given computation under the current
resource conditions. [...] It is relevant to mention that the processing
performed during the calibration contributes to the overall job."

The :func:`calibrate` function is a direct implementation of the paper's
Algorithm 1 against the simulated grid:

1. every node of the pool concurrently executes ``sample_per_node`` sample
   tasks (drawn from the job's own task queue, so the work is not wasted);
2. the root/monitor collects the execution times ``T`` — and, when
   statistical calibration is enabled, processor-load and bandwidth
   readings;
3. nodes are ranked by extrapolated performance (:mod:`repro.core.ranking`);
4. the fittest subset is selected according to the configured policy.

Execution times are normalised to *seconds per work unit* so sample tasks of
different sizes remain comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.backends import ExecutionBackend, as_backend
from repro.core.parameters import CalibrationConfig, SelectionPolicy
from repro.core.ranking import NodeScore, RankingMode, rank_nodes
from repro.exceptions import CalibrationError
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.utils.tracing import Tracer

__all__ = ["CalibrationObservation", "CalibrationReport", "calibrate", "select_fittest"]


@dataclass(frozen=True)
class CalibrationObservation:
    """One sample-task execution observed during calibration."""

    node_id: str
    task_id: int
    cost: float
    duration: float
    unit_time: float
    load: float
    bandwidth: float
    started: float
    finished: float


@dataclass
class CalibrationReport:
    """Everything Algorithm 1 produced.

    ``results`` holds the sample tasks' real outputs when the sample was
    consumed from the job queue (they count toward the job); it is empty for
    probe-only recalibrations.
    """

    started: float
    finished: float
    mode: RankingMode
    observations: List[CalibrationObservation] = field(default_factory=list)
    scores: List[NodeScore] = field(default_factory=list)
    chosen: List[str] = field(default_factory=list)
    results: List[TaskResult] = field(default_factory=list)
    consumed_tasks: int = 0

    @property
    def duration(self) -> float:
        """Virtual time spent calibrating."""
        return self.finished - self.started

    @property
    def pool(self) -> List[str]:
        """Every node that took part in the calibration."""
        return [score.node_id for score in self.scores]

    def unit_times(self) -> List[float]:
        """All normalised sample times (used to calibrate the threshold Z)."""
        return [obs.unit_time for obs in self.observations]

    def score_of(self, node_id: str) -> float:
        """Fitness score of ``node_id`` (lower is fitter)."""
        for score in self.scores:
            if score.node_id == node_id:
                return score.score
        raise CalibrationError(f"node {node_id!r} was not calibrated")


def select_fittest(
    scores: Sequence[NodeScore],
    config: CalibrationConfig,
    min_nodes: int,
) -> List[str]:
    """Apply the configured selection policy to a ranked score list.

    ``min_nodes`` is the larger of the config's own minimum and the
    skeleton's structural minimum; at least that many nodes are always
    selected (when the pool allows it).
    """
    if not scores:
        raise CalibrationError("cannot select from an empty score list")
    ranked = sorted(scores, key=lambda s: (s.score, s.node_id))
    floor = max(1, min_nodes, config.min_nodes)
    floor = min(floor, len(ranked))

    if config.selection is SelectionPolicy.COUNT:
        count = min(len(ranked), max(floor, int(config.select_count or floor)))
    elif config.selection is SelectionPolicy.FRACTION:
        count = int(np.ceil(config.select_fraction * len(ranked)))
        count = min(len(ranked), max(floor, count))
    else:  # CUTOFF
        best = ranked[0].score
        if best <= 0:
            count = len(ranked)
        else:
            count = sum(1 for s in ranked if s.score <= config.cutoff_ratio * best)
            count = min(len(ranked), max(floor, count))
    return [score.node_id for score in ranked[:count]]


def calibrate(
    tasks: Deque[Task],
    pool: Sequence[str],
    execute_fn: Callable[[Task], object],
    simulator: Optional[GridSimulator] = None,
    config: Optional[CalibrationConfig] = None,
    master_node: Optional[str] = None,
    min_nodes: int = 1,
    at_time: Optional[float] = None,
    monitor: Optional[ResourceMonitor] = None,
    consume: bool = True,
    tracer: Optional[Tracer] = None,
    backend: Optional[ExecutionBackend] = None,
) -> CalibrationReport:
    """Run Algorithm 1 and return a :class:`CalibrationReport`.

    Parameters
    ----------
    tasks:
        The job's pending task queue.  When ``consume`` is true, sample tasks
        are popped from its head and their (real) results are returned in the
        report, because calibration work contributes to the job.  When the
        queue has fewer tasks than the sample requires, the remaining probes
        reuse a copy of the first task and their results are discarded.
    pool:
        Node identifiers taking part (typically every available grid node).
    execute_fn:
        Produces the real output for a task (e.g. the farm worker); outputs
        go into ``report.results``.
    simulator:
        The virtual-time grid simulator (legacy spelling of ``backend``;
        wrapped in a :class:`~repro.backends.simulated.SimulatedBackend`).
    config:
        Calibration parameters (sample size, ranking mode, selection).
    master_node:
        The node hosting the root/monitor process; inputs are shipped from
        and results shipped back to it.
    min_nodes:
        Structural minimum number of nodes the skeleton needs.
    at_time:
        Virtual time at which calibration starts (default: simulator now).
    monitor:
        Optional resource monitor used for load forecasts in the statistical
        ranking modes.
    consume:
        See ``tasks`` above; recalibration probes inside a running pipeline
        pass ``False``.
    backend:
        The parallel environment to sample (takes precedence over
        ``simulator``; exactly one of the two must be provided).
    """
    if backend is None and simulator is None:
        raise CalibrationError("calibrate needs a backend (or simulator)")
    env = as_backend(backend if backend is not None else simulator)
    if config is None:
        raise CalibrationError("calibrate needs a CalibrationConfig")
    if master_node is None:
        raise CalibrationError("calibrate needs a master node")
    pool = list(pool)
    if not pool:
        raise CalibrationError("calibration needs a non-empty node pool")
    if not env.has_node(master_node):
        raise CalibrationError(f"unknown master node {master_node!r}")
    start = env.now if at_time is None else float(at_time)
    tracer = tracer if tracer is not None else Tracer(enabled=False)
    tracer.record("phase.calibration.start", "calibration started",
                  pool=list(pool), mode=config.ranking.value)

    available_pool = [n for n in pool if env.is_available(n, start)]
    if not available_pool:
        raise CalibrationError("no pool node is available at calibration time")

    # ------------------------------------------------------------- sampling
    times: Dict[str, List[float]] = {n: [] for n in available_pool}
    loads: Dict[str, List[float]] = {n: [] for n in available_pool}
    bandwidths: Dict[str, List[float]] = {n: [] for n in available_pool}
    observations: List[CalibrationObservation] = []
    results: List[TaskResult] = []
    consumed = 0
    finish_times: List[float] = [start]

    template: Optional[Task] = tasks[0] if tasks else None

    # Ship the input from the master, compute, ship the result back — for
    # every (node, sample) pair.  All probes are dispatched before any is
    # collected so concurrent backends sample the whole pool in parallel;
    # the eager simulated backend resolves each dispatch on the spot, so
    # its virtual-time behaviour is unchanged.  Sample probes never check
    # for mid-task loss (Algorithm 1 has no failure path) and only counted
    # samples produce output.
    handles = []
    for node_id in available_pool:
        for _ in range(config.sample_per_node):
            if consume and tasks:
                task = tasks.popleft()
                counted = True
                consumed += 1
            else:
                if template is None:
                    raise CalibrationError("cannot calibrate with an empty task queue")
                task = template
                counted = False
            handle = env.dispatch(
                task, node_id, execute_fn, master_node=master_node,
                at_time=start, check_loss=False, collect_output=counted,
            )
            handles.append((node_id, task, counted, handle))

    for node_id, task, counted, handle in handles:
        outcome = handle.outcome()
        finish_times.append(outcome.finished)

        cost = task.cost if task.cost > 0 else 1.0
        unit_time = outcome.duration / cost

        times[node_id].append(unit_time)
        loads[node_id].append(outcome.load)
        bandwidths[node_id].append(outcome.bandwidth)
        observations.append(
            CalibrationObservation(
                node_id=node_id, task_id=task.task_id, cost=task.cost,
                duration=outcome.duration, unit_time=unit_time,
                load=outcome.load, bandwidth=outcome.bandwidth,
                started=outcome.exec_started, finished=outcome.finished,
            )
        )
        if counted:
            results.append(outcome.to_task_result(task, during_calibration=True))

    finished = max(finish_times)

    # -------------------------------------------------------------- ranking
    forecasts: Optional[Dict[str, float]] = None
    if monitor is not None and config.ranking is not RankingMode.TIME_ONLY:
        monitor.poll(finished)
        forecasts = {
            node_id: value
            for node_id, value in monitor.forecast_all().items()
            if node_id in times and not np.isnan(value)
        }
    scores = rank_nodes(times, loads, bandwidths, forecast_loads=forecasts,
                        mode=config.ranking)

    # ------------------------------------------------------------ selection
    chosen = select_fittest(scores, config, min_nodes=min_nodes)

    tracer.record("phase.calibration.end", "calibration finished",
                  chosen=list(chosen), duration=finished - start)
    return CalibrationReport(
        started=start, finished=finished, mode=config.ranking,
        observations=observations, scores=scores, chosen=chosen,
        results=results, consumed_tasks=consumed,
    )
