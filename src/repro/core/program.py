"""The programming phase: skeletal programs.

"Programming is a design phase in which the application programmer selects a
suitable skeleton in order to parallelise an algorithm and interacts with
GRASP through standard application programming interfaces."

A :class:`SkeletalProgram` is the object produced by that phase: a skeleton,
the runtime parameterisation (:class:`~repro.core.parameters.GraspConfig`)
and the skeleton's lowering onto the execution-plan IR
(:mod:`repro.core.plan`) that every executor walks.  It is still
platform-independent — binding to a concrete grid happens in the
compilation phase (:mod:`repro.core.compilation`).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Any, Deque, Iterable, List, Optional

from repro.core.parameters import GraspConfig
from repro.core.plan import ChainPlan, Plan
from repro.exceptions import SkeletonError
from repro.skeletons.base import Skeleton, Task
from repro.skeletons.divide_conquer import DivideAndConquer
from repro.skeletons.map import MapSkeleton
from repro.skeletons.pipeline import Pipeline
from repro.skeletons.reduce import ReduceSkeleton

__all__ = ["SkeletalProgram"]


class SkeletalProgram:
    """A skeleton bound to its GRASP parameterisation (but not yet to a grid).

    The program knows how to

    * lower the skeleton onto the execution-plan IR (``plan``) —
      compositions lower to nested or hinted plans instead of collapsing
      onto one primitive skeleton,
    * build the task list for a given input collection,
    * produce each task's real output (``execute_task``), and
    * post-process completed task outputs into the skeleton's final result
      (``assemble``), e.g. recombining divide-and-conquer leaves.
    """

    def __init__(self, skeleton: Skeleton, config: Optional[GraspConfig] = None):
        if not isinstance(skeleton, Skeleton):
            raise SkeletonError("SkeletalProgram requires a Skeleton instance")
        self.original_skeleton = skeleton
        self.config = config or GraspConfig()
        self.skeleton: Skeleton = skeleton
        #: The skeleton lowered onto the execution-plan IR.
        self.plan: Plan = skeleton.lower()

    # ---------------------------------------------------------------- nature
    @property
    def is_pipeline(self) -> bool:
        """Whether the program executes as a chained stream of stages."""
        return isinstance(self.plan, ChainPlan)

    @property
    def pipeline(self) -> Pipeline:
        """The underlying pipeline (raises for farm-like programs)."""
        if isinstance(self.skeleton, Pipeline):
            return self.skeleton
        inner = getattr(self.skeleton, "pipeline", None)
        if self.is_pipeline and isinstance(inner, Pipeline):
            return inner
        raise SkeletonError("this program is not a pipeline")

    @property
    def min_nodes(self) -> int:
        """Structural minimum node count of the underlying skeleton."""
        return self.skeleton.properties.min_nodes

    @property
    def properties(self):
        """Intrinsic properties of the skeleton."""
        return self.skeleton.properties

    # ----------------------------------------------------------------- tasks
    def make_tasks(self, inputs: Iterable[Any]) -> Deque[Task]:
        """Build the task queue for ``inputs``.

        Chain-plan tasks carry the item's *total* per-item cost so
        calibration samples are normalised consistently; the plan
        executor charges per-stage costs itself.
        """
        tasks = list(self.skeleton.make_tasks(inputs))
        if isinstance(self.plan, ChainPlan):
            plan = self.plan
            tasks = [
                dataclasses.replace(task, cost=plan.unit_cost(task.payload))
                for task in tasks
            ]
        return collections.deque(tasks)

    def execute_task(self, task: Task) -> Any:
        """Produce the real output of one task.

        One plan unit: for chain plans this runs the whole stage chain on
        the item (used by the calibration sample); fan plans run their
        body — for a nested fan that is the full inner chain.
        """
        if isinstance(self.plan, ChainPlan):
            return self.plan.run_unit(task.payload)
        return self.plan.run_unit(task)

    # --------------------------------------------------------------- results
    def assemble(self, ordered_outputs: List[Any]) -> Any:
        """Turn per-task outputs (in task-id order) into the final result."""
        skeleton = self.skeleton
        if isinstance(skeleton, MapSkeleton):
            return skeleton.combine(ordered_outputs)
        if isinstance(skeleton, ReduceSkeleton):
            return skeleton.combine_partials(ordered_outputs)
        if isinstance(skeleton, DivideAndConquer):
            return skeleton.recombine_all(ordered_outputs)
        return ordered_outputs

    def run_sequential(self, inputs: Iterable[Any]) -> Any:
        """Reference (sequential) semantics of the original skeleton."""
        return self.original_skeleton.run_sequential(inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkeletalProgram(skeleton={type(self.original_skeleton).__name__}, "
            f"config={self.config.name!r})"
        )
