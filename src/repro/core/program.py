"""The programming phase: skeletal programs.

"Programming is a design phase in which the application programmer selects a
suitable skeleton in order to parallelise an algorithm and interacts with
GRASP through standard application programming interfaces."

A :class:`SkeletalProgram` is the object produced by that phase: a skeleton,
the runtime parameterisation (:class:`~repro.core.parameters.GraspConfig`)
and the knowledge of which execution engine the skeleton lowers onto.  It is
still platform-independent — binding to a concrete grid happens in the
compilation phase (:mod:`repro.core.compilation`).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Any, Callable, Deque, Iterable, List, Optional

from repro.core.parameters import GraspConfig
from repro.exceptions import SkeletonError
from repro.skeletons.base import Skeleton, Task
from repro.skeletons.composition import FarmOfPipelines, PipelineOfFarms
from repro.skeletons.divide_conquer import DivideAndConquer
from repro.skeletons.map import MapSkeleton
from repro.skeletons.pipeline import Pipeline
from repro.skeletons.reduce import ReduceSkeleton
from repro.skeletons.taskfarm import TaskFarm

__all__ = ["SkeletalProgram"]


class SkeletalProgram:
    """A skeleton bound to its GRASP parameterisation (but not yet to a grid).

    The program knows how to

    * lower composition skeletons onto the primitive farm/pipeline engines,
    * build the task list for a given input collection,
    * produce each task's real output (``execute_task``), and
    * post-process completed task outputs into the skeleton's final result
      (``assemble``), e.g. recombining divide-and-conquer leaves.
    """

    def __init__(self, skeleton: Skeleton, config: Optional[GraspConfig] = None):
        if not isinstance(skeleton, Skeleton):
            raise SkeletonError("SkeletalProgram requires a Skeleton instance")
        self.original_skeleton = skeleton
        self.config = config or GraspConfig()
        # Lower compositions onto their primitive skeleton.
        if isinstance(skeleton, FarmOfPipelines):
            self.skeleton: Skeleton = skeleton.lower()
        elif isinstance(skeleton, PipelineOfFarms):
            self.skeleton = skeleton.lower()
        else:
            self.skeleton = skeleton

    # ---------------------------------------------------------------- nature
    @property
    def is_pipeline(self) -> bool:
        """Whether the program executes on the pipeline engine."""
        return isinstance(self.skeleton, Pipeline)

    @property
    def pipeline(self) -> Pipeline:
        """The underlying pipeline (raises for farm-like programs)."""
        if not self.is_pipeline:
            raise SkeletonError("this program is not a pipeline")
        assert isinstance(self.skeleton, Pipeline)
        return self.skeleton

    @property
    def min_nodes(self) -> int:
        """Structural minimum node count of the underlying skeleton."""
        return self.skeleton.properties.min_nodes

    @property
    def properties(self):
        """Intrinsic properties of the (lowered) skeleton."""
        return self.skeleton.properties

    # ----------------------------------------------------------------- tasks
    def make_tasks(self, inputs: Iterable[Any]) -> Deque[Task]:
        """Build the task queue for ``inputs``.

        Pipeline tasks carry the item's *total* per-item cost so calibration
        samples are normalised consistently; the pipeline executor charges
        per-stage costs itself.
        """
        tasks = list(self.skeleton.make_tasks(inputs))
        if self.is_pipeline:
            pipeline = self.pipeline
            tasks = [
                dataclasses.replace(task, cost=pipeline.total_cost(task.payload))
                for task in tasks
            ]
        return collections.deque(tasks)

    def execute_task(self, task: Task) -> Any:
        """Produce the real output of one task.

        For pipelines this runs the whole stage chain on the item (used by
        the calibration sample); farm-like skeletons delegate to their own
        ``execute_task``.
        """
        if self.is_pipeline:
            return self.pipeline.run_item(task.payload)
        execute = getattr(self.skeleton, "execute_task", None)
        if execute is None:
            raise SkeletonError(
                f"skeleton {type(self.skeleton).__name__} does not define execute_task"
            )
        return execute(task)

    # --------------------------------------------------------------- results
    def assemble(self, ordered_outputs: List[Any]) -> Any:
        """Turn per-task outputs (in task-id order) into the final result."""
        skeleton = self.skeleton
        if isinstance(skeleton, MapSkeleton):
            return skeleton.combine(ordered_outputs)
        if isinstance(skeleton, ReduceSkeleton):
            return skeleton.combine_partials(ordered_outputs)
        if isinstance(skeleton, DivideAndConquer):
            return skeleton.recombine_all(ordered_outputs)
        return ordered_outputs

    def run_sequential(self, inputs: Iterable[Any]) -> Any:
        """Reference (sequential) semantics of the original skeleton."""
        return self.original_skeleton.run_sequential(inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkeletalProgram(skeleton={type(self.original_skeleton).__name__}, "
            f"config={self.config.name!r})"
        )
