"""Shared execution-phase data structures (Algorithm 2).

The farm and pipeline executors (:mod:`repro.core.farm_executor` and
:mod:`repro.core.pipeline_executor`) both follow the paper's Algorithm 2:
execute over the chosen nodes, collect execution times per monitoring round,
and adapt when ``min(T) > Z``.  This module holds the structures they share —
the per-round monitoring record and the overall execution report — plus the
report-level metrics the analysis harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.calibration import CalibrationReport
from repro.core.parameters import AdaptationAction
from repro.exceptions import ExecutionError
from repro.skeletons.base import TaskResult

__all__ = ["MonitoringRound", "ExecutionReport"]


@dataclass(frozen=True)
class MonitoringRound:
    """One monitoring round of Algorithm 2.

    Attributes
    ----------
    index:
        Round number, starting at 0.
    started, finished:
        Virtual-time extent of the work monitored in this round.
    unit_times:
        Normalised (per work unit) execution times collected by the monitor.
    threshold:
        The value of *Z* the round was judged against.
    breached:
        Whether ``min(unit_times) > Z``.
    action:
        The adaptation action taken as a consequence (``None`` when no
        breach, or when the adaptation budget is exhausted).
    chosen_before, chosen_after:
        The chosen node set before and after any adaptation.
    """

    index: int
    started: float
    finished: float
    unit_times: List[float]
    threshold: float
    breached: bool
    action: Optional[AdaptationAction]
    chosen_before: List[str]
    chosen_after: List[str]

    @property
    def min_time(self) -> float:
        """The monitor's decision statistic: the round's minimum unit time."""
        if not self.unit_times:
            return float("nan")
        return min(self.unit_times)

    @property
    def adapted(self) -> bool:
        """Whether this round changed the chosen node set."""
        return self.chosen_before != self.chosen_after


@dataclass
class ExecutionReport:
    """Everything the execution phase produced."""

    started: float
    finished: float
    results: List[TaskResult] = field(default_factory=list)
    rounds: List[MonitoringRound] = field(default_factory=list)
    recalibrations: int = 0
    chosen_history: List[List[str]] = field(default_factory=list)
    recalibration_reports: List[CalibrationReport] = field(default_factory=list)
    lost_tasks: int = 0

    @property
    def duration(self) -> float:
        """Virtual time spent in the execution phase."""
        return self.finished - self.started

    @property
    def breaches(self) -> int:
        """Number of monitoring rounds that breached the threshold."""
        return sum(1 for r in self.rounds if r.breached)

    def outputs(self, ordered: bool = True) -> List[object]:
        """Task outputs, by task id (``ordered=True``) or completion order."""
        results = self.results
        if ordered:
            results = sorted(results, key=lambda r: r.task_id)
        return [r.output for r in results]

    def per_node_counts(self) -> Dict[str, int]:
        """Number of tasks each node completed."""
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.node_id] = counts.get(result.node_id, 0) + 1
        return counts

    def validate(self, expected_tasks: int) -> None:
        """Check that exactly ``expected_tasks`` distinct tasks completed."""
        task_ids = {r.task_id for r in self.results}
        if len(task_ids) != expected_tasks:
            raise ExecutionError(
                f"expected {expected_tasks} completed tasks, got {len(task_ids)}"
            )
        if len(self.results) != len(task_ids):
            raise ExecutionError("duplicate task results detected")
