"""The compilation phase: binding a program to the parallel environment.

"Then, the structured parallelism program is compiled and linked with the
GRASP code, the parallel environment, and, if any, the resource monitoring
library.  This parallel environment handles the underlying
metacomputer/computational grid, including the node initialisation, grid
resource co-allocation, inter-domain scheduling, and other infrastructure
matters."

:func:`compile_program` performs the Python equivalent of that link step: it
binds the program to an :class:`~repro.backends.base.ExecutionBackend` over
the topology, co-allocates the node pool, designates the master/monitor
node, builds the communicator and the resource monitor, and returns a
:class:`CompiledProgram` ready for the calibration phase.

The ``backend`` parameter is the rebinding point of the whole methodology:
the same :class:`~repro.core.program.SkeletalProgram` compiles against the
virtual-time grid simulator (``backend="simulated"``, the default), against
real OS threads (``backend="thread"``), against worker processes
(``backend="process"``), against an asyncio event loop for coroutine
payloads (``backend="asyncio"``), against a grid of TCP worker agents
(``backend="cluster"`` — localhost agents; pass a ready
:class:`~repro.cluster.backend.ClusterBackend` for real multi-host grids),
or against any :class:`ExecutionBackend` instance
— including a :class:`~repro.backends.faults.FaultInjectingBackend`
wrapping one of the above — without touching the program.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.backends import (
    BACKEND_NAMES,
    AsyncBackend,
    ExecutionBackend,
    ProcessBackend,
    SimulatedBackend,
    ThreadBackend,
    as_backend,
)
from repro.comm.communicator import SimulatedCommunicator
from repro.core.program import SkeletalProgram
from repro.exceptions import CompilationError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.metrics import MetricsRegistry
from repro.monitor.monitor import ResourceMonitor
from repro.utils.tracing import DEFAULT_MAX_EVENTS, JsonlTraceSink, Tracer

__all__ = ["CompiledProgram", "compile_program"]


@dataclass
class CompiledProgram:
    """A skeletal program linked with its environment, communicator and monitor."""

    program: SkeletalProgram
    topology: GridTopology
    simulator: Optional[GridSimulator]
    communicator: SimulatedCommunicator
    monitor: ResourceMonitor
    master_node: str
    pool: List[str]
    tracer: Tracer
    backend: Optional[ExecutionBackend] = None
    owns_backend: bool = field(default=False, repr=False)
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.backend is None:
            raise CompilationError(
                "CompiledProgram requires an ExecutionBackend; "
                "use compile_program() to construct one"
            )

    @property
    def config(self):
        """The program's GRASP configuration."""
        return self.program.config


def _resolve_backend(
    backend: Union[None, str, ExecutionBackend],
    topology: GridTopology,
    simulator: Optional[GridSimulator],
    tracer: Tracer,
) -> tuple:
    """The (backend, owns_backend) pair for a compilation request."""
    if backend is None or backend == "simulated":
        simulator = simulator or GridSimulator(topology, tracer=tracer)
        return SimulatedBackend(simulator), False
    if (simulator is not None and backend is not simulator
            and getattr(backend, "simulator", None) is not simulator):
        # A pre-configured simulator (failure schedules, load traces, seeded
        # queues) cannot be honoured by a non-simulated backend; dropping it
        # silently would misreport the experiment.
        raise CompilationError(
            "simulator= conflicts with backend=: pass the simulator alone "
            "(or backend=\"simulated\") to run on it"
        )
    if isinstance(backend, str):
        if backend == "thread":
            return ThreadBackend(topology=topology, tracer=tracer), True
        if backend == "process":
            return ProcessBackend(topology=topology, tracer=tracer), True
        if backend == "asyncio":
            return AsyncBackend(topology=topology, tracer=tracer), True
        if backend == "cluster":
            # Imported here, not at module top: the cluster subsystem
            # layers on top of core/backends, and this registry branch is
            # the only place either layer reaches up into it.
            from repro.cluster.backend import ClusterBackend
            return ClusterBackend.local(topology=topology, tracer=tracer), True
        # Fail loudly for names registered elsewhere but not routed here.
        raise CompilationError(
            f"unknown backend {backend!r}; expected one of {sorted(BACKEND_NAMES)}"
        )
    if isinstance(backend, (ExecutionBackend, GridSimulator)):
        return as_backend(backend), False
    raise CompilationError(
        f"backend must be a name or an ExecutionBackend, got {type(backend).__name__}"
    )


def compile_program(
    program: SkeletalProgram,
    topology: GridTopology,
    simulator: Optional[GridSimulator] = None,
    tracer: Optional[Tracer] = None,
    at_time: float = 0.0,
    backend: Union[None, str, ExecutionBackend] = None,
) -> CompiledProgram:
    """Bind ``program`` to ``topology`` and co-allocate its node pool.

    Parameters
    ----------
    backend:
        The parallel environment to link against: ``"simulated"`` (default),
        ``"thread"``, ``"process"``, ``"asyncio"``, ``"cluster"`` (spawns
        one localhost worker agent per grid node), or a ready
        :class:`ExecutionBackend` instance.  The legacy ``simulator=``
        parameter remains supported and implies the simulated backend.  A
        backend created here (string names) is owned by the returned
        program and is closed by the caller — or by this function itself
        when compilation fails partway.

    Raises
    ------
    CompilationError
        When the environment cannot host the skeleton (too few nodes
        available), the configured master node does not exist, or the
        configured master is not part of the co-allocated pool.
    """
    owns_tracer = tracer is None
    if tracer is None:
        tracer = _make_tracer(program.config)
    env, owns_backend = _resolve_backend(backend, topology, simulator, tracer)
    try:
        return _link(program, topology, env, owns_backend, tracer, at_time)
    except BaseException:
        # A backend created here (backend="thread"/"process") holds real
        # worker threads/processes; a failed link step must not leak them.
        # A trace sink opened here must not leak its file handle either.
        if owns_backend:
            env.close()
        if owns_tracer:
            tracer.close()
        raise


def _make_tracer(config) -> Tracer:
    """The run tracer for one compilation, with any configured JSONL sink.

    ``config.trace_path`` (or, failing that, the ``GRASP_TRACE``
    environment variable) attaches a line-buffered
    :class:`~repro.utils.tracing.JsonlTraceSink`; the sink's lifetime is
    tied to the run — :class:`~repro.core.grasp.Grasp` closes it when
    the stream finishes (or is abandoned).
    """
    max_events = (config.trace_max_events
                  if config.trace_max_events is not None
                  else DEFAULT_MAX_EVENTS)
    tracer = Tracer(enabled=config.trace, max_events=max_events)
    trace_path = config.trace_path or os.environ.get("GRASP_TRACE") or None
    if trace_path and config.trace:
        tracer.attach(JsonlTraceSink(trace_path))
    return tracer


def _make_metrics(config) -> Optional[MetricsRegistry]:
    """The run's metrics registry, or None when metrics are disabled."""
    if not config.metrics:
        return None
    return MetricsRegistry()


def _link(
    program: SkeletalProgram,
    topology: GridTopology,
    env: ExecutionBackend,
    owns_backend: bool,
    tracer: Tracer,
    at_time: float,
) -> CompiledProgram:
    """The fallible part of compilation (see :func:`compile_program`)."""
    tracer.bind_clock(lambda: env.now)
    # A backend *instance* handed in by the caller (cluster.backend(), a
    # fault-injection wrapper, ...) was constructed before this run's
    # tracer existed; adopt it so dispatch/cluster events reach the same
    # event stream as the engine's.  A tracer the caller already wired in
    # is respected.
    if getattr(env, "tracer", None) is None:
        try:
            env.tracer = tracer
        except AttributeError:  # read-only backend attribute
            pass
    # The metrics registry is adopted the same way: a caller-wired
    # registry (a long-lived backend shared across runs) is respected,
    # otherwise the run's own registry becomes the backend's sink.
    metrics = _make_metrics(program.config)
    if metrics is not None:
        metrics.bind_clock(lambda: env.now)
        if getattr(env, "metrics", None) is None:
            try:
                env.metrics = metrics
            except AttributeError:  # read-only backend attribute
                pass
        else:
            metrics = env.metrics
    # The shared-memory data-plane threshold follows the same adoption
    # pattern: an explicit config value lands on every backend exposing
    # the knob (the process backend today); ``None`` keeps the backend's
    # own default.
    shm_threshold = program.config.execution.shm_threshold
    if shm_threshold is not None and hasattr(env, "shm_threshold"):
        env.shm_threshold = shm_threshold

    pool = env.available_nodes(at_time)
    if not pool:
        raise CompilationError("no grid node is available at compilation time")
    if len(pool) < program.min_nodes:
        raise CompilationError(
            f"the skeleton needs at least {program.min_nodes} nodes, "
            f"but only {len(pool)} are available"
        )

    master = program.config.master_node
    if master is None:
        master = pool[0]
    elif not env.has_node(master):
        raise CompilationError(f"configured master node {master!r} does not exist")
    elif master not in pool:
        # The master hosts the root/monitor process; a co-allocation that
        # silently drops it would leave the job without a coordinator.
        raise CompilationError(
            f"configured master node {master!r} is not available for "
            f"co-allocation at time {at_time}"
        )

    communicator = SimulatedCommunicator(env, pool)
    monitor = ResourceMonitor(env, pool, master_node=master)

    tracer.record("phase.compilation", "program linked with grid environment",
                  pool=list(pool), master=master,
                  skeleton=program.properties.name,
                  backend=env.name)
    return CompiledProgram(
        program=program,
        topology=topology,
        simulator=getattr(env, "simulator", None),
        communicator=communicator,
        monitor=monitor,
        master_node=master,
        pool=list(pool),
        tracer=tracer,
        backend=env,
        owns_backend=owns_backend,
        metrics=metrics,
    )
