"""The compilation phase: binding a program to the parallel environment.

"Then, the structured parallelism program is compiled and linked with the
GRASP code, the parallel environment, and, if any, the resource monitoring
library.  This parallel environment handles the underlying
metacomputer/computational grid, including the node initialisation, grid
resource co-allocation, inter-domain scheduling, and other infrastructure
matters."

:func:`compile_program` performs the Python equivalent of that link step: it
instantiates the virtual-time simulator over the topology, co-allocates the
node pool, designates the master/monitor node, builds the communicator and
the resource monitor, and returns a :class:`CompiledProgram` ready for the
calibration phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.comm.communicator import SimulatedCommunicator
from repro.core.program import SkeletalProgram
from repro.exceptions import CompilationError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.monitor.monitor import ResourceMonitor
from repro.utils.tracing import Tracer

__all__ = ["CompiledProgram", "compile_program"]


@dataclass
class CompiledProgram:
    """A skeletal program linked with its grid, communicator and monitor."""

    program: SkeletalProgram
    topology: GridTopology
    simulator: GridSimulator
    communicator: SimulatedCommunicator
    monitor: ResourceMonitor
    master_node: str
    pool: List[str]
    tracer: Tracer

    @property
    def config(self):
        """The program's GRASP configuration."""
        return self.program.config


def compile_program(
    program: SkeletalProgram,
    topology: GridTopology,
    simulator: Optional[GridSimulator] = None,
    tracer: Optional[Tracer] = None,
    at_time: float = 0.0,
) -> CompiledProgram:
    """Bind ``program`` to ``topology`` and co-allocate its node pool.

    Raises
    ------
    CompilationError
        When the grid cannot host the skeleton (too few nodes available) or
        the configured master node does not exist.
    """
    tracer = tracer if tracer is not None else Tracer(enabled=program.config.trace)
    simulator = simulator or GridSimulator(topology, tracer=tracer)
    tracer.bind_clock(lambda: simulator.now)

    pool = topology.available_nodes(at_time)
    if not pool:
        raise CompilationError("no grid node is available at compilation time")
    if len(pool) < program.min_nodes:
        raise CompilationError(
            f"the skeleton needs at least {program.min_nodes} nodes, "
            f"but only {len(pool)} are available"
        )

    master = program.config.master_node
    if master is None:
        master = pool[0]
    elif master not in topology:
        raise CompilationError(f"configured master node {master!r} does not exist")

    communicator = SimulatedCommunicator(simulator, pool)
    monitor = ResourceMonitor(simulator, pool, master_node=master)

    tracer.record("phase.compilation", "program linked with grid environment",
                  pool=list(pool), master=master,
                  skeleton=program.properties.name)
    return CompiledProgram(
        program=program,
        topology=topology,
        simulator=simulator,
        communicator=communicator,
        monitor=monitor,
        master_node=master,
        pool=list(pool),
        tracer=tracer,
    )
