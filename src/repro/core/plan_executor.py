"""Algorithm 2 over the execution-plan IR.

One adaptive executor for every skeleton: :class:`PlanExecutor` walks any
:data:`~repro.core.plan.Plan` — a fan of independent units, a chain of
stages, or a fan whose unit is itself a chained sub-plan — through the
shared :class:`~repro.core.engine.AdaptiveEngine`.  Monitoring windows,
threshold breaches, recalibrate/re-rank, streaming ``as_completed``,
chunked dispatch and the lost-task livelock cap are uniform across all
plan shapes and all backends; the historical ``FarmExecutor`` and
``PipelineExecutor`` are thin compatibility shims over this class.

The three walks:

* **Fan** (:class:`~repro.core.plan.FanPlan`, callable body) — demand-driven
  self-scheduling of independent tasks, chunk-at-a-time, with per-task
  loss recovery and the lost-task cap.  Bit-identical to the historical
  farm executor on the virtual-time simulator.
* **Chain** (:class:`~repro.core.plan.ChainPlan`) — calibration ranking maps
  the heaviest stages to the fittest nodes (replicas over the spares
  when replication is on), items stream through the backend chain
  primitive, and the monitor judges the normalised inter-completion gap
  (the reciprocal throughput).  Bit-identical to the historical
  pipeline executor at ``chunk_size=1``; larger chunks fold k
  consecutive completions into one decision sample and widen the window
  budget exactly like fan chunking.  Items reported *lost* by the
  backend are re-enqueued under the same cap that protects fans, so a
  never-succeeding-but-available node aborts instead of livelocking.
* **Nested fan** (``FanPlan`` whose body is a ``ChainPlan``) — a farm whose
  worker is a whole pipeline: each unit is dispatched through the chain
  primitive with every stage picking the earliest-free chosen node, so
  the composition executes stage-by-stage on real grid nodes instead of
  collapsing to one opaque callable.
"""

from __future__ import annotations

import collections
import math
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.backends import (
    ChainStage,
    DispatchHandle,
    DispatchOutcome,
    ExecutionBackend,
    as_backend,
)
from repro.core.calibration import CalibrationReport
from repro.core.engine import (
    AdaptiveEngine,
    MonitoringWindow,
    ResultCursor,
    drain_stream,
)
from repro.core.execution import ExecutionReport
from repro.core.parameters import GraspConfig
from repro.core.plan import ChainPlan, FanPlan, Plan, UnitRunner
from repro.core.scheduler import DemandDrivenScheduler
from repro.exceptions import ExecutionError, GridError
from repro.grid.simulator import GridSimulator
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task, TaskResult
from repro.utils.tracing import Tracer

__all__ = [
    "PlanExecutor",
    "StageMapping",
    "build_plan_mapping",
    "lower_chain_stages",
    "resolve_auto_chunk",
]


def resolve_auto_chunk(backend: ExecutionBackend,
                       calibration: CalibrationReport,
                       n_tasks: int, n_workers: int) -> int:
    """The dispatch chunk size for ``chunk_size="auto"``.

    Batches just enough tasks per dispatch that the backend's measured
    per-dispatch overhead stays under ~10% of the chunk's compute time
    (mean task duration from the calibration sample), clamped so every
    worker still sees at least two dispatches — self-scheduling needs
    slack to balance load.  Falls back to ``1`` (pure self-scheduling)
    when the backend reports no measurable overhead (simulator, threads)
    or the sample carried no durations.
    """
    try:
        overhead = float(backend.dispatch_overhead())
    except Exception:
        overhead = 0.0
    durations = [obs.duration for obs in calibration.observations
                 if obs.duration > 0.0]
    if overhead <= 0.0 or not durations:
        return 1
    mean_duration = sum(durations) / len(durations)
    size = math.ceil(overhead / (0.1 * mean_duration))
    cap = max(1, n_tasks // (2 * max(1, n_workers)))
    return max(1, min(size, cap))


class StageMapping:
    """Assignment of chain stages to grid nodes (with optional replicas)."""

    def __init__(self, assignment: Dict[int, List[str]]):
        if not assignment:
            raise ExecutionError("stage mapping cannot be empty")
        for stage, nodes in assignment.items():
            if not nodes:
                raise ExecutionError(f"stage {stage} has no nodes assigned")
        self.assignment: Dict[int, List[str]] = {
            stage: list(nodes) for stage, nodes in assignment.items()
        }

    def nodes_for(self, stage: int) -> List[str]:
        """All nodes serving ``stage`` (one unless the stage is replicated)."""
        return list(self.assignment[stage])

    def pick_node(self, stage: int, free_at) -> str:
        """Choose the replica with the earliest availability for the next item."""
        nodes = self.assignment[stage]
        if len(nodes) == 1:
            return nodes[0]
        return min(nodes, key=lambda n: (free_at(n), n))

    def all_nodes(self) -> List[str]:
        """Every distinct node used by the mapping, in stage order."""
        seen: Dict[str, None] = {}
        for stage in sorted(self.assignment):
            for node in self.assignment[stage]:
                seen.setdefault(node, None)
        return list(seen)

    def as_dict(self) -> Dict[int, List[str]]:
        return {stage: list(nodes) for stage, nodes in self.assignment.items()}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StageMapping) and self.assignment == other.assignment


def build_plan_mapping(
    chain: ChainPlan,
    ranked_nodes: Sequence[str],
    sample_item: object,
    replicate: bool = False,
) -> StageMapping:
    """Map chain stages onto ranked nodes, heaviest stage to fittest node.

    ``ranked_nodes`` must contain at least ``chain.num_stages`` entries;
    extra nodes are used as replicas of the costliest replicable stages
    when ``replicate`` is enabled (otherwise they are left unused).
    """
    stages = chain.num_stages
    if len(ranked_nodes) < stages:
        raise ExecutionError(
            f"the chain needs {stages} nodes, calibration chose {len(ranked_nodes)}"
        )
    costs = [float(chain.stages[i].cost(sample_item)) for i in range(stages)]
    order = sorted(range(stages), key=lambda i: -costs[i])
    assignment: Dict[int, List[str]] = {}
    for position, stage_index in enumerate(order):
        assignment[stage_index] = [ranked_nodes[position]]

    if replicate and len(ranked_nodes) > stages:
        spares = list(ranked_nodes[stages:])
        replicable = [i for i in order if chain.stages[i].replicable]
        if replicable:
            cursor = 0
            for spare in spares:
                assignment[replicable[cursor % len(replicable)]].append(spare)
                cursor += 1
    return StageMapping(assignment)


def lower_chain_stages(chain: ChainPlan, pick_for_stage) -> List[ChainStage]:
    """Lower a chain plan onto backend chain stages.

    ``pick_for_stage(index)`` returns the node-pick callable for one
    stage (a fixed node for static mappings, replica selection for
    adaptive ones, earliest-free-of-the-chosen for nested fans); cost
    and apply come from the plan itself, so every chain construction
    shares one lowering.
    """
    return [
        ChainStage(
            pick=pick_for_stage(index),
            cost=chain.stages[index].cost,
            apply=chain.stages[index].apply,
        )
        for index in range(chain.num_stages)
    ]


class PlanExecutor:
    """Adaptive execution engine for any plan of the IR."""

    def __init__(
        self,
        plan: Plan,
        simulator: Union[GridSimulator, ExecutionBackend],
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        min_nodes: Optional[int] = None,
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not isinstance(plan, (FanPlan, ChainPlan)):
            raise ExecutionError(
                f"not an execution plan: {type(plan).__name__}"
            )
        self.plan = plan
        self.backend = as_backend(simulator)
        if not self.backend.has_node(master_node):
            raise ExecutionError(f"unknown master node {master_node!r}")
        if not pool:
            raise ExecutionError("plan executor needs a non-empty node pool")
        self.simulator = getattr(self.backend, "simulator", None)
        self.config = config
        self.master_node = master_node
        self.pool = list(pool)
        if isinstance(plan, ChainPlan):
            self.min_nodes = max(plan.num_stages, min_nodes or 1)
        else:
            self.min_nodes = max(
                1, plan.min_nodes if min_nodes is None else min_nodes
            )
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.scheduler = DemandDrivenScheduler()
        self.engine = AdaptiveEngine(
            backend=self.backend, config=config, master_node=master_node,
            pool=self.pool, monitor=monitor, tracer=self.tracer,
        )

    # ------------------------------------------------------------------ run
    def run(self, tasks, calibration: CalibrationReport,
            start_time: Optional[float] = None) -> ExecutionReport:
        """Execute all pending ``tasks`` adaptively; return the report."""
        return drain_stream(self.as_completed(tasks, calibration, start_time))

    def as_completed(self, tasks, calibration: CalibrationReport,
                     start_time: Optional[float] = None,
                     ) -> Iterator[TaskResult]:
        """Execute adaptively, yielding each result as it lands.

        The streaming form of :meth:`run`: the same dispatch/monitor/
        adapt loop, but every completed
        :class:`~repro.skeletons.base.TaskResult` (including results of
        recalibration probes that consume pending tasks) is yielded as
        soon as the loop *collects* it.  On concurrent backends a
        window's dispatches are collected in fan-in order (fans) or by
        completion time (chains — the inter-arrival statistic requires
        it); lower ``ExecutionConfig.monitor_interval`` for tighter
        streaming.  The generator's return value is the final
        :class:`~repro.core.execution.ExecutionReport` (also reachable
        as ``self.engine.report`` once the stream is exhausted).
        """
        start = (calibration.finished if start_time is None
                 else float(start_time))
        if isinstance(self.plan, ChainPlan):
            return self._chain_stream(self.plan, list(tasks), calibration,
                                      start)
        # Fan walks consume (and on losses re-fill) the queue in place, so
        # a caller-supplied deque is shared; any other sequence is copied.
        if not isinstance(tasks, collections.deque):
            tasks = collections.deque(tasks)
        if self.plan.nested:
            return self._nested_stream(self.plan, tasks, calibration, start)
        return self._fan_stream(self.plan, tasks, calibration, start)

    # ---------------------------------------------------------- fan walking
    def _fan_stream(self, plan: FanPlan, tasks: Deque[Task],
                    calibration: CalibrationReport, start: float,
                    ) -> Iterator[TaskResult]:
        """Demand-driven dispatch of independent units (the farm loop)."""
        exec_cfg = self.config.execution
        engine = self.engine
        execute_fn = plan.body

        chosen = self._workers_from(calibration.chosen)
        report = engine.begin(calibration, start)
        report.chosen_history.append(list(chosen))
        cursor = ResultCursor(report)

        master_free = start
        chunk_size = self._resolve_chunk(plan.chunk_size, calibration,
                                         len(tasks), len(chosen))
        lost_task_limit = self._lost_task_limit(len(tasks))

        self.tracer.record("phase.execution.start", "fan execution started",
                           chosen=list(chosen), tasks=len(tasks),
                           chunk_size=chunk_size)

        def collect(chunk: List[Task], handle: DispatchHandle) -> int:
            """Fold one finished chunk dispatch into the window.

            Handles per-task losses (a node died while holding work —
            the fault-injection path on concurrent backends, the failure
            models on the simulator): lost tasks are re-enqueued in
            order and the dead node leaves the chosen set.  Returns the
            number of tasks that completed.
            """
            nonlocal chosen
            outcome = handle.outcome()
            survived: List[Tuple[Task, DispatchOutcome]] = []
            lost: List[Task] = []
            for task, task_outcome in zip(chunk, outcome.outcomes):
                if task_outcome.lost:
                    lost.append(task)
                else:
                    survived.append((task, task_outcome))
            if lost:
                tasks.extendleft(reversed(lost))
                self._note_lost(report, len(lost), lost_task_limit)
                chosen = [n for n in chosen if n != outcome.node_id]
                if not chosen:
                    chosen = self._recover_pool(master_free)
                report.chosen_history.append(list(chosen))
            if not survived:
                return 0
            for task, task_outcome in survived:
                report.results.append(task_outcome.to_task_result(task))
            window.record_chunk(
                outcome.node_id,
                [task_outcome for _, task_outcome in survived],
                [task.cost if task.cost > 0 else 1.0 for task, _ in survived],
            )
            return len(survived)

        while tasks:
            # The window budget is monitor units × chunk size: one round
            # still collects ~one decision sample per chosen worker, and
            # chunking cannot shrink the number of concurrent dispatches
            # (chunk_size=1 keeps the historical task-per-unit budget).
            window_size = max(1, exec_cfg.monitor_interval or len(chosen))
            window_tasks = min(window_size * chunk_size, len(tasks))
            window = MonitoringWindow(floor=start)

            dispatched = 0
            inflight: List[Tuple[List[Task], DispatchHandle]] = []
            while dispatched < window_tasks and tasks:
                take = min(chunk_size, window_tasks - dispatched, len(tasks))
                chunk = [tasks.popleft() for _ in range(max(1, take))]
                handle = self._dispatch(chunk, execute_fn, chosen, master_free)
                if handle is None:
                    # Every chosen worker is dead: force recalibration over
                    # the remaining pool (or fail if nothing is left).
                    tasks.extendleft(reversed(chunk))
                    chosen = self._recover_pool(master_free)
                    report.chosen_history.append(list(chosen))
                    continue
                master_free = handle.master_free_after
                if self.backend.eager:
                    dispatched += collect(chunk, handle)
                    yield from cursor.drain()
                else:
                    # Concurrent backend: let the window's chunks overlap
                    # across the workers and fan them in afterwards.
                    inflight.append((chunk, handle))
                    dispatched += len(chunk)
            for chunk, handle in inflight:
                collect(chunk, handle)
                yield from cursor.drain()

            if window.empty:
                continue

            # --------------------------------------------------- monitoring
            chosen_before = list(chosen)

            def on_recalibrate() -> None:
                nonlocal chosen, master_free
                recal = engine.recalibrate(
                    tasks, at_time=window.finished, execute_fn=execute_fn,
                    min_nodes=self.min_nodes, consume=True,
                )
                report.results.extend(recal.results)
                chosen = self._workers_from(recal.chosen)
                master_free = max(master_free, recal.finished)
                window.span(finished=recal.finished)
                self.tracer.record("adaptation.recalibrate", "fan recalibrated",
                                   round=engine.round_index, chosen=list(chosen))

            def on_rerank() -> None:
                nonlocal chosen
                chosen = self._workers_from(
                    engine.rerank(window, at_time=window.finished,
                                  min_nodes=self.min_nodes)
                )
                self.tracer.record("adaptation.rerank", "fan re-ranked",
                                   round=engine.round_index, chosen=list(chosen))

            engine.observe_window(
                window,
                has_pending=bool(tasks),
                nodes_before=chosen_before,
                nodes_now=lambda: list(chosen),
                on_recalibrate=on_recalibrate,
                on_rerank=on_rerank,
            )
            # Recalibration consumed pending tasks; their results stream too.
            yield from cursor.drain()

        report = engine.finish()
        self.tracer.record("phase.execution.end", "fan execution finished",
                           results=len(report.results),
                           recalibrations=report.recalibrations)
        return report

    # -------------------------------------------------------- chain walking
    def _chain_stream(self, chain: ChainPlan, items: List[Task],
                      calibration: CalibrationReport, start: float,
                      ) -> Iterator[TaskResult]:
        """Stream items through the chain stages (the pipeline loop)."""
        exec_cfg = self.config.execution
        engine = self.engine
        backend = self.backend
        if not items:
            raise ExecutionError("chain execution needs at least one item")

        replicate = (exec_cfg.replicate_stages if chain.replicate is None
                     else chain.replicate)
        chunk_size = self._resolve_chunk(chain.chunk_size, calibration,
                                         len(items),
                                         max(1, len(calibration.chosen)))

        sample_item = items[0].payload
        mapping = build_plan_mapping(chain, calibration.chosen, sample_item,
                                     replicate=replicate)
        stages = self._mapped_stages(chain, mapping)

        report = engine.begin(calibration, start)
        report.chosen_history.append(mapping.all_nodes())
        cursor = ResultCursor(report)

        # Results of calibration-phase items are produced by the caller
        # (Grasp.run) because the chain sample runs all stages per item.
        window_size = max(1, exec_cfg.monitor_interval or
                          max(len(mapping.all_nodes()), 1))

        emit_time = start  # the master releases items into the stream
        pending = collections.deque(items)
        lost_task_limit = self._lost_task_limit(len(pending))

        self.tracer.record("phase.execution.start", "chain execution started",
                           mapping=mapping.as_dict(), items=len(pending),
                           chunk_size=chunk_size)

        # The monitor node observes the stream of results it receives.  Its
        # decision statistic T is the gap between consecutive item
        # completions, normalised per work unit of the completing item —
        # i.e. the reciprocal throughput of the whole chain.  A window
        # whose *minimum* normalised gap exceeds Z (Algorithm 2's rule)
        # means even the best recent inter-arrival is too slow: the stream
        # is throttled by a degraded stage, so the skeleton adapts.  With
        # ``chunk_size=k`` the gaps of k consecutive completions fold into
        # one sample (total gap over total cost), mirroring the fan's
        # one-sample-per-chunk statistic.
        last_completion: Optional[float] = None
        group_gaps: List[float] = []
        group_costs: List[float] = []

        def flush_group() -> None:
            if not group_gaps:
                return
            window.record_unit(sum(group_gaps) / sum(group_costs))
            group_gaps.clear()
            group_costs.clear()

        def collect(task: Task, outcome) -> None:
            """Fold one streamed item into the window and the report."""
            nonlocal last_completion, mapping, stages
            if getattr(outcome, "lost", False):
                # A node failed while holding the item mid-chain: the item
                # re-enters the stream.  A node that is genuinely dead
                # leaves the mapping; one that stays "available" while
                # losing everything it is given is bounded by the cap.
                pending.appendleft(task)
                self._note_lost(report, 1, lost_task_limit)
                at = max(window.finished, getattr(outcome, "finished", 0.0))
                if any(not backend.is_available(n, at)
                       for n in mapping.all_nodes()):
                    mapping = build_plan_mapping(
                        chain,
                        engine.alive_pool(
                            at, minimum=chain.num_stages,
                            insufficient_message=(
                                "not enough live nodes to host every "
                                "chain stage"
                            ),
                        ),
                        sample_item, replicate=replicate,
                    )
                    stages = self._mapped_stages(chain, mapping)
                    report.chosen_history.append(mapping.all_nodes())
                return
            result = TaskResult(
                task_id=task.task_id, output=outcome.output,
                node_id=outcome.final_node, submitted=outcome.submitted,
                started=outcome.submitted, finished=outcome.finished,
                stage=chain.num_stages - 1,
            )
            report.results.append(result)
            window.span(result.submitted, result.finished)
            if last_completion is not None:
                gap = max(result.finished - last_completion, 0.0)
                group_gaps.append(gap)
                group_costs.append(
                    outcome.item_cost if outcome.item_cost > 0 else 1.0
                )
                if len(group_gaps) >= chunk_size:
                    flush_group()
            last_completion = result.finished
            for node_id, duration, cost, started in outcome.stage_records:
                window.record_node(
                    node_id,
                    duration / (cost if cost > 0 else 1.0),
                    backend.observe_load(node_id, started),
                )

        while pending:
            window = MonitoringWindow(floor=emit_time)
            inflight: List[Tuple[Task, DispatchHandle]] = []

            for _ in range(min(window_size * chunk_size, len(pending))):
                task = pending.popleft()
                engine.count("tasks.dispatched")
                handle = backend.dispatch_chain(
                    task, stages, master_node=self.master_node,
                    at_time=emit_time,
                )
                emit_time = handle.next_emit
                if backend.eager:
                    collect(task, handle.outcome())
                    yield from cursor.drain()
                else:
                    inflight.append((task, handle))
            # Concurrent chains may finish out of submission order; fold them
            # by completion time so the inter-arrival gap statistic (and its
            # zero clamp) keeps measuring real throughput.
            resolved = [(task, handle.outcome()) for task, handle in inflight]
            for task, outcome in sorted(resolved,
                                        key=lambda pair: pair[1].finished):
                collect(task, outcome)
                yield from cursor.drain()
            # A window's trailing partial chunk still contributes a sample.
            flush_group()

            if window.empty:
                continue

            # --------------------------------------------------- monitoring
            nodes_before = mapping.all_nodes()

            def on_recalibrate() -> None:
                nonlocal mapping, stages, emit_time
                probe_queue: collections.deque = collections.deque([pending[0]])
                # Probes are never counted (consume=False), so the simulator
                # skips the payload entirely; measurement-based backends run
                # the full stage chain to time the node on real work.
                recal = engine.recalibrate(
                    probe_queue, at_time=window.finished,
                    execute_fn=UnitRunner(chain),
                    min_nodes=chain.num_stages, consume=False,
                    min_alive=chain.num_stages,
                    insufficient_message=(
                        "not enough live nodes to host every chain stage"
                    ),
                )
                new_mapping = build_plan_mapping(
                    chain, recal.chosen, sample_item, replicate=replicate,
                )
                emit_time = self._apply_remap(mapping, new_mapping,
                                              max(window.finished,
                                                  recal.finished))
                mapping = new_mapping
                stages = self._mapped_stages(chain, mapping)
                self.tracer.record("adaptation.recalibrate", "chain remapped",
                                   round=engine.round_index,
                                   mapping=mapping.as_dict())

            def on_rerank() -> None:
                nonlocal mapping, stages, emit_time
                ranked = engine.rerank(
                    window, at_time=window.finished,
                    min_nodes=chain.num_stages,
                    min_alive=chain.num_stages,
                    insufficient_message=(
                        "not enough live nodes to host every chain stage"
                    ),
                )
                new_mapping = build_plan_mapping(
                    chain, ranked, sample_item, replicate=replicate,
                )
                emit_time = self._apply_remap(mapping, new_mapping,
                                              window.finished)
                mapping = new_mapping
                stages = self._mapped_stages(chain, mapping)
                self.tracer.record("adaptation.rerank", "chain re-ranked",
                                   round=engine.round_index,
                                   mapping=mapping.as_dict())

            engine.observe_window(
                window,
                has_pending=bool(pending),
                nodes_before=nodes_before,
                nodes_now=lambda: mapping.all_nodes(),
                on_recalibrate=on_recalibrate,
                on_rerank=on_rerank,
            )
            yield from cursor.drain()

        report = engine.finish()
        self.tracer.record("phase.execution.end", "chain execution finished",
                           results=len(report.results),
                           recalibrations=report.recalibrations)
        return report

    # --------------------------------------------------- nested fan walking
    def _nested_stream(self, plan: FanPlan, tasks: Deque[Task],
                       calibration: CalibrationReport, start: float,
                       ) -> Iterator[TaskResult]:
        """A fan whose unit is a chained sub-plan (farm of pipelines).

        Units stay independent and demand for them stays with the fan,
        but each unit executes *as a chain*: every stage picks the
        earliest-free node among the currently chosen set, so the
        inner pipeline's stages spread over the grid instead of
        collapsing onto whichever node the farm picked.  The decision
        statistic is fan-shaped (one normalised whole-unit time per
        item); per-stage node times still feed the re-ranking path.
        """
        exec_cfg = self.config.execution
        engine = self.engine
        backend = self.backend
        chain = plan.body
        assert isinstance(chain, ChainPlan)

        chosen = self._workers_from(calibration.chosen)
        report = engine.begin(calibration, start)
        report.chosen_history.append(list(chosen))
        cursor = ResultCursor(report)

        emit_time = start
        lost_task_limit = self._lost_task_limit(len(tasks))

        def pick_earliest_free(free_at):
            # Every stage shares one pick: the earliest-free live node of
            # the *current* chosen set (adaptation rebinds `chosen`).
            candidates = [n for n in chosen
                          if backend.is_available(n, free_at(n))]
            if not candidates:
                candidates = list(chosen)
            return min(candidates, key=lambda n: (free_at(n), n))

        stages = lower_chain_stages(chain, lambda _index: pick_earliest_free)

        self.tracer.record("phase.execution.start",
                           "nested fan execution started",
                           chosen=list(chosen), tasks=len(tasks),
                           stages=chain.num_stages)

        def resolve(handle: DispatchHandle):
            """A unit's outcome, with mid-chain node death folded to a loss.

            The pre-IR composition collapsed onto a farm whose per-task
            dispatches resolved as *lost* when a worker died; chain
            dispatch surfaces the same death as a ``GridError`` instead
            (the process and cluster backends raise it mid-stage).
            Converting it here preserves the fan's fault tolerance: the
            unit re-enters the queue under the lost-task cap rather
            than aborting the run.  Payload exceptions propagate as
            themselves, exactly like farm dispatch.
            """
            try:
                return handle.outcome()
            except GridError:
                return None

        def collect(task: Task, outcome) -> None:
            """Fold one finished unit (a whole chain walk) into the window."""
            nonlocal chosen
            if outcome is None or getattr(outcome, "lost", False):
                tasks.appendleft(task)
                self._note_lost(report, 1, lost_task_limit)
                at = max(window.finished, getattr(outcome, "finished", 0.0))
                alive = [n for n in chosen if backend.is_available(n, at)]
                if alive != chosen:
                    chosen = alive or self._recover_pool(at)
                    report.chosen_history.append(list(chosen))
                return
            result = TaskResult(
                task_id=task.task_id, output=outcome.output,
                node_id=outcome.final_node, submitted=outcome.submitted,
                started=outcome.submitted, finished=outcome.finished,
                stage=chain.num_stages - 1,
            )
            report.results.append(result)
            window.span(result.submitted, result.finished)
            records = outcome.stage_records
            total_cost = sum(cost if cost > 0 else 1.0
                             for _, _, cost, _ in records)
            total_duration = sum(duration for _, duration, _, _ in records)
            window.record_unit(
                total_duration / (total_cost if total_cost > 0 else 1.0)
            )
            for node_id, duration, cost, started in records:
                window.record_node(
                    node_id,
                    duration / (cost if cost > 0 else 1.0),
                    backend.observe_load(node_id, started),
                )

        while tasks:
            window_size = max(1, exec_cfg.monitor_interval or len(chosen))
            window = MonitoringWindow(floor=emit_time)
            inflight: List[Tuple[Task, DispatchHandle]] = []

            for _ in range(min(window_size, len(tasks))):
                task = tasks.popleft()
                engine.count("tasks.dispatched")
                try:
                    handle = backend.dispatch_chain(
                        task, stages, master_node=self.master_node,
                        at_time=emit_time,
                    )
                except GridError:
                    # Dead at dispatch: the unit never left the master.
                    collect(task, None)
                    continue
                emit_time = handle.next_emit
                if backend.eager:
                    collect(task, resolve(handle))
                    yield from cursor.drain()
                else:
                    inflight.append((task, handle))
            resolved = [(task, resolve(handle)) for task, handle in inflight]
            # Lost units first (they carry no completion time), then by
            # completion order.
            for task, outcome in sorted(
                    resolved,
                    key=lambda pair: (pair[1].finished if pair[1] is not None
                                      else float("-inf"))):
                collect(task, outcome)
                yield from cursor.drain()

            if window.empty:
                continue

            # --------------------------------------------------- monitoring
            chosen_before = list(chosen)

            def on_recalibrate() -> None:
                nonlocal chosen, emit_time
                recal = engine.recalibrate(
                    tasks, at_time=window.finished,
                    execute_fn=UnitRunner(chain),
                    min_nodes=self.min_nodes, consume=True,
                )
                report.results.extend(recal.results)
                chosen = self._workers_from(recal.chosen)
                emit_time = max(emit_time, recal.finished)
                window.span(finished=recal.finished)
                self.tracer.record("adaptation.recalibrate",
                                   "nested fan recalibrated",
                                   round=engine.round_index,
                                   chosen=list(chosen))

            def on_rerank() -> None:
                nonlocal chosen
                chosen = self._workers_from(
                    engine.rerank(window, at_time=window.finished,
                                  min_nodes=self.min_nodes)
                )
                self.tracer.record("adaptation.rerank", "nested fan re-ranked",
                                   round=engine.round_index,
                                   chosen=list(chosen))

            engine.observe_window(
                window,
                has_pending=bool(tasks),
                nodes_before=chosen_before,
                nodes_now=lambda: list(chosen),
                on_recalibrate=on_recalibrate,
                on_rerank=on_rerank,
            )
            yield from cursor.drain()

        report = engine.finish()
        self.tracer.record("phase.execution.end",
                           "nested fan execution finished",
                           results=len(report.results),
                           recalibrations=report.recalibrations)
        return report

    # ------------------------------------------------------------ internals
    def _resolve_chunk(self, plan_chunk: Optional[int],
                       calibration: CalibrationReport,
                       n_tasks: int, n_workers: int) -> int:
        """The effective dispatch chunk size for this walk.

        A plan-level chunk size wins over the config's; ``"auto"``
        derives one from the calibration sample and the backend's
        measured dispatch overhead (see :func:`resolve_auto_chunk`).
        """
        requested = plan_chunk or self.config.execution.chunk_size
        if requested == "auto":
            chunk = resolve_auto_chunk(self.backend, calibration,
                                       n_tasks, n_workers)
            self.tracer.record("execution.auto_chunk",
                               "chunk size derived from dispatch overhead",
                               chunk_size=chunk, tasks=n_tasks,
                               workers=n_workers)
            return chunk
        return max(1, int(requested))

    def _lost_task_limit(self, pending: int) -> int:
        """Total-loss cap turning a livelock into a clean error.

        A node that loses every task it is given (a worker that can
        never run, e.g. persistently failing to spawn) would otherwise
        be re-dispatched forever on backends whose availability query
        cannot see the breakage; cap total losses so a livelock becomes
        an error — uniformly for fans and chains.
        """
        return max(64, 8 * (pending + len(self.pool)))

    def _note_lost(self, report: ExecutionReport, count: int,
                   limit: int) -> None:
        report.lost_tasks += count
        self.engine.count("tasks.requeued", count)
        self.tracer.record("task.requeue", "lost tasks re-enqueued",
                           count=count, total_lost=report.lost_tasks,
                           limit=limit)
        if report.lost_tasks > limit:
            raise ExecutionError(
                f"{report.lost_tasks} tasks lost (limit {limit}): a node "
                "appears to lose every task it is given; aborting instead "
                "of thrashing"
            )

    def _workers_from(self, chosen: Sequence[str]) -> List[str]:
        """The worker set derived from a chosen-node list.

        The master only computes when configured to (or when it is the
        only chosen node).
        """
        workers = list(chosen)
        if not self.config.execution.master_computes and len(workers) > 1:
            workers = [n for n in workers if n != self.master_node] or workers
        if not workers:
            raise ExecutionError("calibration selected an empty worker set")
        return workers

    def _recover_pool(self, time: float) -> List[str]:
        """Rebuild the worker set from whatever pool nodes are still alive."""
        alive = self.engine.alive_pool(time)
        self.engine.count("adaptation.failovers")
        self.tracer.record("adaptation.failover",
                           "rebuilt worker set after failures",
                           alive=list(alive))
        return self._workers_from(alive)

    def _dispatch(self, chunk: Sequence[Task],
                  execute_fn: Callable[[Task], object],
                  chosen: Sequence[str],
                  master_free: float) -> Optional[DispatchHandle]:
        """Send one chunk of tasks to the earliest-free chosen worker.

        Returns ``None`` when no chosen worker is available.
        """
        backend = self.backend
        ready = {}
        for node in chosen:
            free_at = max(backend.node_free_at(node), master_free)
            if backend.is_available(node, free_at):
                ready[node] = free_at
        if not ready:
            return None
        node = self.scheduler.next_node(ready)
        self.engine.count("tasks.dispatched", len(chunk))
        return backend.dispatch_chunk(
            chunk, node, execute_fn, master_node=self.master_node,
            at_time=ready[node], check_loss=True,
        )

    def _mapped_stages(self, chain: ChainPlan,
                       mapping: StageMapping) -> List[ChainStage]:
        """Lower the current stage mapping onto backend chain stages."""
        return lower_chain_stages(
            chain,
            lambda index: (lambda free_at, _i=index, _m=mapping:
                           _m.pick_node(_i, free_at)),
        )

    def _apply_remap(self, old: StageMapping, new: StageMapping,
                     at_time: float) -> float:
        """Charge state migration for every stage whose node changed.

        Returns the time at which the stream may resume.
        """
        self.engine.count("adaptation.remaps")
        migration_bytes = self.config.execution.migration_bytes
        resume = at_time
        if migration_bytes <= 0:
            return resume
        for stage, new_nodes in new.as_dict().items():
            old_nodes = old.as_dict().get(stage, [])
            if old_nodes and new_nodes and old_nodes[0] != new_nodes[0]:
                transfer = self.backend.transfer(old_nodes[0], new_nodes[0],
                                                 migration_bytes,
                                                 at_time=at_time)
                resume = max(resume, transfer.finished)
        return resume
