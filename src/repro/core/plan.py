"""The execution-plan IR: what every skeleton lowers onto.

The paper's claim is that *one* adaptive methodology serves all
commonly-used skeletons.  Historically this runtime still hardwired two
near-duplicate adaptive loops (farm and pipeline) with drifting feature
sets; compositions could only run by collapsing onto one primitive.  The
plan IR is the fix: every skeleton's :meth:`~repro.skeletons.base.Skeleton.lower`
targets this small intermediate representation, and one executor
(:mod:`repro.core.plan_executor`) walks any plan through the shared
:class:`~repro.core.engine.AdaptiveEngine`.

Two plan forms exist:

* :class:`FanPlan` — independent work units dispatched demand-driven
  (task farm, map, reduce blocks, divide-and-conquer leaves).  Its
  ``body`` is either a plain ``Task -> output`` callable (a leaf fan) or
  a nested :class:`ChainPlan` — a farm whose worker is a whole pipeline,
  dispatched through the backend's *chain* primitive stage-by-stage
  instead of being flattened into one opaque callable.
* :class:`ChainPlan` — an ordered sequence of :class:`PlanStage` steps
  every item streams through (pipeline), with per-stage replication
  flags and plan-level replication/chunking hints.

Plans are pure data plus picklable callables: they cross process and
cluster boundaries exactly like task payloads do.  The reference
semantics of any plan is :func:`walk_sequential`, which the Hypothesis
suite pins against ``Skeleton.run_sequential`` for random skeleton
shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import SkeletonError
from repro.skeletons.base import Task
from repro.utils.awaitables import resolve_awaitable

__all__ = [
    "PlanStage",
    "ChainPlan",
    "FanPlan",
    "Plan",
    "UnitRunner",
    "stage_from_pipeline_stage",
    "walk_sequential",
]


@dataclass(frozen=True)
class _PipelineStageCost:
    """Picklable ``value -> work units`` for one pipeline stage.

    Chain stage ``cost``/``apply`` callables cross a process boundary on
    the process and cluster backends, so they must pickle; a closure
    over the pipeline would not.  Each carries only its own
    :class:`~repro.skeletons.pipeline.Stage` — shipping the whole
    pipeline would serialise every stage's captured state on every
    stage hop.
    """

    stage: Any

    def __call__(self, value):
        return self.stage.cost(value)


@dataclass(frozen=True)
class _PipelineStageApply:
    """Picklable ``value -> value`` for one pipeline stage."""

    stage: Any

    def __call__(self, value):
        return self.stage.fn(value)


@dataclass(frozen=True)
class PlanStage:
    """One chained step of a plan, as the adaptive executor sees it.

    Attributes
    ----------
    apply:
        ``value -> value``; the stage's real computation.  Must be
        picklable for the process/cluster backends.
    cost:
        ``value -> work units`` charged for the stage at the current
        value (drives virtual time and sample normalisation).
    name:
        Label used in traces.
    replicable:
        Whether this stage may be farmed over several nodes (it must
        then be stateless across items).
    """

    apply: Callable[[Any], Any]
    cost: Callable[[Any], float]
    name: str = ""
    replicable: bool = False

    def __post_init__(self) -> None:
        if not callable(self.apply):
            raise SkeletonError("plan stage apply must be callable")
        if not callable(self.cost):
            raise SkeletonError("plan stage cost must be callable")


def stage_from_pipeline_stage(stage) -> PlanStage:
    """Lower one :class:`~repro.skeletons.pipeline.Stage` onto the IR."""
    return PlanStage(
        apply=_PipelineStageApply(stage),
        cost=_PipelineStageCost(stage),
        name=stage.name,
        replicable=stage.replicable,
    )


@dataclass(frozen=True)
class ChainPlan:
    """Items stream through ``stages`` in order (the pipeline shape).

    ``replicate`` and ``chunk_size`` are *hints*: ``None`` defers to the
    run's :class:`~repro.core.parameters.ExecutionConfig`
    (``replicate_stages`` / ``chunk_size``), a concrete value overrides
    it.  ``PipelineOfFarms`` lowers with ``replicate=True`` so spare
    chosen nodes farm its stages without extra configuration.
    """

    stages: Tuple[PlanStage, ...]
    replicate: Optional[bool] = None
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise SkeletonError("a chain plan needs at least one stage")
        for index, stage in enumerate(self.stages):
            if not isinstance(stage, PlanStage):
                raise SkeletonError(
                    f"chain stage {index} is not a PlanStage "
                    f"(got {type(stage).__name__})"
                )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SkeletonError(
                f"chain chunk_size hint must be >= 1, got {self.chunk_size}"
            )

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def unit_cost(self, item: Any) -> float:
        """Total work of threading ``item`` through every stage.

        Mirrors ``Pipeline.total_cost``: the payload (and hence its
        cost) may change at every stage, so the item is actually
        threaded through.
        """
        total = 0.0
        value = item
        for stage in self.stages:
            total += float(stage.cost(value))
            value = resolve_awaitable(stage.apply(value))
        return total

    def run_unit(self, item: Any) -> Any:
        """Thread one item through every stage (real computation)."""
        value = item
        for stage in self.stages:
            value = resolve_awaitable(stage.apply(value))
        return value


@dataclass(frozen=True)
class FanPlan:
    """Independent work units dispatched demand-driven (the farm shape).

    Attributes
    ----------
    body:
        How one unit executes: a picklable ``Task -> output`` callable
        (leaf fan), or a nested :class:`ChainPlan` — each unit is then
        dispatched through the backend's chain primitive, stage by
        stage, over the currently chosen nodes.
    min_nodes:
        Structural minimum node count of the originating skeleton.
    chunk_size:
        Chunking hint; ``None`` defers to
        ``ExecutionConfig.chunk_size``.  Ignored for nested bodies
        (chains dispatch item-at-a-time).
    """

    body: Union[Callable[[Task], Any], ChainPlan]
    min_nodes: int = 1
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.body, ChainPlan) and not callable(self.body):
            raise SkeletonError(
                "fan body must be a callable or a nested ChainPlan "
                f"(got {type(self.body).__name__})"
            )
        if self.min_nodes < 1:
            raise SkeletonError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SkeletonError(
                f"fan chunk_size hint must be >= 1, got {self.chunk_size}"
            )

    @property
    def nested(self) -> bool:
        """Whether each unit is itself a chained sub-plan."""
        return isinstance(self.body, ChainPlan)

    def run_unit(self, task: Task) -> Any:
        """Execute one unit (calibration probes, the reference walk).

        A leaf body's return value is handed back raw — a coroutine
        worker stays a coroutine so the asyncio backend can await it
        natively; sequential contexts resolve it themselves (as
        :func:`walk_sequential` does).
        """
        if self.nested:
            return self.body.run_unit(task.payload)
        return self.body(task)


#: A plan is one of the two shapes; nesting happens through ``FanPlan.body``.
Plan = Union[FanPlan, ChainPlan]


@dataclass(frozen=True)
class UnitRunner:
    """Picklable whole-unit payload (``Task -> output``) for any plan.

    Recalibration probes and calibration samples dispatch this: on the
    simulator only its cost matters, on measurement backends it runs the
    real unit to time the node on real work.
    """

    plan: Plan

    def __call__(self, task: Task) -> Any:
        if isinstance(self.plan, ChainPlan):
            return self.plan.run_unit(task.payload)
        return self.plan.run_unit(task)


def walk_sequential(plan: Plan, tasks: Sequence[Task]) -> List[Any]:
    """Reference semantics of ``plan``: per-task outputs, in task order.

    This is the IR-level analogue of ``Skeleton.run_sequential`` (minus
    the skeleton's own output assembly): every executor, adaptive or
    static, on any backend, must produce exactly these outputs for
    these tasks.
    """
    if isinstance(plan, ChainPlan):
        return [plan.run_unit(task.payload) for task in tasks]
    if isinstance(plan, FanPlan):
        return [resolve_awaitable(plan.run_unit(task)) for task in tasks]
    raise SkeletonError(f"not an execution plan: {type(plan).__name__}")
