"""Configuration objects for the GRASP phases.

"The programmer needs to parameterise the API calls to GRASP.  This
parametrisation is crucial to stamp the algorithmic skeleton with correct
meaning for the given problem instance" (paper, Programming phase).  These
dataclasses are that parameterisation: how to calibrate (Algorithm 1), how to
monitor and adapt (Algorithm 2), and how the runtime as a whole behaves.

Every config validates itself on construction so misconfigured experiment
sweeps fail fast with a named parameter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.ranking import RankingMode
from repro.exceptions import ConfigurationError
from repro.monitor.thresholds import PerformanceThreshold, RelativeThreshold
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "SelectionPolicy",
    "AdaptationAction",
    "CalibrationConfig",
    "ExecutionConfig",
    "GraspConfig",
]


class SelectionPolicy(enum.Enum):
    """How the calibration phase chooses the fittest nodes.

    * ``COUNT`` — keep exactly ``select_count`` nodes.
    * ``FRACTION`` — keep the best ``select_fraction`` of the pool.
    * ``CUTOFF`` — keep every node whose predicted per-unit time is within
      ``cutoff_ratio`` of the best node's.
    """

    COUNT = "count"
    FRACTION = "fraction"
    CUTOFF = "cutoff"


class AdaptationAction(enum.Enum):
    """What the execution phase does when the threshold is breached.

    The paper: "the skeleton takes action, e.g., feeding back to the
    calibration phase and/or modifying the task scheduling according to the
    inherent properties of the skeleton in hand."

    * ``RECALIBRATE`` — re-run Algorithm 1 over the full node pool and adopt
      the new fittest set (the feedback edge of Figure 1).
    * ``RERANK`` — re-rank using monitoring history only (no fresh probes)
      and adjust the chosen set; cheaper, less informed.
    * ``NONE`` — record the breach but take no action (ablation baseline).
    """

    RECALIBRATE = "recalibrate"
    RERANK = "rerank"
    NONE = "none"


@dataclass
class CalibrationConfig:
    """Parameters of Algorithm 1 (the calibration phase).

    Attributes
    ----------
    sample_per_node:
        How many sample tasks each allocated node executes.  The paper runs
        "a sample of the data on every allocated node"; the sample results
        count toward the job.
    ranking:
        Time-only or statistical (univariate / multivariate) ranking.
    selection:
        Node-selection policy (see :class:`SelectionPolicy`).
    select_count / select_fraction / cutoff_ratio:
        Parameters of the respective selection policies.
    min_nodes:
        Never select fewer nodes than this (the skeleton's own minimum is
        also enforced by the runtime).
    """

    sample_per_node: int = 1
    ranking: RankingMode = RankingMode.TIME_ONLY
    selection: SelectionPolicy = SelectionPolicy.CUTOFF
    select_count: Optional[int] = None
    select_fraction: float = 1.0
    cutoff_ratio: float = 4.0
    min_nodes: int = 1

    def __post_init__(self) -> None:
        if self.sample_per_node < 1:
            raise ConfigurationError(
                f"sample_per_node must be >= 1, got {self.sample_per_node}"
            )
        if not isinstance(self.ranking, RankingMode):
            raise ConfigurationError("ranking must be a RankingMode")
        if not isinstance(self.selection, SelectionPolicy):
            raise ConfigurationError("selection must be a SelectionPolicy")
        if self.selection is SelectionPolicy.COUNT:
            if self.select_count is None or self.select_count < 1:
                raise ConfigurationError(
                    "selection=COUNT requires select_count >= 1"
                )
        check_in_range(self.select_fraction, "select_fraction", 0.0, 1.0)
        if self.select_fraction == 0.0:
            raise ConfigurationError("select_fraction must be > 0")
        check_positive(self.cutoff_ratio, "cutoff_ratio")
        if self.cutoff_ratio < 1.0:
            raise ConfigurationError(
                f"cutoff_ratio must be >= 1, got {self.cutoff_ratio}"
            )
        if self.min_nodes < 1:
            raise ConfigurationError(f"min_nodes must be >= 1, got {self.min_nodes}")


@dataclass
class ExecutionConfig:
    """Parameters of Algorithm 2 (the execution phase).

    Attributes
    ----------
    threshold_factor:
        When no explicit ``threshold`` object is supplied, a
        :class:`~repro.monitor.thresholds.RelativeThreshold` with this factor
        is created and calibrated from the calibration sample: *Z* =
        ``threshold_factor`` × median calibrated per-unit time.
    threshold:
        An explicit threshold object (overrides ``threshold_factor``).
    monitor_interval:
        Number of completed monitoring units (tasks for a farm, items for a
        pipeline) per monitoring round.  ``0`` means one round per
        ``len(chosen)`` completions, the paper's "execute F over Chosen
        nodes concurrently" granularity.
    adaptation:
        What to do on a breach (see :class:`AdaptationAction`).
    max_recalibrations:
        Upper bound on feedback-edge traversals, protecting against
        thrashing when the grid is persistently hostile.
    chunk_size:
        Number of farm tasks batched into one backend dispatch.  ``1``
        (the default) preserves task-at-a-time self-scheduling; larger
        chunks amortise per-dispatch IPC overhead on the process backend
        (the monitor then judges per-chunk normalised times).
        ``"auto"`` derives the size at execution time from the
        calibration sample's mean task cost against the backend's
        measured per-dispatch overhead (see
        :func:`~repro.core.plan_executor.resolve_auto_chunk`), so cheap
        tasks get batched and expensive tasks keep self-scheduling.
    shm_threshold:
        Byte threshold of the shared-memory data plane: payloads and
        results probing at or above it travel as segment descriptors
        instead of inline pickles on backends that support it (process,
        localhost cluster).  ``None`` (the default) keeps each backend's
        own default (64KiB); ``0`` disables spilling entirely, restoring
        the classic inline path bit-for-bit.
    master_computes:
        Whether the master/monitor node also executes tasks.
    replicate_stages:
        For pipelines: allow replicable stages to be farmed over the spare
        chosen nodes.
    migration_bytes:
        State size charged when a pipeline stage is remapped to a new node.
    """

    threshold_factor: float = 1.5
    threshold: Optional[PerformanceThreshold] = None
    monitor_interval: int = 0
    adaptation: AdaptationAction = AdaptationAction.RECALIBRATE
    max_recalibrations: int = 16
    chunk_size: Union[int, str] = 1
    shm_threshold: Optional[int] = None
    master_computes: bool = False
    replicate_stages: bool = False
    migration_bytes: int = 0

    def __post_init__(self) -> None:
        check_positive(self.threshold_factor, "threshold_factor")
        if self.threshold is not None and not isinstance(self.threshold, PerformanceThreshold):
            raise ConfigurationError("threshold must be a PerformanceThreshold")
        check_non_negative(self.monitor_interval, "monitor_interval")
        if isinstance(self.chunk_size, str):
            if self.chunk_size != "auto":
                raise ConfigurationError(
                    f'chunk_size must be an int >= 1 or "auto", '
                    f"got {self.chunk_size!r}"
                )
        elif self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.shm_threshold is not None and self.shm_threshold < 0:
            raise ConfigurationError(
                f"shm_threshold must be >= 0 (0 disables), "
                f"got {self.shm_threshold}"
            )
        if not isinstance(self.adaptation, AdaptationAction):
            raise ConfigurationError("adaptation must be an AdaptationAction")
        check_non_negative(self.max_recalibrations, "max_recalibrations")
        check_non_negative(self.migration_bytes, "migration_bytes")

    def make_threshold(self) -> PerformanceThreshold:
        """The threshold object to use (explicit one, or a relative default)."""
        if self.threshold is not None:
            return self.threshold
        return RelativeThreshold(factor=self.threshold_factor)


@dataclass
class GraspConfig:
    """Top-level runtime configuration: one calibration + one execution config.

    Attributes
    ----------
    trace:
        Whether the run records :class:`~repro.utils.tracing.TraceEvent`
        records at all (disable to strip recording overhead entirely).
    trace_path:
        When set, the run attaches a
        :class:`~repro.utils.tracing.JsonlTraceSink` writing every event
        to this path.  The ``GRASP_TRACE`` environment variable provides
        the same knob without touching code; an explicit ``trace_path``
        wins over the environment.
    trace_max_events:
        In-memory trace ring capacity; ``None`` uses the tracer default
        (:data:`~repro.utils.tracing.DEFAULT_MAX_EVENTS`).  Sinks always
        receive every event regardless of the ring bound.
    metrics:
        Whether the run aggregates counters/gauges/histograms into a
        :class:`~repro.metrics.MetricsRegistry` (disable to strip the
        aggregation overhead entirely; the trace knobs are independent).
    metrics_path:
        When set, the run dumps the registry's final snapshot as JSON to
        this path (readable by ``python -m repro.metrics show`` and
        ``python -m repro.trace regress``).  The ``GRASP_METRICS``
        environment variable provides the same knob without touching
        code; an explicit ``metrics_path`` wins over the environment.
    """

    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    master_node: Optional[str] = None
    trace: bool = True
    trace_path: Optional[str] = None
    trace_max_events: Optional[int] = None
    metrics: bool = True
    metrics_path: Optional[str] = None
    name: str = "grasp"

    def __post_init__(self) -> None:
        if not isinstance(self.calibration, CalibrationConfig):
            raise ConfigurationError("calibration must be a CalibrationConfig")
        if not isinstance(self.execution, ExecutionConfig):
            raise ConfigurationError("execution must be an ExecutionConfig")
        if self.trace_max_events is not None and self.trace_max_events < 1:
            raise ConfigurationError(
                f"trace_max_events must be >= 1, got {self.trace_max_events}"
            )
        if not self.name:
            raise ConfigurationError("name must be non-empty")

    @staticmethod
    def adaptive(threshold_factor: float = 1.5,
                 ranking: RankingMode = RankingMode.TIME_ONLY) -> "GraspConfig":
        """The standard adaptive configuration used by the experiments."""
        return GraspConfig(
            calibration=CalibrationConfig(ranking=ranking),
            execution=ExecutionConfig(threshold_factor=threshold_factor,
                                      adaptation=AdaptationAction.RECALIBRATE),
        )

    @staticmethod
    def non_adaptive() -> "GraspConfig":
        """Calibrate once, never adapt (ablation: Algorithm 1 without the loop)."""
        return GraspConfig(
            calibration=CalibrationConfig(),
            execution=ExecutionConfig(adaptation=AdaptationAction.NONE),
        )
