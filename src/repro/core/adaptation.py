"""Adaptation decisions for the execution phase.

Algorithm 2 leaves the adaptation *action* open: "the skeleton takes action,
e.g., feeding back to the calibration phase and/or modifying the task
scheduling according to the inherent properties of the skeleton in hand."
This module centralises that decision so both executors (farm and pipeline)
treat breaches identically:

* :func:`decide` — given a breach and the remaining adaptation budget,
  choose an :class:`~repro.core.parameters.AdaptationAction`.
* :func:`rerank_from_history` — the cheap adaptation path: re-rank the node
  pool from recent monitoring history (no fresh probes) and select a new
  chosen set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.calibration import select_fittest
from repro.core.parameters import AdaptationAction, CalibrationConfig
from repro.core.ranking import NodeScore, RankingMode, rank_nodes
from repro.exceptions import ExecutionError

__all__ = ["AdaptationDecision", "decide", "rerank_from_history"]


@dataclass(frozen=True)
class AdaptationDecision:
    """Outcome of a breach decision."""

    action: AdaptationAction
    reason: str


def decide(
    breached: bool,
    configured_action: AdaptationAction,
    recalibrations_so_far: int,
    max_recalibrations: int,
) -> AdaptationDecision:
    """Map a monitoring-round outcome onto an adaptation action.

    No breach → no action.  A breach triggers the configured action unless
    the recalibration budget is exhausted, in which case the breach is
    recorded but no action is taken (prevents thrashing on persistently
    hostile grids).
    """
    if not breached:
        return AdaptationDecision(action=AdaptationAction.NONE, reason="threshold not breached")
    if configured_action is AdaptationAction.NONE:
        return AdaptationDecision(action=AdaptationAction.NONE,
                                  reason="adaptation disabled by configuration")
    if recalibrations_so_far >= max_recalibrations:
        return AdaptationDecision(action=AdaptationAction.NONE,
                                  reason="recalibration budget exhausted")
    return AdaptationDecision(action=configured_action, reason="threshold breached")


def rerank_from_history(
    unit_times_by_node: Dict[str, Sequence[float]],
    loads_by_node: Optional[Dict[str, Sequence[float]]],
    calibration_config: CalibrationConfig,
    min_nodes: int,
    pool: Sequence[str],
) -> List[str]:
    """Re-rank nodes from monitoring history and select a new chosen set.

    Nodes in ``pool`` that have no recent observations (they were not part
    of the current chosen set) are retained with a score equal to the worst
    observed score — they can only re-enter the chosen set when a full
    recalibration probes them, which mirrors the information actually
    available to the monitor.
    """
    observed = {n: list(v) for n, v in unit_times_by_node.items() if len(v) > 0}
    if not observed:
        raise ExecutionError("cannot re-rank without any monitoring observations")
    scores = rank_nodes(
        observed,
        loads={n: list(v) for n, v in (loads_by_node or {}).items() if n in observed},
        mode=RankingMode.TIME_ONLY if calibration_config.ranking is RankingMode.TIME_ONLY
        else calibration_config.ranking,
    )
    worst = max(score.score for score in scores)
    known = {score.node_id for score in scores}
    padded = list(scores)
    for node_id in pool:
        if node_id not in known:
            padded.append(
                NodeScore(node_id=node_id, score=worst * 1.001, mean_time=worst,
                          mean_load=0.0, mean_bandwidth=0.0, observations=0)
            )
    return select_fittest(padded, calibration_config, min_nodes=min_nodes)
