"""The shared adaptation machinery of Algorithm 2.

Historically the farm and pipeline executors each re-implemented the same
calibrate→execute→monitor→adapt loop.  :class:`AdaptiveEngine` is that loop
extracted once: threshold management, monitoring-window bookkeeping, breach
decisions, the recalibration feedback edge, history-based re-ranking, and
the per-round reporting.  The plan executor
(:class:`~repro.core.plan_executor.PlanExecutor`) keeps only what is
genuinely plan-shape-specific — *how* a window of work is produced
(demand-driven dispatch vs. stage streaming) and *how* a new fittest set
is applied (worker set vs. stage remapping) — and hands those in as
callbacks.

The engine talks to the parallel environment exclusively through the
:class:`~repro.backends.base.ExecutionBackend` interface, so the identical
control loop runs in virtual time on the grid simulator and in wall time on
real threads.
"""

from __future__ import annotations

import collections
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.backends import ExecutionBackend, as_backend
from repro.core.adaptation import decide, rerank_from_history
from repro.core.calibration import CalibrationReport, calibrate
from repro.core.execution import ExecutionReport, MonitoringRound
from repro.core.parameters import AdaptationAction, GraspConfig
from repro.exceptions import ExecutionError
from repro.monitor.monitor import ResourceMonitor
from repro.skeletons.base import Task
from repro.utils.tracing import Tracer

__all__ = ["MonitoringWindow", "AdaptiveEngine", "ResultCursor",
           "drain_stream"]


def drain_stream(stream):
    """Exhaust an ``as_completed`` generator; return its final report.

    The blocking ``run()`` form of both executors: iterate the stream for
    its side effects and surface the generator's return value (the
    :class:`~repro.core.execution.ExecutionReport`).
    """
    while True:
        try:
            next(stream)
        except StopIteration as stop:
            return stop.value


class ResultCursor:
    """Yields each :class:`~repro.skeletons.base.TaskResult` appended to a
    report exactly once.

    The streaming plan walks (``PlanExecutor.as_completed``, behind the
    farm/pipeline shims) interleave dispatch, monitoring and
    adaptation; results enter ``report.results`` at several of those points
    (window collection, recalibration probes that consume pending tasks).
    A cursor over the report lets the stream surface every new result right
    after the step that produced it, without threading emit bookkeeping
    through the adaptation callbacks.
    """

    def __init__(self, report: ExecutionReport):
        self._report = report
        self._emitted = 0

    def drain(self):
        """Iterate over results appended since the previous drain."""
        results = self._report.results
        while self._emitted < len(results):
            result = results[self._emitted]
            self._emitted += 1
            yield result


class MonitoringWindow:
    """Accumulator for one monitoring round of Algorithm 2.

    Collects the normalised times the monitor judges (``unit_times``), the
    per-node observations the re-ranking path consumes, and the virtual/wall
    time extent of the monitored work.
    """

    def __init__(self, floor: float):
        self.unit_times: List[float] = []
        self.node_times: Dict[str, List[float]] = collections.defaultdict(list)
        self.node_loads: Dict[str, List[float]] = collections.defaultdict(list)
        self.started: float = float("inf")
        self.finished: float = floor

    @property
    def empty(self) -> bool:
        """Whether the monitor collected nothing this round."""
        return not self.unit_times

    def record_unit(self, unit_time: float) -> None:
        """Add one normalised time to the round's decision statistic."""
        self.unit_times.append(unit_time)

    def record_node(self, node_id: str, unit_time: float, load: float) -> None:
        """Add one per-node observation (feeds the re-ranking path)."""
        self.node_times[node_id].append(unit_time)
        self.node_loads[node_id].append(load)

    def record_chunk(self, node_id: str, outcomes: Sequence,
                     costs: Sequence[float]) -> float:
        """Fold one chunked dispatch into the round as a *single* sample.

        The chunk's normalised time is its total compute duration over the
        total cost of its tasks — one decision-statistic entry per chunk,
        so the threshold judges the same quantity whatever the batching.
        Returns the recorded unit time.
        """
        total_cost = sum(costs)
        unit_time = (sum(o.duration for o in outcomes)
                     / (total_cost if total_cost > 0 else 1.0))
        self.record_unit(unit_time)
        self.record_node(node_id, unit_time,
                         max(o.load for o in outcomes))
        for outcome in outcomes:
            self.span(outcome.submitted, outcome.finished)
        return unit_time

    def span(self, started: Optional[float] = None,
             finished: Optional[float] = None) -> None:
        """Extend the window's time extent."""
        if started is not None:
            self.started = min(self.started, started)
        if finished is not None:
            self.finished = max(self.finished, finished)


class AdaptiveEngine:
    """Backend-agnostic monitoring/adaptation loop shared by all executors."""

    def __init__(
        self,
        backend: ExecutionBackend,
        config: GraspConfig,
        master_node: str,
        pool: Sequence[str],
        monitor: Optional[ResourceMonitor] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.backend = as_backend(backend)
        self.config = config
        self.master_node = master_node
        self.pool = list(pool)
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.threshold = None
        self.report: Optional[ExecutionReport] = None
        self.recalibrations = 0
        self.round_index = 0

    @property
    def metrics(self):
        """The backend's metrics registry (read per use — the compiled
        program may adopt a registry onto the backend after this engine
        was built), or None when metrics are disabled."""
        return getattr(self.backend, "metrics", None)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump an engine-level counter when metrics are enabled."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------ setup
    def begin(self, calibration: CalibrationReport, start: float) -> ExecutionReport:
        """Arm the threshold from ``calibration`` and open the report."""
        self.threshold = self.config.execution.make_threshold()
        self.threshold.calibrate(calibration.unit_times())
        self.recalibrations = 0
        self.round_index = 0
        self.report = ExecutionReport(started=start, finished=start)
        return self.report

    # ------------------------------------------------------------------ pools
    def alive_pool(self, time: float, minimum: int = 1,
                   insufficient_message: str = "every node in the pool has failed",
                   ) -> List[str]:
        """Pool nodes available at ``time``; raise when fewer than ``minimum``."""
        alive = [n for n in self.pool if self.backend.is_available(n, time)]
        if len(alive) < max(1, minimum):
            raise ExecutionError(insufficient_message)
        return alive

    # ------------------------------------------------------------- monitoring
    def observe_window(
        self,
        window: MonitoringWindow,
        *,
        has_pending: bool,
        nodes_before: Sequence[str],
        nodes_now: Callable[[], List[str]],
        on_recalibrate: Callable[[], None],
        on_rerank: Callable[[], None],
    ) -> MonitoringRound:
        """Judge one monitoring window and adapt on a breach (Algorithm 2).

        ``nodes_before`` must be snapshotted before calling; the adaptation
        callbacks mutate the executor's chosen set / stage mapping and may
        extend ``window.finished`` (the farm counts recalibration time into
        the round's extent).
        """
        assert self.report is not None and self.threshold is not None, \
            "begin() must be called before observe_window()"
        exec_cfg = self.config.execution
        self.backend.advance_to(window.finished)
        breached = self.threshold.breached(window.unit_times)
        z_value = self.threshold.value()
        self.threshold.observe(window.unit_times)
        decision = decide(breached, exec_cfg.adaptation, self.recalibrations,
                          exec_cfg.max_recalibrations)
        self.count("adaptation.windows")
        if breached:
            self.count("adaptation.breaches")

        # The window-close event carries the observed-vs-threshold numbers
        # so a recorded trace shows *why* each round did (or did not)
        # adapt.  Recorded before the adaptation callbacks run, so the
        # resulting adaptation.* events follow it in seq order.
        unit_times = window.unit_times
        self.tracer.record(
            "adaptation.window", "monitoring window judged",
            round=self.round_index,
            samples=len(unit_times),
            observed_min=min(unit_times) if unit_times else None,
            observed_mean=(sum(unit_times) / len(unit_times)
                           if unit_times else None),
            threshold=z_value,
            breached=breached,
            action=decision.action.name if breached else None,
            pending=has_pending,
        )

        if decision.action is AdaptationAction.RECALIBRATE and has_pending:
            on_recalibrate()
            self.recalibrations += 1
            self.count("adaptation.recalibrations")
        elif decision.action is AdaptationAction.RERANK and has_pending:
            on_rerank()
            self.recalibrations += 1
            self.count("adaptation.reranks")

        nodes_after = list(nodes_now())
        if nodes_after != list(nodes_before):
            self.report.chosen_history.append(list(nodes_after))

        round_record = MonitoringRound(
            index=self.round_index,
            started=window.started if window.started != float("inf") else window.finished,
            finished=window.finished,
            unit_times=window.unit_times,
            threshold=z_value,
            breached=breached,
            action=decision.action if breached else None,
            chosen_before=list(nodes_before),
            chosen_after=nodes_after,
        )
        self.report.rounds.append(round_record)
        self.round_index += 1
        return round_record

    # --------------------------------------------------------- feedback edge
    def recalibrate(
        self,
        tasks: Deque[Task],
        *,
        at_time: float,
        execute_fn: Callable[[Task], object],
        min_nodes: int,
        consume: bool,
        min_alive: int = 1,
        insufficient_message: str = "every node in the pool has failed",
    ) -> CalibrationReport:
        """Traverse the feedback edge: re-run Algorithm 1 over the live pool.

        Appends the report and re-arms the threshold from the fresh sample;
        the caller applies the new fittest set to its skeleton.
        """
        assert self.report is not None and self.threshold is not None
        recal = calibrate(
            tasks=tasks,
            pool=self.alive_pool(at_time, minimum=min_alive,
                                 insufficient_message=insufficient_message),
            execute_fn=execute_fn,
            config=self.config.calibration,
            master_node=self.master_node,
            min_nodes=min_nodes,
            at_time=at_time,
            monitor=self.monitor,
            consume=consume,
            tracer=self.tracer,
            backend=self.backend,
        )
        self.report.recalibration_reports.append(recal)
        self.threshold.calibrate(recal.unit_times())
        return recal

    def rerank(
        self,
        window: MonitoringWindow,
        *,
        at_time: float,
        min_nodes: int,
        min_alive: int = 1,
        insufficient_message: str = "every node in the pool has failed",
    ) -> List[str]:
        """The cheap adaptation path: re-rank from the window's history."""
        return rerank_from_history(
            window.node_times, window.node_loads, self.config.calibration,
            min_nodes=min_nodes,
            pool=self.alive_pool(at_time, minimum=min_alive,
                                 insufficient_message=insufficient_message),
        )

    # --------------------------------------------------------------- wrap-up
    def finish(self) -> ExecutionReport:
        """Close the report.

        ``finished`` accounts for recalibration reports as well as task
        results: a trailing recalibration's probe work can outlast the last
        counted result (its uncounted probes still occupy the grid), and a
        pipeline probe recalibration produces no results at all.
        """
        assert self.report is not None
        report = self.report
        report.recalibrations = self.recalibrations
        report.finished = max(
            [report.started]
            + [r.finished for r in report.results]
            + [rep.finished for rep in report.recalibration_reports]
        )
        if report.results:
            self.count("tasks.completed", len(report.results))
        if report.lost_tasks:
            self.count("tasks.lost", report.lost_tasks)
        return report
