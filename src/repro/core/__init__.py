"""The GRASP methodology (the paper's primary contribution).

GRASP instruments a structured parallel program with the intrinsic
properties of its skeleton so that it can adapt to dynamic grid conditions.
The package mirrors the paper's four phases:

* **Programming** — :class:`repro.core.program.SkeletalProgram` binds a
  skeleton to its inputs and parameters.
* **Compilation** — :class:`repro.core.compilation.CompiledProgram` links
  the program with the parallel environment (an
  :class:`~repro.backends.base.ExecutionBackend`: the virtual-time grid
  simulator or real OS threads, plus the communicator) and the
  resource-monitoring library.
* **Calibration** — :func:`repro.core.calibration.calibrate` implements
  Algorithm 1: execute a sample on every allocated node, rank nodes
  (time-only or statistically) and select the fittest.
* **Execution** — :class:`repro.core.engine.AdaptiveEngine` implements
  Algorithm 2 once for every skeleton: run on the chosen nodes, monitor
  execution times against the performance threshold *Z* and adapt
  (recalibrate / reschedule) when it is breached.  Every skeleton lowers
  onto the execution-plan IR (:mod:`repro.core.plan`) and one
  :class:`repro.core.plan_executor.PlanExecutor` drives the engine
  through the backend interface for any plan shape (the historical farm
  and pipeline executors remain as shims over it).

The :class:`repro.core.grasp.Grasp` facade orchestrates all four phases and
is the main entry point of the library.
"""

from __future__ import annotations

from repro.core.phases import Phase, PhaseRecord, PhaseTimeline
from repro.core.parameters import (
    AdaptationAction,
    CalibrationConfig,
    ExecutionConfig,
    GraspConfig,
    SelectionPolicy,
)
from repro.core.ranking import NodeScore, RankingMode, rank_nodes
from repro.core.calibration import CalibrationObservation, CalibrationReport, calibrate
from repro.core.execution import ExecutionReport, MonitoringRound
from repro.core.engine import AdaptiveEngine, MonitoringWindow
from repro.core.plan import ChainPlan, FanPlan, Plan, PlanStage, walk_sequential
from repro.core.plan_executor import PlanExecutor, StageMapping
from repro.core.program import SkeletalProgram
from repro.core.compilation import CompiledProgram, compile_program
from repro.core.grasp import Grasp, GraspResult, StreamingRun

__all__ = [
    "Phase",
    "PhaseRecord",
    "PhaseTimeline",
    "GraspConfig",
    "CalibrationConfig",
    "ExecutionConfig",
    "SelectionPolicy",
    "AdaptationAction",
    "RankingMode",
    "NodeScore",
    "rank_nodes",
    "CalibrationObservation",
    "CalibrationReport",
    "calibrate",
    "ExecutionReport",
    "MonitoringRound",
    "AdaptiveEngine",
    "MonitoringWindow",
    "Plan",
    "PlanStage",
    "FanPlan",
    "ChainPlan",
    "walk_sequential",
    "PlanExecutor",
    "StageMapping",
    "SkeletalProgram",
    "CompiledProgram",
    "compile_program",
    "Grasp",
    "GraspResult",
    "StreamingRun",
]
