"""The four GRASP phases and their timeline.

Figure 1 of the paper shows the methodology as four phases — programming,
compilation, calibration and execution — with a feedback edge from execution
back to calibration (recalibration).  The :class:`PhaseTimeline` records the
virtual-time intervals spent in each phase during a run, including repeated
calibration intervals caused by adaptation, and is what experiment E1
inspects to reproduce the figure as a machine-checkable trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import GraspError

__all__ = ["Phase", "PhaseRecord", "PhaseTimeline"]


class Phase(enum.Enum):
    """The GRASP methodology phases (Figure 1 of the paper)."""

    PROGRAMMING = "programming"
    COMPILATION = "compilation"
    CALIBRATION = "calibration"
    EXECUTION = "execution"

    @property
    def is_static(self) -> bool:
        """Programming and compilation are static (no runtime feedback)."""
        return self in (Phase.PROGRAMMING, Phase.COMPILATION)

    @property
    def is_dynamic(self) -> bool:
        """Calibration and execution are dynamically determined."""
        return not self.is_static


@dataclass(frozen=True)
class PhaseRecord:
    """One closed interval spent in a phase."""

    phase: Phase
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class PhaseTimeline:
    """Ordered record of the phases a GRASP run moved through."""

    def __init__(self) -> None:
        self._records: List[PhaseRecord] = []
        self._open_phase: Optional[Phase] = None
        self._open_start: float = 0.0

    def enter(self, phase: Phase, time: float) -> None:
        """Enter ``phase`` at virtual ``time``, closing any open phase."""
        if self._open_phase is not None:
            self.leave(time)
        self._open_phase = phase
        self._open_start = float(time)

    def leave(self, time: float) -> None:
        """Close the currently open phase at virtual ``time``."""
        if self._open_phase is None:
            raise GraspError("no phase is currently open")
        if time < self._open_start:
            raise GraspError(
                f"cannot close phase at {time} before it opened at {self._open_start}"
            )
        self._records.append(
            PhaseRecord(phase=self._open_phase, start=self._open_start, end=float(time))
        )
        self._open_phase = None

    @property
    def current(self) -> Optional[Phase]:
        """The open phase, if any."""
        return self._open_phase

    @property
    def records(self) -> List[PhaseRecord]:
        """All closed phase intervals, in chronological order."""
        return list(self._records)

    def sequence(self) -> List[Phase]:
        """The sequence of phases entered (one entry per interval)."""
        return [record.phase for record in self._records]

    def total_duration(self, phase: Phase) -> float:
        """Total virtual time spent in ``phase`` across all intervals."""
        return sum(r.duration for r in self._records if r.phase == phase)

    def visits(self, phase: Phase) -> int:
        """Number of distinct intervals spent in ``phase``."""
        return sum(1 for r in self._records if r.phase == phase)

    def recalibrations(self) -> int:
        """Number of calibration intervals beyond the first (the feedback edge)."""
        return max(0, self.visits(Phase.CALIBRATION) - 1)

    def as_dict(self) -> Dict[str, float]:
        """Total duration per phase name (JSON-friendly)."""
        return {phase.value: self.total_duration(phase) for phase in Phase}

    def validate(self) -> None:
        """Check the structural invariants of a well-formed GRASP run.

        * the first two phases are programming then compilation,
        * calibration precedes the first execution interval, and
        * intervals are contiguous and non-overlapping in time.
        """
        seq = self.sequence()
        if len(seq) < 4:
            raise GraspError(f"incomplete phase timeline: {[p.value for p in seq]}")
        if seq[0] is not Phase.PROGRAMMING or seq[1] is not Phase.COMPILATION:
            raise GraspError("a GRASP run must start with programming then compilation")
        if Phase.CALIBRATION not in seq or Phase.EXECUTION not in seq:
            raise GraspError("a GRASP run must contain calibration and execution phases")
        if seq.index(Phase.CALIBRATION) > seq.index(Phase.EXECUTION):
            raise GraspError("calibration must precede execution")
        for earlier, later in zip(self._records, self._records[1:]):
            if later.start + 1e-9 < earlier.end:
                raise GraspError(
                    f"phase intervals overlap: {earlier} followed by {later}"
                )
