"""Image-processing pipeline workload.

The adaptive-pipeline companion paper motivates the skeleton with streaming
media/image processing.  This workload builds a four-stage pipeline over
small synthetic images (NumPy arrays):

1. **denoise** — 3×3 mean filter,
2. **convolve** — separable Gaussian-like blur (the heavy stage),
3. **threshold** — global threshold against the stage-2 mean,
4. **count** — connected high-intensity pixel count (the light stage).

Stage costs are proportional to the pixel count with per-stage weights, so
the pipeline is intentionally imbalanced — exactly the situation stage
remapping is meant to fix (experiment E5).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.exceptions import WorkloadError
from repro.skeletons.pipeline import Pipeline, Stage
from repro.utils.rng import make_rng

__all__ = ["ImagingWorkload", "make_imaging_pipeline"]

#: Relative compute weight of each stage (per pixel).
STAGE_WEIGHTS = (1.0, 4.0, 0.5, 0.75)
STAGE_NAMES = ("denoise", "convolve", "threshold", "count")


def _denoise(image: np.ndarray) -> np.ndarray:
    """3×3 mean filter with edge replication."""
    padded = np.pad(image, 1, mode="edge")
    out = np.zeros_like(image, dtype=float)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            out += padded[1 + dy:1 + dy + image.shape[0],
                          1 + dx:1 + dx + image.shape[1]]
    return out / 9.0


def _convolve(image: np.ndarray) -> np.ndarray:
    """Separable binomial blur applied twice (the heavy stage)."""
    kernel = np.array([1.0, 4.0, 6.0, 4.0, 1.0])
    kernel = kernel / kernel.sum()
    out = image
    for _ in range(2):
        out = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 1, out)
        out = np.apply_along_axis(lambda c: np.convolve(c, kernel, mode="same"), 0, out)
    return out


def _threshold(image: np.ndarray) -> np.ndarray:
    """Binarise against the image mean."""
    return (image > image.mean()).astype(np.uint8)


def _count(image: np.ndarray) -> int:
    """Count of high pixels (the pipeline's per-item output)."""
    return int(image.sum())


def make_imaging_pipeline(image_side: int = 64) -> Pipeline:
    """Build the four-stage imaging pipeline for ``image_side``² images.

    Stage cost models scale with the pixel count and the per-stage weights,
    so virtual-time behaviour is independent of the host machine.
    """
    if image_side < 4:
        raise WorkloadError(f"image_side must be >= 4, got {image_side}")
    pixels = float(image_side * image_side)

    def cost_for(weight: float):
        return lambda _item: weight * pixels / 1000.0

    stages = [
        Stage(fn=_denoise, cost_model=cost_for(STAGE_WEIGHTS[0]), name=STAGE_NAMES[0],
              replicable=True),
        Stage(fn=_convolve, cost_model=cost_for(STAGE_WEIGHTS[1]), name=STAGE_NAMES[1],
              replicable=True),
        Stage(fn=_threshold, cost_model=cost_for(STAGE_WEIGHTS[2]), name=STAGE_NAMES[2],
              replicable=True),
        Stage(fn=_count, cost_model=cost_for(STAGE_WEIGHTS[3]), name=STAGE_NAMES[3],
              replicable=False),
    ]
    return Pipeline(stages, ordered=True, name="imaging-pipeline")


class ImagingWorkload:
    """A stream of synthetic images plus the pipeline that processes them."""

    def __init__(self, images: int = 64, image_side: int = 64, seed: int = 0):
        if images < 1:
            raise WorkloadError(f"images must be >= 1, got {images}")
        self.images = images
        self.image_side = image_side
        self.seed = seed

    def items(self) -> List[np.ndarray]:
        """The input images (deterministic for a given seed)."""
        rng = make_rng(self.seed, "workload/imaging")
        return [
            rng.uniform(0.0, 255.0, size=(self.image_side, self.image_side))
            for _ in range(self.images)
        ]

    def pipeline(self) -> Pipeline:
        """The processing pipeline sized for this workload's images."""
        return make_imaging_pipeline(self.image_side)

    def expected_outputs(self) -> List[int]:
        """Sequential reference outputs (per-image high-pixel counts)."""
        return self.pipeline().run_sequential(self.items())

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary used by the experiment reports."""
        return {
            "images": self.images,
            "image_side": self.image_side,
            "stages": list(STAGE_NAMES),
            "stage_weights": list(STAGE_WEIGHTS),
        }
