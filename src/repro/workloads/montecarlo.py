"""Monte-Carlo estimation workload.

Monte-Carlo studies are the archetypal farm application for non-dedicated
grids: huge numbers of independent, identically shaped tasks whose results
are combined by simple aggregation.  This workload estimates π by dart
throwing; each task evaluates one batch of samples and the farm's results
are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.exceptions import WorkloadError
from repro.skeletons.taskfarm import TaskFarm
from repro.utils.rng import make_rng

__all__ = ["MonteCarloWorkload", "estimate_pi"]


@dataclass(frozen=True)
class MonteCarloBatch:
    """One batch of dart throws."""

    batch_index: int
    samples: int
    seed: int


@dataclass(frozen=True)
class _SamplesCost:
    """Picklable cost model: samples per batch over samples per work unit."""

    samples_per_work_unit: float

    def __call__(self, batch: MonteCarloBatch) -> float:
        return batch.samples / self.samples_per_work_unit


def estimate_pi(batch: MonteCarloBatch) -> float:
    """Estimate π from one batch (the farm worker)."""
    rng = make_rng(batch.seed, f"montecarlo/{batch.batch_index}")
    xs = rng.random(batch.samples)
    ys = rng.random(batch.samples)
    inside = np.count_nonzero(xs * xs + ys * ys <= 1.0)
    return 4.0 * inside / batch.samples


class MonteCarloWorkload:
    """π estimation split into independent batches.

    Parameters
    ----------
    batches:
        Number of farm tasks.
    samples_per_batch:
        Dart throws per batch.
    samples_per_work_unit:
        Conversion to the simulator's abstract work units.
    seed:
        Base seed; each batch derives its own stream.
    """

    def __init__(self, batches: int = 64, samples_per_batch: int = 10_000,
                 samples_per_work_unit: float = 5_000.0, seed: int = 0):
        if batches < 1:
            raise WorkloadError(f"batches must be >= 1, got {batches}")
        if samples_per_batch < 1:
            raise WorkloadError(f"samples_per_batch must be >= 1, got {samples_per_batch}")
        if samples_per_work_unit <= 0:
            raise WorkloadError("samples_per_work_unit must be > 0")
        self.batches = batches
        self.samples_per_batch = samples_per_batch
        self.samples_per_work_unit = float(samples_per_work_unit)
        self.seed = seed

    def items(self) -> List[MonteCarloBatch]:
        """The batch descriptors."""
        return [
            MonteCarloBatch(batch_index=i, samples=self.samples_per_batch,
                            seed=self.seed)
            for i in range(self.batches)
        ]

    def farm(self) -> TaskFarm:
        """The π-estimation task farm (fully picklable: runs on any backend)."""
        return TaskFarm(
            worker=estimate_pi,
            cost_model=_SamplesCost(self.samples_per_work_unit),
            name="montecarlo-farm",
        )

    def combine(self, estimates: List[float]) -> float:
        """Average per-batch estimates into the final value."""
        if not estimates:
            raise WorkloadError("no estimates to combine")
        return float(np.mean(estimates))

    def expected_value(self) -> float:
        """Sequential reference estimate (same batches, same seeds)."""
        return self.combine([estimate_pi(batch) for batch in self.items()])

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary used by the experiment reports."""
        return {
            "batches": self.batches,
            "samples_per_batch": self.samples_per_batch,
            "total_samples": self.batches * self.samples_per_batch,
        }
