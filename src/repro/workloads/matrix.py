"""Blocked matrix-multiplication workload.

Dense linear algebra was a staple grid workload of the era (the GrADS
project the paper cites built much of its tooling around ScaLAPACK-style
kernels).  Here the product ``C = A · B`` is decomposed into row blocks:
each task multiplies one horizontal block of ``A`` by the full ``B``.  The
task cost follows the classic ``2·m·n·k`` flop count and the payload sizes
follow the actual array sizes, so the compute/communication ratio is set by
the matrix dimensions alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.exceptions import WorkloadError
from repro.skeletons.taskfarm import TaskFarm
from repro.utils.rng import make_rng

__all__ = ["MatrixWorkload", "matmul_blocks"]


@dataclass(frozen=True)
class MatrixBlockItem:
    """One row-block multiplication: ``block · B``."""

    block_index: int
    a_block: np.ndarray
    b: np.ndarray

    @property
    def flops(self) -> float:
        """Floating-point operations of this block product."""
        m, k = self.a_block.shape
        _, n = self.b.shape
        return 2.0 * m * k * n


def matmul_blocks(item: MatrixBlockItem) -> np.ndarray:
    """The real computation: multiply one row block by B."""
    return item.a_block @ item.b


class MatrixWorkload:
    """Row-blocked matrix multiplication as a task farm.

    Parameters
    ----------
    size:
        Dimension of the square matrices ``A`` and ``B``.
    blocks:
        Number of row blocks (= number of farm tasks).
    flops_per_work_unit:
        Conversion between flops and the simulator's abstract work units
        (node speed is expressed in work units per second).
    seed:
        Seed for the random matrices.
    """

    def __init__(self, size: int = 256, blocks: int = 16,
                 flops_per_work_unit: float = 1e7, seed: int = 0):
        if size < 1:
            raise WorkloadError(f"size must be >= 1, got {size}")
        if blocks < 1:
            raise WorkloadError(f"blocks must be >= 1, got {blocks}")
        if blocks > size:
            raise WorkloadError("cannot have more blocks than matrix rows")
        if flops_per_work_unit <= 0:
            raise WorkloadError("flops_per_work_unit must be > 0")
        self.size = size
        self.blocks = blocks
        self.flops_per_work_unit = float(flops_per_work_unit)
        self.seed = seed
        rng = make_rng(seed, "workload/matrix")
        self.a = rng.standard_normal((size, size))
        self.b = rng.standard_normal((size, size))

    # ----------------------------------------------------------------- items
    def items(self) -> List[MatrixBlockItem]:
        """The row-block items, in block order."""
        boundaries = np.linspace(0, self.size, self.blocks + 1).astype(int)
        items: List[MatrixBlockItem] = []
        for index in range(self.blocks):
            lo, hi = boundaries[index], boundaries[index + 1]
            if lo == hi:
                continue
            items.append(
                MatrixBlockItem(block_index=index, a_block=self.a[lo:hi, :], b=self.b)
            )
        return items

    def farm(self) -> TaskFarm:
        """A task farm computing all row-block products."""
        return TaskFarm(
            worker=matmul_blocks,
            cost_model=lambda item: item.flops / self.flops_per_work_unit,
            input_size_model=lambda item: int(item.a_block.nbytes + item.b.nbytes),
            output_size_model=lambda item: int(item.a_block.shape[0] * self.size * 8),
            ordered=True,
            name="matrix-farm",
        )

    # --------------------------------------------------------------- checking
    def reference_product(self) -> np.ndarray:
        """The full product computed directly (for verification)."""
        return self.a @ self.b

    def assemble(self, block_outputs: List[np.ndarray]) -> np.ndarray:
        """Stack per-block outputs (in block order) into the full product."""
        if not block_outputs:
            raise WorkloadError("no block outputs to assemble")
        return np.vstack(block_outputs)

    def verify(self, block_outputs: List[np.ndarray], atol: float = 1e-8) -> bool:
        """Whether the assembled product matches the reference."""
        return bool(np.allclose(self.assemble(block_outputs),
                                self.reference_product(), atol=atol))

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary used by the experiment reports."""
        return {
            "size": self.size,
            "blocks": self.blocks,
            "total_flops": 2.0 * self.size ** 3,
            "flops_per_work_unit": self.flops_per_work_unit,
        }
