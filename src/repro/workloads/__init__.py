"""Experiment workloads.

The companion evaluations drove the GRASP skeletons with real applications
on shared departmental machines.  This package provides synthetic and kernel
workloads with the same experimental *axes* — task-cost distribution,
compute/communication ratio, stage imbalance — so the benchmark harness can
sweep them deterministically:

* :mod:`repro.workloads.synthetic` — parametric tasks (cost distribution and
  payload sizes fully controlled); the workhorse of the sweeps.
* :mod:`repro.workloads.matrix` — blocked matrix-multiplication farm.
* :mod:`repro.workloads.imaging` — image-processing pipeline stages
  (denoise → convolve → threshold → feature count).
* :mod:`repro.workloads.montecarlo` — Monte-Carlo π / integration farm.
* :mod:`repro.workloads.parameter_sweep` — parameter-study farm (the classic
  grid application the paper's introduction motivates).
"""

from __future__ import annotations

from repro.workloads.synthetic import (
    IOBoundSpec,
    IOBoundWorkload,
    SyntheticSpec,
    SyntheticWorkload,
    blocking_fetch_worker,
    fetch_worker,
    spin_worker,
)
from repro.workloads.matrix import MatrixWorkload, matmul_blocks
from repro.workloads.imaging import ImagingWorkload, make_imaging_pipeline
from repro.workloads.montecarlo import MonteCarloWorkload, estimate_pi
from repro.workloads.parameter_sweep import ParameterSweep, sweep_grid

__all__ = [
    "SyntheticSpec",
    "SyntheticWorkload",
    "spin_worker",
    "IOBoundSpec",
    "IOBoundWorkload",
    "fetch_worker",
    "blocking_fetch_worker",
    "MatrixWorkload",
    "matmul_blocks",
    "ImagingWorkload",
    "make_imaging_pipeline",
    "MonteCarloWorkload",
    "estimate_pi",
    "ParameterSweep",
    "sweep_grid",
]
