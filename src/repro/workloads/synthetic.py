"""Parametric synthetic workloads.

A synthetic task is a payload whose *declared* cost (work units charged in
virtual time) and *payload sizes* (bytes charged on the links) are drawn
from configurable distributions, while its real computation is a trivial
arithmetic transform (so results remain checkable).  The key experimental
knob is the **compute/communication ratio**: the ratio between the virtual
time a task's computation takes on a reference node and the virtual time its
data movement takes on a reference link.  Experiment E8 sweeps it to locate
where adaptation pays off.

The module also hosts the **I/O-bound scenario family**
(:class:`IOBoundWorkload`): an HTTP-like fan of requests whose "service
time" is spent *waiting*, not computing — the workload the asyncio backend
exists for.  Each request carries a deterministic per-request latency; the
coroutine worker awaits it (``asyncio.sleep`` standing in for the network
round-trip), so a backend that overlaps waits finishes in roughly the
longest queue's total latency instead of the sum of all latencies.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import WorkloadError
from repro.skeletons.base import CostModel
from repro.skeletons.taskfarm import TaskFarm
from repro.utils.rng import make_rng

__all__ = [
    "SyntheticSpec",
    "SyntheticWorkload",
    "spin_worker",
    "IOBoundSpec",
    "IOBoundWorkload",
    "fetch_worker",
    "blocking_fetch_worker",
]


def spin_worker(item: "SyntheticItem") -> float:
    """The real computation of a synthetic task: a cheap, checkable transform.

    Returns ``value * 2 + 1`` so tests can verify outputs without knowing
    the task's declared cost.
    """
    return item.value * 2.0 + 1.0


@dataclass(frozen=True)
class SyntheticItem:
    """Payload of one synthetic task."""

    index: int
    value: float
    cost: float
    nbytes: int


@dataclass
class SyntheticSpec:
    """Parameters of a synthetic workload.

    Attributes
    ----------
    tasks:
        Number of tasks.
    mean_cost:
        Mean task cost in work units.
    cost_cv:
        Coefficient of variation of the cost distribution (0 = identical
        tasks).
    distribution:
        ``"uniform"``, ``"normal"`` or ``"lognormal"`` (heavy-tailed).
    comp_comm_ratio:
        Desired ratio of compute time to communication time on a reference
        node (speed 1 work-unit/s) and reference link (``ref_bandwidth``).
        Payload sizes are derived from it: ``nbytes = cost × ref_bandwidth /
        ratio``.
    ref_bandwidth:
        Reference link bandwidth (bytes/s) used in the ratio derivation.
    seed:
        Stream seed.
    """

    tasks: int = 100
    mean_cost: float = 10.0
    cost_cv: float = 0.3
    distribution: str = "uniform"
    comp_comm_ratio: float = 10.0
    ref_bandwidth: float = 1.25e7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise WorkloadError(f"tasks must be >= 1, got {self.tasks}")
        if self.mean_cost <= 0:
            raise WorkloadError(f"mean_cost must be > 0, got {self.mean_cost}")
        if self.cost_cv < 0:
            raise WorkloadError(f"cost_cv must be >= 0, got {self.cost_cv}")
        if self.distribution not in {"uniform", "normal", "lognormal"}:
            raise WorkloadError(f"unknown distribution {self.distribution!r}")
        if self.comp_comm_ratio <= 0:
            raise WorkloadError("comp_comm_ratio must be > 0")
        if self.ref_bandwidth <= 0:
            raise WorkloadError("ref_bandwidth must be > 0")


class SyntheticWorkload:
    """Generates synthetic items and the matching :class:`TaskFarm`."""

    def __init__(self, spec: Optional[SyntheticSpec] = None, **kwargs):
        if spec is not None and kwargs:
            raise WorkloadError("pass either a spec or keyword arguments, not both")
        self.spec = spec or SyntheticSpec(**kwargs)

    # ------------------------------------------------------------- sampling
    def _sample_costs(self) -> np.ndarray:
        spec = self.spec
        rng = make_rng(spec.seed, "workload/synthetic/costs")
        if spec.cost_cv == 0:
            return np.full(spec.tasks, spec.mean_cost)
        sigma = spec.mean_cost * spec.cost_cv
        if spec.distribution == "uniform":
            half_width = sigma * np.sqrt(3.0)
            low = max(spec.mean_cost - half_width, 0.01 * spec.mean_cost)
            high = spec.mean_cost + half_width
            costs = rng.uniform(low, high, size=spec.tasks)
        elif spec.distribution == "normal":
            costs = rng.normal(spec.mean_cost, sigma, size=spec.tasks)
        else:  # lognormal
            variance = sigma ** 2
            mu = np.log(spec.mean_cost ** 2 / np.sqrt(variance + spec.mean_cost ** 2))
            s = np.sqrt(np.log(1.0 + variance / spec.mean_cost ** 2))
            costs = rng.lognormal(mu, s, size=spec.tasks)
        return np.clip(costs, 0.01 * spec.mean_cost, None)

    def items(self) -> List[SyntheticItem]:
        """The synthetic task payloads (deterministic for a given spec)."""
        spec = self.spec
        rng = make_rng(spec.seed, "workload/synthetic/values")
        costs = self._sample_costs()
        values = rng.uniform(0.0, 100.0, size=spec.tasks)
        items: List[SyntheticItem] = []
        for index in range(spec.tasks):
            cost = float(costs[index])
            nbytes = max(1, int(cost * spec.ref_bandwidth / spec.comp_comm_ratio))
            items.append(
                SyntheticItem(index=index, value=float(values[index]),
                              cost=cost, nbytes=nbytes)
            )
        return items

    # ------------------------------------------------------------ skeletons
    def cost_model(self) -> CostModel:
        """Cost model reading the declared cost off each item."""
        return lambda item: item.cost

    def farm(self, worker: Optional[Callable[[SyntheticItem], Any]] = None) -> TaskFarm:
        """A :class:`TaskFarm` over the synthetic items.

        The farm's size models charge each item's declared ``nbytes`` on the
        links so the spec's compute/communication ratio actually shows up in
        the simulated transfers.
        """
        return TaskFarm(
            worker=worker or spin_worker,
            cost_model=self.cost_model(),
            input_size_model=lambda item: item.nbytes,
            output_size_model=lambda item: max(1, item.nbytes // 2),
            name="synthetic-farm",
        )

    def expected_outputs(self) -> List[float]:
        """Reference outputs of :func:`spin_worker` over the items."""
        return [spin_worker(item) for item in self.items()]

    def total_cost(self) -> float:
        """Sum of all task costs (work units)."""
        return float(sum(item.cost for item in self.items()))

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary used by the experiment reports."""
        items = self.items()
        costs = [item.cost for item in items]
        return {
            "tasks": len(items),
            "mean_cost": float(np.mean(costs)),
            "cost_cv": float(np.std(costs) / np.mean(costs)) if np.mean(costs) else 0.0,
            "distribution": self.spec.distribution,
            "comp_comm_ratio": self.spec.comp_comm_ratio,
            "total_cost": float(np.sum(costs)),
        }


# --------------------------------------------------------------------------
# I/O-bound scenario family: an HTTP-like request fan.

@dataclass(frozen=True)
class IORequest:
    """Payload of one simulated HTTP-like request."""

    index: int
    value: float
    latency: float
    nbytes: int


async def fetch_worker(request: IORequest) -> float:
    """Coroutine worker: await the request's service time, return the body.

    ``asyncio.sleep`` stands in for the network round-trip; the returned
    "body" is the same checkable transform :func:`spin_worker` uses, so
    tests verify outputs without knowing latencies.
    """
    await asyncio.sleep(request.latency)
    return request.value * 2.0 + 1.0


def blocking_fetch_worker(request: IORequest) -> float:
    """Synchronous twin of :func:`fetch_worker` (``time.sleep`` blocks).

    For comparing the asyncio backend against thread/process backends on
    the same workload: blocking workers occupy their whole worker for the
    latency, coroutine workers only occupy the event loop while runnable.
    """
    _time.sleep(request.latency)
    return request.value * 2.0 + 1.0


# Module-level cost/size models: the I/O farm explicitly supports the
# process backend (coroutine payloads resolve in the child), so everything
# the farm ships must pickle — lambdas here would break that contract.

def _request_latency_cost(request: IORequest) -> float:
    return request.latency


def _request_input_size(request: IORequest) -> int:
    return 256


def _request_output_size(request: IORequest) -> int:
    return request.nbytes


@dataclass
class IOBoundSpec:
    """Parameters of an I/O-bound (HTTP-like) workload.

    Attributes
    ----------
    requests:
        Number of requests in the fan.
    mean_latency:
        Mean per-request service time in seconds.
    latency_cv:
        Coefficient of variation of the latency distribution (0 = uniform
        service times).
    response_bytes:
        Mean response size (charged on links when run in virtual time).
    seed:
        Stream seed.
    """

    requests: int = 64
    mean_latency: float = 0.01
    latency_cv: float = 0.5
    response_bytes: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise WorkloadError(f"requests must be >= 1, got {self.requests}")
        if self.mean_latency <= 0:
            raise WorkloadError(
                f"mean_latency must be > 0, got {self.mean_latency}"
            )
        if self.latency_cv < 0:
            raise WorkloadError(
                f"latency_cv must be >= 0, got {self.latency_cv}"
            )
        if self.response_bytes < 1:
            raise WorkloadError(
                f"response_bytes must be >= 1, got {self.response_bytes}"
            )


class IOBoundWorkload:
    """Generates HTTP-like requests and the matching :class:`TaskFarm`.

    The farm's cost model declares each request's latency as its work
    units, so calibration and monitoring normalise against service time —
    a slow *service* is indistinguishable from a slow *node*, which is
    exactly the signal an adaptive client wants.
    """

    def __init__(self, spec: Optional[IOBoundSpec] = None, **kwargs):
        if spec is not None and kwargs:
            raise WorkloadError("pass either a spec or keyword arguments, not both")
        self.spec = spec or IOBoundSpec(**kwargs)

    # ------------------------------------------------------------- sampling
    def items(self) -> List[IORequest]:
        """The request payloads (deterministic for a given spec)."""
        spec = self.spec
        rng = make_rng(spec.seed, "workload/io/latencies")
        if spec.latency_cv == 0:
            latencies = np.full(spec.requests, spec.mean_latency)
        else:
            sigma = spec.mean_latency * spec.latency_cv
            mu = np.log(spec.mean_latency ** 2
                        / np.sqrt(sigma ** 2 + spec.mean_latency ** 2))
            s = np.sqrt(np.log(1.0 + (sigma / spec.mean_latency) ** 2))
            latencies = rng.lognormal(mu, s, size=spec.requests)
        latencies = np.clip(latencies, 0.1 * spec.mean_latency,
                            10.0 * spec.mean_latency)
        values = make_rng(spec.seed, "workload/io/values").uniform(
            0.0, 100.0, size=spec.requests)
        # Uniform around the documented mean (±50%), floored at 1 byte.
        half = spec.response_bytes // 2
        sizes = make_rng(spec.seed, "workload/io/sizes").integers(
            max(1, spec.response_bytes - half), spec.response_bytes + half + 1,
            size=spec.requests)
        return [
            IORequest(index=i, value=float(values[i]),
                      latency=float(latencies[i]), nbytes=int(sizes[i]))
            for i in range(spec.requests)
        ]

    # ------------------------------------------------------------ skeletons
    def farm(self, worker: Optional[Callable[[IORequest], Any]] = None) -> TaskFarm:
        """A :class:`TaskFarm` over the request fan (coroutine worker)."""
        return TaskFarm(
            worker=worker or fetch_worker,
            cost_model=_request_latency_cost,
            input_size_model=_request_input_size,
            output_size_model=_request_output_size,
            name="io-farm",
        )

    # ------------------------------------------------------------ reference
    def expected_outputs(self) -> List[float]:
        """Reference response bodies for the generated requests."""
        return [item.value * 2.0 + 1.0 for item in self.items()]

    def total_latency(self) -> float:
        """Sum of all service times — the sequential client's wall time."""
        return float(sum(item.latency for item in self.items()))

    def run_sequential(self) -> Tuple[List[float], float]:
        """One-at-a-time client: awaits each request in turn.

        Returns ``(outputs, wall seconds)`` — the honest non-overlapping
        baseline the asyncio backend is benchmarked against.
        """

        async def drain() -> List[float]:
            return [await fetch_worker(item) for item in self.items()]

        start = _time.perf_counter()
        outputs = asyncio.run(drain())
        return outputs, _time.perf_counter() - start

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary used by the experiment reports."""
        items = self.items()
        latencies = [item.latency for item in items]
        return {
            "requests": len(items),
            "mean_latency": float(np.mean(latencies)),
            "latency_cv": (float(np.std(latencies) / np.mean(latencies))
                           if np.mean(latencies) else 0.0),
            "total_latency": float(np.sum(latencies)),
        }
