"""Parameter-study (sweep) workload.

Parameter studies — evaluating one model over a Cartesian grid of parameter
values — are the canonical application class the computational-grid
literature motivates, and the one the GRASP farm targets.  Each grid point
is an independent task; the per-point cost may depend on the parameters
(e.g. finer resolutions cost more), which is what makes static distribution
fragile and adaptation valuable.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import WorkloadError
from repro.skeletons.base import CostModel
from repro.skeletons.taskfarm import TaskFarm

__all__ = ["ParameterSweep", "sweep_grid", "default_objective"]


def sweep_grid(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes.

    >>> points = sweep_grid({"a": [1, 2], "b": [10, 20]})
    >>> len(points)
    4
    >>> points[0]
    {'a': 1, 'b': 10}
    """
    if not axes:
        raise WorkloadError("sweep_grid needs at least one axis")
    names = list(axes)
    for name in names:
        if len(axes[name]) == 0:
            raise WorkloadError(f"axis {name!r} is empty")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[name] for name in names))
    ]


def default_objective(point: Dict[str, Any]) -> float:
    """A smooth, checkable objective over numeric parameter points."""
    total = 0.0
    for index, value in enumerate(point.values()):
        total += math.sin(float(value) + index) ** 2 + float(value) * 0.01
    return total


class ParameterSweep:
    """A parameter study as a task farm.

    Parameters
    ----------
    axes:
        Named parameter axes; tasks are their Cartesian product.
    objective:
        Function evaluated at each point (default: a smooth synthetic
        objective, so results remain checkable).
    cost_fn:
        Maps a point to its compute cost in work units.  The default charges
        ``base_cost × (1 + resolution)`` when the point has a ``resolution``
        key and ``base_cost`` otherwise, producing the cost skew that makes
        the sweep interesting.
    base_cost:
        Baseline per-point cost in work units.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        objective: Optional[Callable[[Dict[str, Any]], Any]] = None,
        cost_fn: Optional[Callable[[Dict[str, Any]], float]] = None,
        base_cost: float = 5.0,
    ):
        if base_cost <= 0:
            raise WorkloadError(f"base_cost must be > 0, got {base_cost}")
        self.axes = {name: list(values) for name, values in axes.items()}
        self.points = sweep_grid(self.axes)
        self.objective = objective or default_objective
        self.base_cost = float(base_cost)
        self.cost_fn = cost_fn or self._default_cost

    def _default_cost(self, point: Dict[str, Any]) -> float:
        resolution = point.get("resolution")
        if resolution is None:
            return self.base_cost
        return self.base_cost * (1.0 + float(resolution))

    def items(self) -> List[Dict[str, Any]]:
        """The sweep points, in Cartesian-product order."""
        return [dict(point) for point in self.points]

    def cost_model(self) -> CostModel:
        """Cost model applying ``cost_fn`` to each point."""
        return lambda point: float(self.cost_fn(point))

    def farm(self) -> TaskFarm:
        """The sweep as a task farm."""
        return TaskFarm(
            worker=self.objective,
            cost_model=self.cost_model(),
            ordered=True,
            name="parameter-sweep",
        )

    def expected_outputs(self) -> List[Any]:
        """Sequential reference outputs for every point, in order."""
        return [self.objective(point) for point in self.items()]

    def total_cost(self) -> float:
        """Sum of all point costs (work units)."""
        return float(sum(self.cost_fn(point) for point in self.points))

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary used by the experiment reports."""
        return {
            "axes": {name: len(values) for name, values in self.axes.items()},
            "points": len(self.points),
            "base_cost": self.base_cost,
            "total_cost": self.total_cost(),
        }
