"""The divide-and-conquer skeleton.

``DivideAndConquer`` recursively splits a problem until a triviality test
succeeds, solves the base cases and combines sub-solutions on the way back
up.  For execution on the grid the recursion is unrolled breadth-first down
to a configurable depth, producing independent sub-problems that are then
farmed — which is precisely how skeletal libraries of the era lowered D&C
onto a task farm.

Provided as an extension skeleton (the paper's prototype covers farm and
pipeline; D&C is the most commonly requested third pattern).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.comm.message import estimate_size
from repro.exceptions import SkeletonError
from repro.skeletons.base import CostModel, Skeleton, SkeletonProperties, Task

__all__ = ["DivideAndConquer"]


class DivideAndConquer(Skeleton):
    """Recursive divide / conquer / combine skeleton.

    Parameters
    ----------
    divide:
        ``problem -> [subproblem, ...]``.
    combine:
        ``(problem, [subsolution, ...]) -> solution``.
    solve:
        ``problem -> solution`` applied at the base case.
    is_trivial:
        ``problem -> bool``; when true, ``solve`` is applied directly.
    parallel_depth:
        How many levels of recursion to unroll into farmable tasks.
    cost_model:
        Cost of *solving* a (sub-)problem sequentially; defaults to 1.0.

    Examples
    --------
    Summing a list by halving::

        dc = DivideAndConquer(
            divide=lambda xs: [xs[:len(xs)//2], xs[len(xs)//2:]],
            combine=lambda _p, subs: subs[0] + subs[1],
            solve=lambda xs: sum(xs),
            is_trivial=lambda xs: len(xs) <= 4,
        )
        assert dc.run_sequential([list(range(10))]) == [45]
    """

    def __init__(
        self,
        divide: Callable[[Any], Sequence[Any]],
        combine: Callable[[Any, List[Any]], Any],
        solve: Callable[[Any], Any],
        is_trivial: Callable[[Any], bool],
        parallel_depth: int = 2,
        cost_model: Optional[CostModel] = None,
        name: str = "divide_and_conquer",
    ):
        super().__init__(name=name)
        for label, fn in (("divide", divide), ("combine", combine),
                          ("solve", solve), ("is_trivial", is_trivial)):
            if not callable(fn):
                raise SkeletonError(f"{label} must be callable")
        if parallel_depth < 0:
            raise SkeletonError(f"parallel_depth must be >= 0, got {parallel_depth}")
        self.divide = divide
        self.combine = combine
        self.solve = solve
        self.is_trivial = is_trivial
        self.parallel_depth = parallel_depth
        self.cost_model = cost_model

    @property
    def properties(self) -> SkeletonProperties:
        return SkeletonProperties(
            name="divide_and_conquer",
            min_nodes=1,
            redistributable=True,
            ordered_output=True,
            monitoring_unit="task",
            stateless_workers=True,
        )

    # -------------------------------------------------------------- unrolling
    def unroll(self, problem: Any, depth: Optional[int] = None) -> tuple:
        """Unroll the recursion to ``depth`` levels.

        Returns ``(leaves, plan)`` where ``leaves`` is the list of
        sub-problems to be solved as independent tasks and ``plan`` is the
        nested structure needed by :meth:`recombine` (either an integer leaf
        index or ``(problem, [child_plan, ...])``).
        """
        depth = self.parallel_depth if depth is None else depth
        leaves: List[Any] = []

        def go(p: Any, d: int):
            if d == 0 or self.is_trivial(p):
                leaves.append(p)
                return len(leaves) - 1
            children = list(self.divide(p))
            if not children:
                raise SkeletonError("divide returned no subproblems")
            return (p, [go(child, d - 1) for child in children])

        plan = go(problem, depth)
        return leaves, plan

    def recombine(self, plan: Any, solutions: List[Any]) -> Any:
        """Recombine leaf solutions according to an :meth:`unroll` plan."""
        if isinstance(plan, int):
            return solutions[plan]
        problem, child_plans = plan
        return self.combine(problem, [self.recombine(c, solutions) for c in child_plans])

    # ----------------------------------------------------------------- tasks
    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        """Unroll every input problem and emit one task per leaf.

        The unroll plans are stored on the instance (keyed by input order)
        for the executor to recombine results; calling ``make_tasks`` again
        replaces them.
        """
        problems = list(inputs)
        if not problems:
            raise SkeletonError("divide-and-conquer needs at least one problem")
        self._plans: List[Any] = []
        self._leaf_counts: List[int] = []
        tasks: List[Task] = []
        for problem in problems:
            leaves, plan = self.unroll(problem)
            self._plans.append(plan)
            self._leaf_counts.append(len(leaves))
            for leaf in leaves:
                cost = float(self.cost_model(leaf)) if self.cost_model else 1.0
                size = estimate_size(leaf)
                tasks.append(
                    Task(task_id=self._next_task_id(), payload=leaf, cost=cost,
                         input_bytes=size, output_bytes=size)
                )
        return tasks

    def lower(self):
        """Lower onto the IR: a leaf fan with one unit per unrolled leaf."""
        from repro.core.plan import FanPlan  # local: core layers on skeletons

        return FanPlan(body=self.execute_task,
                       min_nodes=self.properties.min_nodes)

    def execute_task(self, task: Task) -> Any:
        """Solve one leaf sequentially (recursing below the unroll depth)."""
        return self.solve_recursive(task.payload)

    def solve_recursive(self, problem: Any) -> Any:
        """Full sequential divide-and-conquer of ``problem``."""
        if self.is_trivial(problem):
            return self.solve(problem)
        children = list(self.divide(problem))
        if not children:
            raise SkeletonError("divide returned no subproblems")
        return self.combine(problem, [self.solve_recursive(c) for c in children])

    def recombine_all(self, leaf_solutions: List[Any]) -> List[Any]:
        """Recombine executor-produced leaf solutions for every input problem."""
        if not hasattr(self, "_plans"):
            raise SkeletonError("make_tasks must be called before recombine_all")
        results: List[Any] = []
        offset = 0
        for plan, count in zip(self._plans, self._leaf_counts):
            chunk = leaf_solutions[offset:offset + count]
            offset += count
            results.append(self.recombine(plan, chunk))
        return results

    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        """Reference semantics: solve each problem fully recursively."""
        return [self.solve_recursive(problem) for problem in inputs]
