"""The pipeline skeleton.

A pipeline pushes a stream of items through an ordered sequence of *stages*;
different items occupy different stages simultaneously, so throughput is
bounded by the slowest stage.  It is the second GRASP skeleton (reference
[7] of the paper: "Towards fully adaptive pipeline parallelism for
heterogeneous distributed environments").

Adaptation handles the pipeline's weakness — a stage mapped onto a node that
slows down throttles the whole stream — by remapping stages onto fitter
nodes (and, when a stage is declared ``replicable``, by farming it across
several nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.comm.message import estimate_size
from repro.exceptions import SkeletonError
from repro.skeletons.base import (
    CostModel,
    Skeleton,
    SkeletonProperties,
    Task,
    constant_cost,
)
from repro.utils.awaitables import resolve_awaitable

__all__ = ["Stage", "Pipeline"]


@dataclass
class Stage:
    """One pipeline stage.

    Parameters
    ----------
    fn:
        The stage function ``item -> item``.
    cost_model:
        Work units charged per item at this stage (default 1.0 per item).
    name:
        Label used in traces; defaults to ``stage<k>`` when added.
    replicable:
        Whether this stage may be farmed over several nodes (it must then be
        stateless across items).
    """

    fn: Callable[[Any], Any]
    cost_model: Optional[CostModel] = None
    name: str = ""
    replicable: bool = False

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise SkeletonError("stage fn must be callable")
        if self.cost_model is None:
            self.cost_model = constant_cost(1.0)

    def cost(self, item: Any) -> float:
        """Compute cost of processing ``item`` at this stage."""
        assert self.cost_model is not None
        return float(self.cost_model(item))


class Pipeline(Skeleton):
    """Ordered composition of stages applied to a stream of items.

    Examples
    --------
    >>> pipe = Pipeline([Stage(lambda x: x + 1), Stage(lambda x: x * 2)])
    >>> pipe.run_sequential([1, 2, 3])
    [4, 6, 8]
    """

    def __init__(self, stages: Sequence[Stage], ordered: bool = True,
                 name: str = "pipeline"):
        super().__init__(name=name)
        if len(stages) == 0:
            raise SkeletonError("a pipeline needs at least one stage")
        self.stages: List[Stage] = []
        for index, stage in enumerate(stages):
            if not isinstance(stage, Stage):
                raise SkeletonError(
                    f"stage {index} is not a Stage instance (got {type(stage).__name__})"
                )
            if not stage.name:
                stage.name = f"stage{index}"
            self.stages.append(stage)
        self.ordered = ordered

    @property
    def num_stages(self) -> int:
        """Number of stages."""
        return len(self.stages)

    @property
    def properties(self) -> SkeletonProperties:
        return SkeletonProperties(
            name="pipeline",
            min_nodes=self.num_stages,
            redistributable=any(stage.replicable for stage in self.stages),
            ordered_output=self.ordered,
            monitoring_unit="stage_round",
            stateless_workers=all(stage.replicable for stage in self.stages),
        )

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        """One task per input item, costed at the *first* stage.

        Downstream stage costs are charged by the executor as the item
        advances, because the payload (and hence its cost) may change at
        every stage.
        """
        tasks: List[Task] = []
        first = self.stages[0]
        for item in inputs:
            input_bytes = estimate_size(item)
            tasks.append(
                Task(
                    task_id=self._next_task_id(),
                    payload=item,
                    cost=first.cost(item),
                    input_bytes=input_bytes,
                    output_bytes=input_bytes,
                    stage=0,
                )
            )
        if not tasks:
            raise SkeletonError("a pipeline needs at least one input item")
        return tasks

    def lower(self):
        """Lower onto the IR: a chain with one plan stage per stage.

        Replication and chunking hints are left unset so the run's
        :class:`~repro.core.parameters.ExecutionConfig` decides
        (``replicate_stages`` / ``chunk_size``).
        """
        from repro.core.plan import (  # local: core layers on skeletons
            ChainPlan,
            stage_from_pipeline_stage,
        )

        return ChainPlan(
            stages=tuple(stage_from_pipeline_stage(stage)
                         for stage in self.stages)
        )

    def apply_stage(self, stage_index: int, item: Any) -> Any:
        """Run one stage function on one item (real computation)."""
        if not (0 <= stage_index < self.num_stages):
            raise SkeletonError(f"stage index {stage_index} out of range")
        return resolve_awaitable(self.stages[stage_index].fn(item))

    def stage_cost(self, stage_index: int, item: Any) -> float:
        """Compute cost of ``item`` at stage ``stage_index``."""
        if not (0 <= stage_index < self.num_stages):
            raise SkeletonError(f"stage index {stage_index} out of range")
        return self.stages[stage_index].cost(item)

    def total_cost(self, item: Any) -> float:
        """Total compute cost of threading ``item`` through every stage.

        Used by the calibration phase, which samples *whole items* (an item
        cannot meaningfully leave the stream half-processed), so sample
        times must be normalised against the full per-item cost.
        """
        total = 0.0
        value = item
        for stage in self.stages:
            total += stage.cost(value)
            value = resolve_awaitable(stage.fn(value))
        return total

    def run_item(self, item: Any) -> Any:
        """Thread a single item through every stage (real computation)."""
        value = item
        for stage in self.stages:
            value = resolve_awaitable(stage.fn(value))
        return value

    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        """Reference semantics: thread each item through all stages in order."""
        outputs: List[Any] = []
        for item in inputs:
            value = item
            for stage in self.stages:
                value = resolve_awaitable(stage.fn(value))
            outputs.append(value)
        return outputs
