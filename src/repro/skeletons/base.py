"""Skeleton base classes, tasks and cost models.

The GRASP methodology relies on each skeleton exposing its *intrinsic
properties* — "which capture its essence and distinguish it from the rest" —
so the runtime can instrument and adapt it.  :class:`SkeletonProperties`
captures the properties the calibration and execution phases consume:
minimum node requirements, whether in-flight work can be redistributed,
whether item ordering must be preserved, and the skeleton's natural unit of
monitoring (task for a farm, stage-round for a pipeline).

A :class:`Task` is one schedulable unit: a payload (the user's data), a
compute cost in abstract work units, and input/output sizes in bytes for the
communication model.  :class:`TaskResult` records where and when it ran.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, List, Optional

from repro.comm.message import estimate_size
from repro.exceptions import SkeletonError

__all__ = [
    "CostModel",
    "constant_cost",
    "callable_cost",
    "Task",
    "TaskResult",
    "SkeletonProperties",
    "Skeleton",
]

#: A cost model maps a task payload to abstract work units.
CostModel = Callable[[Any], float]


@dataclass(frozen=True)
class _ConstantCost:
    """Picklable cost model charging the same cost for every item."""

    cost: float

    def __call__(self, _item: Any) -> float:
        return self.cost


@dataclass(frozen=True)
class _ValidatedCost:
    """Picklable wrapper validating an arbitrary cost callable on use."""

    fn: Callable[[Any], float]

    def __call__(self, item: Any) -> float:
        value = float(self.fn(item))
        if value < 0:
            raise SkeletonError(f"cost model returned a negative cost: {value}")
        return value


def constant_cost(cost: float) -> CostModel:
    """A cost model charging the same ``cost`` for every item.

    The returned callable is picklable (the process backend ships cost
    models across worker boundaries).
    """
    if cost < 0:
        raise SkeletonError(f"cost must be >= 0, got {cost}")
    return _ConstantCost(float(cost))


def callable_cost(fn: Callable[[Any], float]) -> CostModel:
    """Wrap an arbitrary callable as a cost model with validation on use.

    Picklable whenever ``fn`` itself is.
    """
    return _ValidatedCost(fn)


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work."""

    task_id: int
    payload: Any
    cost: float = 1.0
    input_bytes: int = 0
    output_bytes: int = 0
    stage: int = 0

    def scaled(self, factor: float) -> "Task":
        """A copy of this task with its cost scaled by ``factor``."""
        if factor < 0:
            raise SkeletonError(f"scale factor must be >= 0, got {factor}")
        return replace(self, cost=self.cost * factor)


@dataclass(frozen=True)
class TaskResult:
    """Outcome of executing one task on one node."""

    task_id: int
    output: Any
    node_id: str
    submitted: float
    started: float
    finished: float
    stage: int = 0
    during_calibration: bool = False

    @property
    def duration(self) -> float:
        """Pure compute time of the task."""
        return self.finished - self.started

    @property
    def elapsed(self) -> float:
        """Submission-to-completion time (includes queueing)."""
        return self.finished - self.submitted


@dataclass(frozen=True)
class SkeletonProperties:
    """The intrinsic properties GRASP instruments.

    Attributes
    ----------
    name:
        Skeleton family name (``"taskfarm"``, ``"pipeline"``, …).
    min_nodes:
        Fewest nodes on which the skeleton can execute (1 master + workers
        for a farm; one node per stage for an unreplicated pipeline).
    redistributable:
        Whether queued work can be moved between nodes mid-run (true for a
        farm; true for a pipeline only via stage remapping).
    ordered_output:
        Whether output order must match input order.
    monitoring_unit:
        The natural granularity at which Algorithm 2 collects times:
        ``"task"`` or ``"stage_round"``.
    stateless_workers:
        Whether worker functions keep no inter-task state (a precondition
        for free task migration).
    """

    name: str
    min_nodes: int = 2
    redistributable: bool = True
    ordered_output: bool = False
    monitoring_unit: str = "task"
    stateless_workers: bool = True


class Skeleton:
    """Base class for all skeletons."""

    def __init__(self, name: str):
        if not name:
            raise SkeletonError("skeleton name must be non-empty")
        self.name = name
        self._task_counter = itertools.count()

    # -- description ----------------------------------------------------------
    @property
    def properties(self) -> SkeletonProperties:
        """The skeleton's intrinsic properties (overridden by subclasses)."""
        raise NotImplementedError

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        """Turn an input collection into a list of :class:`Task` objects."""
        raise NotImplementedError

    # -- lowering --------------------------------------------------------------
    def lower(self):
        """Lower this skeleton onto the execution-plan IR.

        Every skeleton targets the same small IR
        (:mod:`repro.core.plan`): a :class:`~repro.core.plan.FanPlan`
        of independent units, a :class:`~repro.core.plan.ChainPlan` of
        streamed stages, or a fan whose unit is itself a chained
        sub-plan.  One executor
        (:class:`~repro.core.plan_executor.PlanExecutor`) then walks
        any plan adaptively on any backend.

        The default lowering covers every farm-shaped skeleton — one
        independent unit per task, executed by ``execute_task``;
        skeletons with chained or nested structure override it.
        """
        from repro.core.plan import FanPlan  # local: core layers on skeletons

        execute = getattr(self, "execute_task", None)
        if execute is None:
            raise SkeletonError(
                f"skeleton {type(self).__name__} defines neither lower() "
                "nor execute_task"
            )
        return FanPlan(body=execute, min_nodes=self.properties.min_nodes)

    # -- sequential reference --------------------------------------------------
    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        """Execute the skeleton's semantics sequentially (reference results).

        Used by tests and by the analysis harness to verify that every
        executor (adaptive or static, simulated or threaded) preserves the
        skeleton's meaning — the "clear and consistent meaning across
        platforms" the paper attributes to structured parallelism.
        """
        raise NotImplementedError

    # -- adaptive runs ---------------------------------------------------------
    def as_completed(self, grid, inputs: Iterable[Any], config=None,
                     backend=None, start_time: float = 0.0):
        """Run this skeleton adaptively on ``grid``, streaming results.

        Convenience front door to
        :meth:`repro.core.grasp.Grasp.as_completed`: returns a
        :class:`~repro.core.grasp.StreamingRun` yielding every
        :class:`TaskResult` as the adaptive loop collects it; after
        exhaustion its ``result`` attribute holds the full
        :class:`~repro.core.grasp.GraspResult`.

        Examples
        --------
        >>> from repro import GridBuilder, TaskFarm
        >>> grid = GridBuilder().homogeneous(nodes=4).build(seed=0)
        >>> farm = TaskFarm(worker=lambda x: x * 2)
        >>> outputs = sorted(r.output for r in
        ...                  farm.as_completed(grid, inputs=range(6)))
        >>> outputs == [x * 2 for x in range(6)]
        True
        """
        from repro.core.grasp import Grasp  # local: core layers on skeletons

        return Grasp(skeleton=self, grid=grid, config=config,
                     backend=backend).as_completed(inputs,
                                                   start_time=start_time)

    # -- helpers ---------------------------------------------------------------
    def _next_task_id(self) -> int:
        return next(self._task_counter)

    def _sizes_for(self, payload: Any, result_hint: Optional[Any] = None) -> tuple:
        input_bytes = estimate_size(payload)
        output_bytes = estimate_size(result_hint) if result_hint is not None else input_bytes
        return input_bytes, output_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
