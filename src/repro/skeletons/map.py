"""The map skeleton (data-parallel decomposition).

``MapSkeleton`` partitions a single large data structure into blocks, applies
a function to each block and reassembles the results.  It differs from the
task farm in that the decomposition is chosen by the skeleton (block count =
node count by default) rather than given by the input stream, which is the
distinction the structured-parallelism literature draws between *data
parallel* and *task parallel* farms.

It is provided as an extension skeleton: the paper's GRASP prototype covers
farm and pipeline only, but the methodology explicitly targets "commonly-used
patterns", and map lowers naturally onto the same calibration/execution
machinery (each block is a task).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.comm.message import estimate_size
from repro.exceptions import SkeletonError
from repro.skeletons.base import CostModel, Skeleton, SkeletonProperties, Task

__all__ = ["MapSkeleton"]


class MapSkeleton(Skeleton):
    """Partition → apply → reassemble skeleton.

    Parameters
    ----------
    fn:
        Function applied to each *block* (a list of consecutive items, or a
        NumPy array slice when the input is an array).
    combine:
        How to reassemble block results; default concatenation.
    blocks:
        Number of blocks to create; defaults to the executor's worker count
        at execution time (0 means "decide at execution time").
    cost_model:
        Cost per *block*; defaults to ``len(block)`` work units.

    Examples
    --------
    >>> sk = MapSkeleton(fn=lambda block: [x * 10 for x in block], blocks=2)
    >>> sk.run_sequential([1, 2, 3, 4])
    [10, 20, 30, 40]
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        combine: Optional[Callable[[List[Any]], Any]] = None,
        blocks: int = 0,
        cost_model: Optional[CostModel] = None,
        name: str = "map",
    ):
        super().__init__(name=name)
        if not callable(fn):
            raise SkeletonError("fn must be callable")
        if blocks < 0:
            raise SkeletonError(f"blocks must be >= 0, got {blocks}")
        self.fn = fn
        self.combine = combine or self._default_combine
        self.blocks = blocks
        self.cost_model = cost_model

    @staticmethod
    def _default_combine(results: List[Any]) -> List[Any]:
        combined: List[Any] = []
        for result in results:
            if isinstance(result, (list, tuple)):
                combined.extend(result)
            elif isinstance(result, np.ndarray):
                combined.extend(result.tolist())
            else:
                combined.append(result)
        return combined

    @property
    def properties(self) -> SkeletonProperties:
        return SkeletonProperties(
            name="map",
            min_nodes=1,
            redistributable=True,
            ordered_output=True,
            monitoring_unit="task",
            stateless_workers=True,
        )

    # ------------------------------------------------------------ partitioning
    def partition(self, data: Sequence[Any], blocks: Optional[int] = None) -> List[Any]:
        """Split ``data`` into roughly equal consecutive blocks."""
        data_list = list(data)
        if len(data_list) == 0:
            raise SkeletonError("map skeleton needs a non-empty input")
        count = blocks if blocks is not None else (self.blocks or 1)
        count = max(1, min(count, len(data_list)))
        boundaries = np.linspace(0, len(data_list), count + 1).astype(int)
        return [
            data_list[boundaries[i]:boundaries[i + 1]]
            for i in range(count)
            if boundaries[i] < boundaries[i + 1]
        ]

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        """One task per block (the block is the payload)."""
        blocks = self.partition(list(inputs), self.blocks if self.blocks else None)
        tasks: List[Task] = []
        for block in blocks:
            cost = (
                float(self.cost_model(block)) if self.cost_model is not None else float(len(block))
            )
            size = estimate_size(block)
            tasks.append(
                Task(task_id=self._next_task_id(), payload=block, cost=cost,
                     input_bytes=size, output_bytes=size)
            )
        return tasks

    def lower(self):
        """Lower onto the IR: a leaf fan with one unit per block."""
        from repro.core.plan import FanPlan  # local: core layers on skeletons

        return FanPlan(body=self.execute_task,
                       min_nodes=self.properties.min_nodes)

    def execute_task(self, task: Task) -> Any:
        """Apply the block function to one block (real computation)."""
        return self.fn(task.payload)

    def run_sequential(self, inputs: Iterable[Any]) -> Any:
        """Reference semantics: partition, apply, combine in order."""
        blocks = self.partition(list(inputs), self.blocks if self.blocks else 1)
        return self.combine([self.fn(block) for block in blocks])
