"""The reduce skeleton (parallel reduction).

``ReduceSkeleton`` combines a collection into a single value with an
associative binary operator.  Parallel execution reduces blocks locally and
then combines the partial results, so the operator must be associative; the
skeleton verifies commutativity is *not* required by always combining
partials in block order.

Provided as an extension skeleton (see :mod:`repro.skeletons.map` for the
rationale).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, List, Optional

from repro.comm.message import estimate_size
from repro.exceptions import SkeletonError
from repro.skeletons.base import Skeleton, SkeletonProperties, Task

__all__ = ["ReduceSkeleton"]


class ReduceSkeleton(Skeleton):
    """Parallel reduction with an associative binary operator.

    Parameters
    ----------
    op:
        Associative binary operator ``(a, b) -> c``.
    identity:
        Optional identity element; required when the input may be empty.
    blocks:
        Number of blocks for the parallel phase (0 = decide at execution).
    cost_per_element:
        Work units charged per element combined (default 1.0).

    Examples
    --------
    >>> sk = ReduceSkeleton(op=lambda a, b: a + b, identity=0, blocks=4)
    >>> sk.run_sequential(range(10))
    45
    """

    def __init__(
        self,
        op: Callable[[Any, Any], Any],
        identity: Optional[Any] = None,
        blocks: int = 0,
        cost_per_element: float = 1.0,
        name: str = "reduce",
    ):
        super().__init__(name=name)
        if not callable(op):
            raise SkeletonError("op must be callable")
        if blocks < 0:
            raise SkeletonError(f"blocks must be >= 0, got {blocks}")
        if cost_per_element < 0:
            raise SkeletonError("cost_per_element must be >= 0")
        self.op = op
        self.identity = identity
        self.blocks = blocks
        self.cost_per_element = float(cost_per_element)

    @property
    def properties(self) -> SkeletonProperties:
        return SkeletonProperties(
            name="reduce",
            min_nodes=1,
            redistributable=True,
            ordered_output=True,
            monitoring_unit="task",
            stateless_workers=True,
        )

    def _partition(self, data: List[Any], blocks: Optional[int]) -> List[List[Any]]:
        count = blocks if blocks else (self.blocks or 1)
        count = max(1, min(count, len(data))) if data else 1
        if not data:
            return []
        size = (len(data) + count - 1) // count
        return [data[i:i + size] for i in range(0, len(data), size)]

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        """One task per block; the payload is the block to reduce locally."""
        data = list(inputs)
        if not data and self.identity is None:
            raise SkeletonError("cannot reduce an empty input without an identity")
        tasks: List[Task] = []
        for block in self._partition(data, self.blocks if self.blocks else None):
            size = estimate_size(block)
            tasks.append(
                Task(task_id=self._next_task_id(), payload=block,
                     cost=self.cost_per_element * len(block),
                     input_bytes=size, output_bytes=max(1, size // max(1, len(block)))),
            )
        return tasks

    def lower(self):
        """Lower onto the IR: a leaf fan with one unit per reduced block."""
        from repro.core.plan import FanPlan  # local: core layers on skeletons

        return FanPlan(body=self.execute_task,
                       min_nodes=self.properties.min_nodes)

    def execute_task(self, task: Task) -> Any:
        """Reduce one block locally (real computation)."""
        return self.reduce_block(task.payload)

    def reduce_block(self, block: List[Any]) -> Any:
        """Sequential reduction of one block."""
        if not block:
            if self.identity is None:
                raise SkeletonError("cannot reduce an empty block without an identity")
            return self.identity
        return functools.reduce(self.op, block)

    def combine_partials(self, partials: List[Any]) -> Any:
        """Combine per-block partial results, in block order."""
        if not partials:
            if self.identity is None:
                raise SkeletonError("cannot combine zero partials without an identity")
            return self.identity
        return functools.reduce(self.op, partials)

    def run_sequential(self, inputs: Iterable[Any]) -> Any:
        """Reference semantics: sequential fold over the whole input."""
        data = list(inputs)
        if not data:
            if self.identity is None:
                raise SkeletonError("cannot reduce an empty input without an identity")
            return self.identity
        if self.identity is not None:
            return functools.reduce(self.op, data, self.identity)
        return functools.reduce(self.op, data)
