"""The task-farm skeleton.

A task farm (master/worker) applies one *worker* function independently to
every element of an input collection.  It is the canonical embarrassingly
parallel skeleton and the first of the two skeletons GRASP provides
(reference [6] of the paper: "Self-adaptive skeletal task farm for
computational grids").

The farm's intrinsic properties — independent tasks, stateless workers, free
redistribution — are exactly what makes it maximally adaptable: any queued
task can be (re)assigned to any node at any time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.comm.message import estimate_size
from repro.exceptions import SkeletonError
from repro.utils.awaitables import resolve_awaitable
from repro.skeletons.base import (
    CostModel,
    Skeleton,
    SkeletonProperties,
    Task,
    constant_cost,
)

__all__ = ["TaskFarm"]


class TaskFarm(Skeleton):
    """Master/worker skeleton applying ``worker`` to every input item.

    Parameters
    ----------
    worker:
        The sequential function applied to each item.  It must be free of
        inter-item state (the farm's contract).
    cost_model:
        Maps an item to its compute cost in abstract work units; defaults to
        a constant cost of 1.0 per item.  The cost drives the virtual-time
        simulation — the worker is *also* executed for real so results are
        genuine.
    output_size:
        Optional fixed size (bytes) of each result for the communication
        model; when omitted the result size is estimated from the input.
    ordered:
        When ``True`` the executor must emit results in input order.
    name:
        Label used in traces and reports.

    Examples
    --------
    >>> farm = TaskFarm(worker=lambda x: x * x)
    >>> [t.cost for t in farm.make_tasks([1, 2, 3])]
    [1.0, 1.0, 1.0]
    >>> farm.run_sequential([1, 2, 3])
    [1, 4, 9]
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        cost_model: Optional[CostModel] = None,
        output_size: Optional[int] = None,
        input_size_model: Optional[Callable[[Any], int]] = None,
        output_size_model: Optional[Callable[[Any], int]] = None,
        ordered: bool = False,
        name: str = "taskfarm",
    ):
        super().__init__(name=name)
        if not callable(worker):
            raise SkeletonError("worker must be callable")
        self.worker = worker
        self.cost_model: CostModel = cost_model or constant_cost(1.0)
        self.output_size = output_size
        self.input_size_model = input_size_model
        self.output_size_model = output_size_model
        self.ordered = ordered

    @property
    def properties(self) -> SkeletonProperties:
        return SkeletonProperties(
            name="taskfarm",
            min_nodes=1,
            redistributable=True,
            ordered_output=self.ordered,
            monitoring_unit="task",
            stateless_workers=True,
        )

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        """Wrap each input item in a :class:`Task` with its modelled cost."""
        tasks: List[Task] = []
        for item in inputs:
            cost = float(self.cost_model(item))
            if self.input_size_model is not None:
                input_bytes = int(self.input_size_model(item))
            else:
                input_bytes = estimate_size(item)
            if self.output_size_model is not None:
                output_bytes = int(self.output_size_model(item))
            elif self.output_size is not None:
                output_bytes = self.output_size
            else:
                output_bytes = input_bytes
            tasks.append(
                Task(
                    task_id=self._next_task_id(),
                    payload=item,
                    cost=cost,
                    input_bytes=input_bytes,
                    output_bytes=int(output_bytes),
                )
            )
        if not tasks:
            raise SkeletonError("a task farm needs at least one input item")
        return tasks

    def lower(self):
        """Lower onto the IR: a leaf fan of independent worker units."""
        from repro.core.plan import FanPlan  # local: core layers on skeletons

        return FanPlan(body=self.execute_task,
                       min_nodes=self.properties.min_nodes)

    def execute_task(self, task: Task) -> Any:
        """Run the worker on one task's payload (real computation)."""
        return self.worker(task.payload)

    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        """Reference semantics: map the worker over the inputs in order."""
        return [resolve_awaitable(self.worker(item)) for item in inputs]
