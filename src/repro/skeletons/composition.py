"""Skeleton composition.

"Parallel programs are expressed by interweaving parameterised skeletons
analogously to the way sequential structured programs are constructed"
(paper, Introduction).  This module provides the two compositions the
structured-parallelism literature uses most:

* :class:`PipelineOfFarms` — a pipeline whose stages are each replicated as
  small farms (useful when one stage dominates).
* :class:`FarmOfPipelines` — a farm whose worker is itself a whole pipeline
  applied per item (useful when items are independent but internally
  multi-phase).

Both lower onto the primitive skeletons: composition objects *generate* a
configured :class:`~repro.skeletons.pipeline.Pipeline` or
:class:`~repro.skeletons.taskfarm.TaskFarm`, so every executor (adaptive or
static) handles them without special cases.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.exceptions import SkeletonError
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.taskfarm import TaskFarm
from repro.skeletons.base import CostModel, Skeleton, SkeletonProperties, Task

__all__ = ["PipelineOfFarms", "FarmOfPipelines"]


class PipelineOfFarms(Skeleton):
    """A pipeline in which every stage is marked replicable (farmable).

    The composition is expressed by lowering to a :class:`Pipeline` whose
    stages carry ``replicable=True``; the adaptive executor may then assign
    several nodes to one stage.
    """

    def __init__(self, stages: Sequence[Stage], name: str = "pipeline_of_farms"):
        super().__init__(name=name)
        if len(stages) == 0:
            raise SkeletonError("PipelineOfFarms needs at least one stage")
        replicated = [
            Stage(fn=stage.fn, cost_model=stage.cost_model,
                  name=stage.name or f"stage{i}", replicable=True)
            for i, stage in enumerate(stages)
        ]
        self.pipeline = Pipeline(replicated, name=name)

    def lower(self) -> Pipeline:
        """The equivalent primitive :class:`Pipeline`."""
        return self.pipeline

    @property
    def properties(self) -> SkeletonProperties:
        inner = self.pipeline.properties
        return SkeletonProperties(
            name="pipeline_of_farms",
            min_nodes=inner.min_nodes,
            redistributable=True,
            ordered_output=inner.ordered_output,
            monitoring_unit="stage_round",
            stateless_workers=True,
        )

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        return self.pipeline.make_tasks(inputs)

    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        return self.pipeline.run_sequential(inputs)


class FarmOfPipelines(Skeleton):
    """A farm whose worker threads each item through an inner pipeline.

    The composition is expressed by lowering to a :class:`TaskFarm` whose
    worker runs the inner pipeline sequentially on one item, and whose cost
    model is the sum of the inner stages' per-item costs.
    """

    def __init__(self, stages: Sequence[Stage], ordered: bool = False,
                 name: str = "farm_of_pipelines"):
        super().__init__(name=name)
        if len(stages) == 0:
            raise SkeletonError("FarmOfPipelines needs at least one stage")
        self.inner = Pipeline(list(stages), name=f"{name}/inner")

        def worker(item: Any) -> Any:
            value = item
            for stage in self.inner.stages:
                value = stage.fn(value)
            return value

        def cost(item: Any) -> float:
            # The per-item cost of the whole inner pipeline.  Intermediate
            # values are recomputed; cost models are expected to be cheap
            # relative to the workloads they describe.
            total = 0.0
            value = item
            for stage in self.inner.stages:
                total += stage.cost(value)
                value = stage.fn(value)
            return total

        self.farm = TaskFarm(worker=worker, cost_model=cost, ordered=ordered,
                             name=name)

    def lower(self) -> TaskFarm:
        """The equivalent primitive :class:`TaskFarm`."""
        return self.farm

    @property
    def properties(self) -> SkeletonProperties:
        return SkeletonProperties(
            name="farm_of_pipelines",
            min_nodes=1,
            redistributable=True,
            ordered_output=self.farm.ordered,
            monitoring_unit="task",
            stateless_workers=True,
        )

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        return self.farm.make_tasks(inputs)

    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        return self.inner.run_sequential(inputs)
