"""Skeleton composition.

"Parallel programs are expressed by interweaving parameterised skeletons
analogously to the way sequential structured programs are constructed"
(paper, Introduction).  This module provides the two compositions the
structured-parallelism literature uses most:

* :class:`PipelineOfFarms` — a pipeline whose stages are each replicated as
  small farms (useful when one stage dominates).
* :class:`FarmOfPipelines` — a farm whose worker is itself a whole pipeline
  applied per item (useful when items are independent but internally
  multi-phase).

Both lower onto the execution-plan IR (:mod:`repro.core.plan`), so the
one adaptive plan executor runs them *as compositions*:
``PipelineOfFarms`` becomes a chain whose stages carry a standing
replication hint (spare chosen nodes farm its stages without extra
configuration), and ``FarmOfPipelines`` becomes a **nested** plan — a
fan whose unit is the inner chain, dispatched stage-by-stage through the
backend chain primitive instead of being flattened into one opaque
worker callable.  The collapsed primitive forms remain reachable as
``.pipeline`` / ``.farm`` for callers that want them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, List, Sequence

from repro.exceptions import SkeletonError
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.taskfarm import TaskFarm
from repro.skeletons.base import Skeleton, SkeletonProperties, Task

__all__ = ["PipelineOfFarms", "FarmOfPipelines"]


@dataclass(frozen=True)
class _InnerPipelineWorker:
    """Picklable farm worker threading one item through an inner pipeline.

    The collapsed (``.farm``) form of :class:`FarmOfPipelines` ships this
    across process/cluster boundaries, so it must not be a closure.
    """

    pipeline: Pipeline

    def __call__(self, item: Any) -> Any:
        return self.pipeline.run_item(item)


@dataclass(frozen=True)
class _InnerPipelineCost:
    """Picklable per-item cost of a whole inner pipeline.

    Intermediate values are recomputed; cost models are expected to be
    cheap relative to the workloads they describe.
    """

    pipeline: Pipeline

    def __call__(self, item: Any) -> float:
        return self.pipeline.total_cost(item)


class PipelineOfFarms(Skeleton):
    """A pipeline in which every stage is marked replicable (farmable).

    The composition lowers to a chain plan whose stages carry
    ``replicable=True`` *and* a standing ``replicate=True`` hint; the
    adaptive executor then assigns the spare chosen nodes as stage
    replicas without the run having to set
    ``ExecutionConfig.replicate_stages``.
    """

    def __init__(self, stages: Sequence[Stage], name: str = "pipeline_of_farms"):
        super().__init__(name=name)
        if len(stages) == 0:
            raise SkeletonError("PipelineOfFarms needs at least one stage")
        replicated = [
            Stage(fn=stage.fn, cost_model=stage.cost_model,
                  name=stage.name or f"stage{i}", replicable=True)
            for i, stage in enumerate(stages)
        ]
        self.pipeline = Pipeline(replicated, name=name)

    def lower(self):
        """Lower onto the IR: the inner chain with a replication hint."""
        return replace(self.pipeline.lower(), replicate=True)

    @property
    def properties(self) -> SkeletonProperties:
        inner = self.pipeline.properties
        return SkeletonProperties(
            name="pipeline_of_farms",
            min_nodes=inner.min_nodes,
            redistributable=True,
            ordered_output=inner.ordered_output,
            monitoring_unit="stage_round",
            stateless_workers=True,
        )

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        return self.pipeline.make_tasks(inputs)

    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        return self.pipeline.run_sequential(inputs)


class FarmOfPipelines(Skeleton):
    """A farm whose worker threads each item through an inner pipeline.

    The composition lowers to a **nested** plan: a fan of independent
    items whose unit is the inner chain, dispatched through the backend
    chain primitive with every stage picking the earliest-free chosen
    node.  The collapsed form — a plain :class:`TaskFarm` whose worker
    runs the inner pipeline on one node — remains available as
    ``.farm``.
    """

    def __init__(self, stages: Sequence[Stage], ordered: bool = False,
                 name: str = "farm_of_pipelines"):
        super().__init__(name=name)
        if len(stages) == 0:
            raise SkeletonError("FarmOfPipelines needs at least one stage")
        self.inner = Pipeline(list(stages), name=f"{name}/inner")
        self.farm = TaskFarm(
            worker=_InnerPipelineWorker(self.inner),
            cost_model=_InnerPipelineCost(self.inner),
            ordered=ordered,
            name=name,
        )

    def lower(self):
        """Lower onto the IR: a fan whose unit is the inner chain."""
        from repro.core.plan import FanPlan  # local: core layers on skeletons

        return FanPlan(body=self.inner.lower(),
                       min_nodes=self.properties.min_nodes)

    @property
    def properties(self) -> SkeletonProperties:
        return SkeletonProperties(
            name="farm_of_pipelines",
            min_nodes=1,
            redistributable=True,
            ordered_output=self.farm.ordered,
            monitoring_unit="task",
            stateless_workers=True,
        )

    def make_tasks(self, inputs: Iterable[Any]) -> List[Task]:
        return self.farm.make_tasks(inputs)

    def run_sequential(self, inputs: Iterable[Any]) -> List[Any]:
        return self.inner.run_sequential(inputs)
