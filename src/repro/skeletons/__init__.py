"""Algorithmic skeletons.

"Algorithmic skeletons abstract commonly-used patterns of parallel
computation, communication, and interaction" (paper, Introduction).  GRASP
ships two of them — the *task farm* and the *pipeline* — and this package
also provides the common extensions (map, reduce, divide-and-conquer and
composition) exercised by the extension experiments.

A skeleton object is a *declarative description* of the parallel structure:
it holds the user's sequential function(s), a cost model (work units per
item, used by the virtual-time simulator) and the skeleton's intrinsic
properties (the information GRASP instruments for adaptation).  Execution is
performed by an executor: the adaptive GRASP runtime (:mod:`repro.core`) or
the non-adaptive baselines (:mod:`repro.baselines`).
"""

from __future__ import annotations

from repro.skeletons.base import (
    CostModel,
    Skeleton,
    SkeletonProperties,
    Task,
    TaskResult,
    constant_cost,
    callable_cost,
)
from repro.skeletons.taskfarm import TaskFarm
from repro.skeletons.pipeline import Pipeline, Stage
from repro.skeletons.map import MapSkeleton
from repro.skeletons.reduce import ReduceSkeleton
from repro.skeletons.divide_conquer import DivideAndConquer
from repro.skeletons.composition import FarmOfPipelines, PipelineOfFarms

__all__ = [
    "Skeleton",
    "SkeletonProperties",
    "Task",
    "TaskResult",
    "CostModel",
    "constant_cost",
    "callable_cost",
    "TaskFarm",
    "Pipeline",
    "Stage",
    "MapSkeleton",
    "ReduceSkeleton",
    "DivideAndConquer",
    "FarmOfPipelines",
    "PipelineOfFarms",
]
