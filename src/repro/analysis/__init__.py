"""Analysis: metrics, experiment harness and report generation.

This package turns runtime reports (:class:`repro.core.grasp.GraspResult`
and :class:`repro.baselines.result.BaselineResult`) into the numbers the
paper's evaluation talks about — makespan, speedup, efficiency, load
imbalance, adaptation overhead — and provides the experiment-runner
machinery the benchmark suite (``benchmarks/``) and ``EXPERIMENTS.md`` are
built on.
"""

from __future__ import annotations

from repro.analysis.metrics import (
    RunMetrics,
    adaptation_overhead,
    efficiency,
    load_imbalance,
    makespan,
    speedup,
    summarise_run,
    throughput,
)
from repro.analysis.experiments import (
    ComparisonResult,
    ExperimentTable,
    compare_farm,
    compare_pipeline,
    sweep,
)
from repro.analysis.reporting import format_series, format_table, to_markdown

__all__ = [
    "RunMetrics",
    "makespan",
    "speedup",
    "efficiency",
    "throughput",
    "load_imbalance",
    "adaptation_overhead",
    "summarise_run",
    "ComparisonResult",
    "ExperimentTable",
    "compare_farm",
    "compare_pipeline",
    "sweep",
    "format_table",
    "format_series",
    "to_markdown",
]
