"""The experiment harness.

Every experiment in ``EXPERIMENTS.md`` boils down to one of three shapes:

* **comparison** — run the adaptive GRASP skeleton and one or more baselines
  on *identical* grids (same seed, same load traces) and the same workload,
  then compare makespans (:func:`compare_farm`, :func:`compare_pipeline`);
* **sweep** — repeat a comparison while varying one experimental axis
  (node count, threshold factor, compute/communication ratio, heterogeneity)
  and collect one row per axis value (:func:`sweep`);
* **table** — a named collection of rows with fixed columns
  (:class:`ExperimentTable`), which the benchmark harness prints in the same
  layout as the paper's reporting.

Grids must be rebuilt per run (each executor mutates its simulator), so the
harness takes *factories* rather than instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.metrics import RunMetrics, summarise_run
from repro.baselines.static_farm import DemandDrivenFarm, StaticFarm
from repro.baselines.static_pipeline import StaticPipeline
from repro.core.grasp import Grasp, GraspResult
from repro.core.parameters import GraspConfig
from repro.exceptions import AnalysisError
from repro.grid.topology import GridTopology
from repro.skeletons.pipeline import Pipeline
from repro.skeletons.base import Skeleton

__all__ = [
    "ComparisonResult",
    "ExperimentTable",
    "compare_farm",
    "compare_pipeline",
    "sweep",
]

GridFactory = Callable[[], GridTopology]
SkeletonFactory = Callable[[], Skeleton]


@dataclass
class ComparisonResult:
    """Adaptive-vs-baseline comparison on identical grids."""

    adaptive: RunMetrics
    baselines: Dict[str, RunMetrics]
    adaptive_result: GraspResult
    workload_label: str = ""

    def improvement_over(self, baseline_label: str) -> float:
        """Baseline makespan divided by adaptive makespan (>1 ⇒ adaptive wins)."""
        if baseline_label not in self.baselines:
            raise AnalysisError(f"unknown baseline {baseline_label!r}")
        return self.baselines[baseline_label].makespan / self.adaptive.makespan

    def rows(self) -> List[Dict[str, Any]]:
        """One row per strategy (adaptive first), ready for tabulation."""
        rows = [self.adaptive.as_dict()]
        rows.extend(self.baselines[label].as_dict() for label in sorted(self.baselines))
        return rows


@dataclass
class ExperimentTable:
    """A named table of result rows with fixed column order."""

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Append a row; missing columns are filled with ``None``."""
        self.rows.append({column: row.get(column) for column in self.columns})

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise AnalysisError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def compare_farm(
    skeleton_factory: SkeletonFactory,
    inputs_factory: Callable[[], Iterable[Any]],
    grid_factory: GridFactory,
    config: Optional[GraspConfig] = None,
    baselines: Sequence[str] = ("static-block", "static-weighted"),
    workload_label: str = "farm",
) -> ComparisonResult:
    """Run the adaptive farm and the requested baselines on identical grids.

    ``baselines`` may contain ``"static-block"``, ``"static-cyclic"``,
    ``"static-weighted"`` and ``"demand-driven"``.
    """
    grid = grid_factory()
    grasp = Grasp(skeleton=skeleton_factory(), grid=grid, config=config)
    adaptive_result = grasp.run(inputs_factory())
    adaptive_metrics = summarise_run(adaptive_result, grid, label="grasp-adaptive")

    baseline_metrics: Dict[str, RunMetrics] = {}
    for label in baselines:
        baseline_grid = grid_factory()
        if label.startswith("static-"):
            runner = StaticFarm(skeleton_factory(), baseline_grid,
                                strategy=label.split("-", 1)[1])
        elif label == "demand-driven":
            runner = DemandDrivenFarm(skeleton_factory(), baseline_grid)
        else:
            raise AnalysisError(f"unknown farm baseline {label!r}")
        result = runner.run(inputs_factory())
        baseline_metrics[label] = summarise_run(result, baseline_grid, label=label)

    return ComparisonResult(
        adaptive=adaptive_metrics,
        baselines=baseline_metrics,
        adaptive_result=adaptive_result,
        workload_label=workload_label,
    )


def compare_pipeline(
    pipeline_factory: Callable[[], Pipeline],
    inputs_factory: Callable[[], Iterable[Any]],
    grid_factory: GridFactory,
    config: Optional[GraspConfig] = None,
    baselines: Sequence[str] = ("declaration", "speed"),
    workload_label: str = "pipeline",
) -> ComparisonResult:
    """Run the adaptive pipeline and static-mapping baselines on identical grids."""
    grid = grid_factory()
    grasp = Grasp(skeleton=pipeline_factory(), grid=grid, config=config)
    adaptive_result = grasp.run(inputs_factory())
    adaptive_metrics = summarise_run(adaptive_result, grid, label="grasp-adaptive")

    baseline_metrics: Dict[str, RunMetrics] = {}
    for label in baselines:
        baseline_grid = grid_factory()
        runner = StaticPipeline(pipeline_factory(), baseline_grid, mapping=label)
        result = runner.run(inputs_factory())
        baseline_metrics[label] = summarise_run(result, baseline_grid,
                                                label=f"static-{label}")

    return ComparisonResult(
        adaptive=adaptive_metrics,
        baselines=baseline_metrics,
        adaptive_result=adaptive_result,
        workload_label=workload_label,
    )


def sweep(
    axis_name: str,
    axis_values: Sequence[Any],
    run_fn: Callable[[Any], Mapping[str, Any]],
    title: str = "sweep",
    extra_columns: Sequence[str] = (),
) -> ExperimentTable:
    """Run ``run_fn`` for each axis value and collect one row per value.

    ``run_fn`` receives the axis value and returns a mapping of column name
    to value; the axis value itself is stored under ``axis_name``.
    """
    if not axis_values:
        raise AnalysisError("sweep needs at least one axis value")
    columns = [axis_name, *extra_columns]
    table: Optional[ExperimentTable] = None
    for value in axis_values:
        row = dict(run_fn(value))
        row[axis_name] = value
        if table is None:
            # Fix column order on the first row: axis, declared extras, then
            # any additional keys the run function produced.
            dynamic = [k for k in row if k not in columns]
            table = ExperimentTable(title=title, columns=columns + dynamic)
        table.add_row(row)
    assert table is not None
    return table
