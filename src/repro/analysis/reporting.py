"""Plain-text and Markdown rendering of experiment tables.

The benchmark harness prints each experiment's table with
:func:`format_table` so the ``bench_output.txt`` artefact contains the same
rows the paper's evaluation would report; :func:`to_markdown` produces the
fragments pasted into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.experiments import ExperimentTable
from repro.exceptions import AnalysisError

__all__ = ["format_table", "format_series", "to_markdown"]


def _format_value(value: Any, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(table: ExperimentTable, precision: int = 3) -> str:
    """Render an :class:`ExperimentTable` as an aligned plain-text table."""
    if not table.rows:
        return f"== {table.title} ==\n(no rows)"
    headers = list(table.columns)
    rendered_rows = [
        [_format_value(row.get(col), precision) for col in headers]
        for row in table.rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows))
        for i in range(len(headers))
    ]
    lines = [f"== {table.title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    if table.notes:
        lines.append(f"notes: {table.notes}")
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any], ys: Sequence[Any], x_label: str = "x", y_label: str = "y",
    title: str = "series", precision: int = 3,
) -> str:
    """Render a figure's (x, y) series as two aligned columns.

    Used for experiments that reproduce *figures* rather than tables: the
    series is what the figure plots.
    """
    if len(xs) != len(ys):
        raise AnalysisError("series needs equally long x and y sequences")
    table = ExperimentTable(title=title, columns=[x_label, y_label])
    for x, y in zip(xs, ys):
        table.add_row({x_label: x, y_label: y})
    return format_table(table, precision=precision)


def to_markdown(table: ExperimentTable, precision: int = 3) -> str:
    """Render an :class:`ExperimentTable` as a GitHub-flavoured Markdown table."""
    headers = list(table.columns)
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in table.rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(col), precision) for col in headers) + " |"
        )
    return "\n".join(lines)
