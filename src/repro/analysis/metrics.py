"""Performance metrics over run reports.

All metrics operate on virtual time, so they are exact and deterministic for
a given experiment seed.  ``speedup`` and ``efficiency`` are computed against
the *ideal sequential time*: the total task cost divided by the speed of the
fastest node in the grid (the best any single dedicated node could do),
which is the convention the skeleton-performance literature uses when real
single-node runs are impractical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.baselines.result import BaselineResult
from repro.core.grasp import GraspResult
from repro.exceptions import AnalysisError
from repro.grid.topology import GridTopology

__all__ = [
    "RunMetrics",
    "makespan",
    "ideal_sequential_time",
    "speedup",
    "efficiency",
    "throughput",
    "load_imbalance",
    "adaptation_overhead",
    "summarise_run",
]

RunLike = Union[GraspResult, BaselineResult]


@dataclass(frozen=True)
class RunMetrics:
    """Summary metrics of one run (adaptive or baseline)."""

    label: str
    makespan: float
    speedup: float
    efficiency: float
    throughput: float
    load_imbalance: float
    tasks: int
    nodes_used: int
    recalibrations: int

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation."""
        return {
            "label": self.label,
            "makespan": self.makespan,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "throughput": self.throughput,
            "load_imbalance": self.load_imbalance,
            "tasks": self.tasks,
            "nodes_used": self.nodes_used,
            "recalibrations": self.recalibrations,
        }


def makespan(run: RunLike) -> float:
    """Virtual wall time of the run."""
    return float(run.makespan)


def _total_cost(run: RunLike) -> float:
    """Total work (in work units) completed by the run.

    The per-task cost is not stored on the result record, so we reconstruct
    work from per-task compute durations times the executing node's nominal
    speed — exact when the node was idle, a slight over-estimate under
    external load, which is acceptable for the shape-level comparisons the
    experiments make.
    """
    return float(sum(max(r.finished - r.started, 0.0) for r in run.results))


def ideal_sequential_time(total_cost: float, grid: GridTopology) -> float:
    """Time the whole job would take on the grid's fastest node, dedicated."""
    if total_cost < 0:
        raise AnalysisError(f"total_cost must be >= 0, got {total_cost}")
    fastest = max(node.speed for node in grid.nodes)
    return total_cost / fastest


def speedup(run: RunLike, grid: GridTopology, total_cost: Optional[float] = None) -> float:
    """Ideal-sequential-time / makespan."""
    if run.makespan <= 0:
        raise AnalysisError("cannot compute speedup of a zero-makespan run")
    if total_cost is None:
        sequential = _sequential_estimate(run, grid)
    else:
        sequential = ideal_sequential_time(total_cost, grid)
    return sequential / run.makespan


def _sequential_estimate(run: RunLike, grid: GridTopology) -> float:
    """Estimate sequential time from observed compute durations.

    Each task's work is its observed duration × its node's nominal speed;
    the sequential time is that total work divided by the fastest node's
    speed.
    """
    fastest = max(node.speed for node in grid.nodes)
    total_work = 0.0
    for result in run.results:
        node = grid.node(result.node_id)
        total_work += max(result.finished - result.started, 0.0) * node.speed
    return total_work / fastest


def efficiency(run: RunLike, grid: GridTopology, nodes_used: Optional[int] = None,
               total_cost: Optional[float] = None) -> float:
    """Speedup divided by the number of nodes that actually ran tasks."""
    used = nodes_used if nodes_used is not None else len(run.per_node_counts())
    if used <= 0:
        raise AnalysisError("efficiency needs at least one node")
    return speedup(run, grid, total_cost=total_cost) / used


def throughput(run: RunLike) -> float:
    """Completed tasks per virtual second."""
    if run.makespan <= 0:
        raise AnalysisError("cannot compute throughput of a zero-makespan run")
    return len(run.results) / run.makespan


def load_imbalance(run: RunLike) -> float:
    """Imbalance of per-node busy time: ``max / mean − 1`` (0 = perfect).

    Busy time is the sum of compute durations per node over the whole run.
    """
    busy: Dict[str, float] = {}
    for result in run.results:
        busy[result.node_id] = busy.get(result.node_id, 0.0) + max(
            result.finished - result.started, 0.0
        )
    if not busy:
        raise AnalysisError("run has no results")
    values = np.array(list(busy.values()))
    mean = values.mean()
    if mean == 0:
        return 0.0
    return float(values.max() / mean - 1.0)


def adaptation_overhead(result: GraspResult) -> float:
    """Fraction of the makespan spent in (re)calibration phases."""
    if result.makespan <= 0:
        return 0.0
    from repro.core.phases import Phase  # local import to avoid cycles at module load

    calibration_time = result.phases.total_duration(Phase.CALIBRATION)
    return calibration_time / result.makespan


def summarise_run(run: RunLike, grid: GridTopology, label: str = "run",
                  total_cost: Optional[float] = None) -> RunMetrics:
    """Compute the full :class:`RunMetrics` record for one run."""
    recalibrations = getattr(run, "recalibrations", 0)
    return RunMetrics(
        label=label,
        makespan=makespan(run),
        speedup=speedup(run, grid, total_cost=total_cost),
        efficiency=efficiency(run, grid, total_cost=total_cost),
        throughput=throughput(run),
        load_imbalance=load_imbalance(run),
        tasks=len(run.results),
        nodes_used=len(run.per_node_counts()),
        recalibrations=int(recalibrations),
    )
