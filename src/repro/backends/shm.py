"""Zero-copy shared-memory data plane for large payloads and results.

The control plane got fast in PR 6 (payload registry, binary frames); this
module attacks the *data* plane.  Large task arguments and results no
longer round-trip as inline pickles through a pipe or a TCP frame:
:func:`dumps_oob` serialises with pickle protocol 5 and a
``buffer_callback``, spills every out-of-band buffer at or above a
threshold (default 64KiB) into one named POSIX shared-memory segment, and
ships only ``(name, offset, length)`` descriptors inline.  The receiving
process attaches the segment and reconstructs the object with
``pickle.loads(..., buffers=...)`` straight over views of the mapping —
one memcpy on the sending side and *zero* on the receiving side, instead
of pickle-copy + two kernel pipe copies + unpickle-copy.  Reconstructed
buffer consumers (numpy arrays) alias the mapping: it stays mapped —
pinned, see :func:`_release_view_segment` — until the consumer's objects
die, at which point a later sweep closes it.  Owned (``take=True``)
segments are unlinked at attach time, so a pinned mapping never shows in
``/dev/shm``; its memory cost equals what an eager copy would have paid.
Because the *pickle body itself* is also spilled once it
crosses the threshold, plain ``bytes``/``str`` results (which produce no
protocol-5 out-of-band buffers) ride the segment too, which is what lifts
the 64MiB frame ceiling on local cluster paths.

Ownership and cleanup rules (the part that keeps ``/dev/shm`` clean):

* **Argument segments** are created by the sender through a
  :class:`BufferRegistry` and stay owned by the sender.  The consumer
  *borrows* them (:func:`loads_oob` with ``take=False``: attach without
  resource-tracker registration, reconstruct over views, close when the
  views die).  The sender releases its segments when the dispatch
  resolves — including the lost-task and broken-pool paths, which run
  the same release callback; an owner unlink never invalidates a
  borrower's still-open mapping.
* **Result segments** are created by the worker without a registry
  (fire-and-forget) and ownership transfers to the receiver:
  :func:`loads_oob` with ``take=True`` attaches and *unlinks
  immediately*, reconstructs over views, and closes the mapping once
  the consumer's objects die.  The creator disowns its resource-tracker claim immediately
  (see :func:`disown_segment`) — the unlink duty travels with the
  envelope — so a worker's tracker can neither warn about nor prematurely
  unlink a segment the parent/coordinator still reads.  A worker killed
  *mid-task* has created no result segment yet, so worker death leaks
  nothing; only a crash in the microseconds between segment creation and
  result hand-off can strand one (cleared at latest by the backend's
  ``close()`` leak sweep on the sender side or a ``/dev/shm`` janitor).

Construction of ``multiprocessing.shared_memory.SharedMemory`` objects is
confined to this module (enforced by graspcheck rule GC010) so the
lifecycle rules above cannot be bypassed ad hoc.
"""

from __future__ import annotations

import pickle
import sys
import threading
import uuid
from dataclasses import dataclass
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "SEGMENT_PREFIX",
    "BufferRegistry",
    "SegmentRef",
    "ShmEnvelope",
    "ShmPayload",
    "destroy_payload",
    "disown_segment",
    "dumps_oob",
    "loads_oob",
    "probe_size",
    "run_oob",
]

#: Buffers (and pickle bodies) at or above this many bytes spill into a
#: shared-memory segment; below it they ship inline, bit-identically to
#: the classic path.  64KiB ~ where one extra memcpy beats pipe/TCP
#: framing on current hardware; tune via ``ExecutionConfig.shm_threshold``.
DEFAULT_SHM_THRESHOLD: int = 64 * 1024

#: Every segment name starts with this prefix so leak checks (CI's
#: ``/dev/shm`` scan) and operators can attribute segments to the runtime.
SEGMENT_PREFIX: str = "grasp-"


def _new_name() -> str:
    return SEGMENT_PREFIX + uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SegmentRef:
    """One contiguous region of a named shared-memory segment."""

    name: str
    length: int
    offset: int = 0


@dataclass(frozen=True)
class ShmPayload:
    """A pickled object with its large parts spilled to shared memory.

    ``body`` is the protocol-5 pickle body when it stayed under the
    threshold, else ``b""`` with ``body_ref`` pointing at the spilled
    body.  ``buffers`` holds the out-of-band buffers in pickle order —
    inline ``bytes`` for small ones, :class:`SegmentRef` descriptors for
    spilled ones.  The whole dataclass is small and cheap to pickle, so
    it travels over the existing inline transports unchanged.
    """

    body: bytes
    body_ref: Optional[SegmentRef] = None
    buffers: Tuple[Union[bytes, SegmentRef], ...] = ()

    def segment_names(self) -> List[str]:
        """Distinct segment names referenced (creation order)."""
        seen: Dict[str, None] = {}
        if self.body_ref is not None:
            seen.setdefault(self.body_ref.name, None)
        for buf in self.buffers:
            if isinstance(buf, SegmentRef):
                seen.setdefault(buf.name, None)
        return list(seen)

    @property
    def inline_bytes(self) -> int:
        """Bytes that still travel inline (body + small buffers)."""
        return len(self.body) + sum(
            len(buf) for buf in self.buffers if isinstance(buf, bytes))

    @property
    def shm_bytes(self) -> int:
        """Bytes that travel via shared memory."""
        total = 0 if self.body_ref is None else self.body_ref.length
        return total + sum(
            buf.length for buf in self.buffers if isinstance(buf, SegmentRef))


@dataclass(frozen=True)
class ShmEnvelope:
    """Marker wrapper distinguishing a spilled payload from a real value.

    Dispatch args and results wrapped in an envelope pass through the
    existing transports (pipe pickles, v2 out-of-band frames) unchanged;
    the receiving side unwraps with :func:`loads_oob`.  A value that is
    *not* an envelope took the classic inline path.
    """

    payload: ShmPayload


@dataclass
class _Entry:
    segment: SharedMemory
    refs: int = 1


class BufferRegistry:
    """Refcounted owner of the shared-memory segments one process created.

    Thread-safe.  ``create`` hands out a fresh ``grasp-*`` segment at one
    reference; ``release`` drops a reference and closes + unlinks at
    zero; ``disown`` forgets a segment whose ownership moved to another
    process; ``close`` force-unlinks everything still held (backend
    shutdown — nothing may leak past it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}

    def create(self, nbytes: int) -> SharedMemory:
        """A new owned segment of ``nbytes`` bytes (refcount 1)."""
        if nbytes <= 0:
            raise ValueError(f"segment size must be positive, got {nbytes}")
        segment = SharedMemory(name=_new_name(), create=True, size=nbytes)
        with self._lock:
            self._entries[segment.name] = _Entry(segment)
        return segment

    def retain(self, name: str) -> None:
        """Add a reference to an owned segment."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                entry.refs += 1

    def release(self, name: str) -> None:
        """Drop a reference; close + unlink when it hits zero."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return
            entry.refs -= 1
            if entry.refs > 0:
                return
            del self._entries[name]
        _destroy(entry.segment)

    def release_many(self, names: List[str]) -> None:
        for name in names:
            self.release(name)

    def disown(self, name: str) -> Optional[SharedMemory]:
        """Forget ``name`` without unlinking (ownership transferred)."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            return None
        entry.segment.close()
        return entry.segment

    def close(self) -> None:
        """Unlink every segment still owned; idempotent."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            _destroy(entry.segment)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def names(self) -> List[str]:
        with self._lock:
            return list(self._entries)


def _destroy(segment: SharedMemory) -> None:
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        # A take-ownership consumer already unlinked it; the tracker
        # entry (if any) is gone with the name, nothing left to do.
        pass


def disown_segment(name: str) -> None:
    """Drop ``name`` from this process's resource tracker.

    Called right after creating a fire-and-forget segment: ownership of
    the segment (and with it the unlink duty) travels to whoever
    reconstructs the payload, so the creator's tracker must not warn
    about — or, when trackers are shared across the process tree, even
    unlink — a segment someone else still reads.  The tracker keys
    segments by their raw slash-prefixed POSIX name.
    """
    try:
        resource_tracker.unregister("/" + name if not name.startswith("/") else name,
                                    "shared_memory")
    except (KeyError, ValueError):  # pragma: no cover - tracker internals
        pass


_ATTACH_LOCK = threading.Lock()


def _register_noop(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during a borrow attach."""


def _attach(name: str, take: bool) -> SharedMemory:
    """Attach to an existing segment.

    ``take=True`` keeps the default resource-tracker registration: the
    caller will ``unlink()`` right after copying out, which unregisters
    again — balanced, and crash-safe in between.  ``take=False``
    borrows: the attach must leave *no* tracker registration behind
    (``track=False`` on Python 3.13+).  On older Pythons attaching
    registers unconditionally and the tracker's cache is a plain set
    shared by the whole process tree, so registering and unregistering
    after the fact would erase the owner's claim; instead the
    registration call is suppressed for the duration of the attach
    (under a lock — the suppression is process-local and brief).
    """
    if take:
        return SharedMemory(name=name)
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = _register_noop  # type: ignore[assignment]
        try:
            return SharedMemory(name=name)
        finally:
            resource_tracker.register = original  # type: ignore[assignment]


def _raw_view(buffer: pickle.PickleBuffer) -> memoryview:
    """A flat bytes-format view of an out-of-band buffer."""
    try:
        return buffer.raw()
    except BufferError:
        # Non-contiguous exporter (rare: pickle5 consumers are expected
        # to hand over contiguous memory); fall back to a flat copy.
        return memoryview(memoryview(buffer).tobytes())


def dumps_oob(
    obj: Any,
    *,
    threshold: int = DEFAULT_SHM_THRESHOLD,
    registry: Optional[BufferRegistry] = None,
) -> Tuple[ShmPayload, List[str]]:
    """Pickle ``obj``, spilling large parts into one shared segment.

    Returns ``(payload, segment_names)``.  All spilled buffers of the
    payload pack into a single segment at consecutive offsets, so
    ``segment_names`` is ``[]`` (nothing crossed the threshold — the
    payload is purely inline) or one name.  With a ``registry`` the
    segment is owned/refcounted there (sender side); without one it is
    fire-and-forget (worker results — the receiver takes ownership).
    """
    if threshold < 1:
        raise ValueError(f"shm threshold must be >= 1, got {threshold}")
    raw: List[pickle.PickleBuffer] = []
    body = pickle.dumps(obj, protocol=5, buffer_callback=raw.append)
    views = [_raw_view(buffer) for buffer in raw]
    spill_body = len(body) >= threshold
    total = (len(body) if spill_body else 0) + sum(
        view.nbytes for view in views if view.nbytes >= threshold)
    if total == 0:
        return ShmPayload(body=body,
                          buffers=tuple(view.tobytes() for view in views)), []
    if registry is not None:
        segment = registry.create(total)
    else:
        segment = SharedMemory(name=_new_name(), create=True, size=total)
    offset = 0
    buffers: List[Union[bytes, SegmentRef]] = []
    for view in views:
        if view.nbytes >= threshold:
            segment.buf[offset:offset + view.nbytes] = view
            buffers.append(SegmentRef(segment.name, view.nbytes, offset))
            offset += view.nbytes
        else:
            buffers.append(view.tobytes())
    body_ref: Optional[SegmentRef] = None
    if spill_body:
        segment.buf[offset:offset + len(body)] = body
        body_ref = SegmentRef(segment.name, len(body), offset)
        body = b""
    if registry is None:
        # Fire-and-forget: ownership — including the unlink duty — travels
        # with the returned payload, so drop both this process's mapping
        # and its resource-tracker claim (a stale claim makes the tracker
        # warn about, or on another tracker even unlink, a segment the
        # receiver still reads).  The cost is a tiny crash window between
        # here and the result send where nobody would clean the segment.
        segment.close()
        disown_segment(segment.name)
    return ShmPayload(body=body, body_ref=body_ref,
                      buffers=tuple(buffers)), [segment.name]


#: Mappings whose close raised ``BufferError`` because reconstructed
#: objects (numpy arrays) still view them.  ``/dev/shm`` is already
#: clean — owned segments unlink at attach — so a pinned mapping costs
#: exactly the memory an eager copy would have; later sweeps retry the
#: close once the consumer's objects die.
_PINNED: List[SharedMemory] = []
_PINNED_LOCK = threading.Lock()


def _sweep_pinned() -> None:
    """Retry closing pinned mappings whose last views have died."""
    with _PINNED_LOCK:
        if not _PINNED:
            return
        pinned, _PINNED[:] = _PINNED[:], []
    survivors = []
    for segment in pinned:
        try:
            segment.close()
        except BufferError:
            survivors.append(segment)
    if survivors:
        with _PINNED_LOCK:
            _PINNED.extend(survivors)


def _release_view_segment(segment: SharedMemory) -> None:
    """Close a mapping now, or pin it until its exported views die."""
    try:
        segment.close()
    except BufferError:
        with _PINNED_LOCK:
            _PINNED.append(segment)


def _loads_views(
    payload: ShmPayload, *, take: bool,
) -> Tuple[Any, List[SharedMemory]]:
    """Reconstruct over direct segment views; caller releases the mappings.

    Returns ``(obj, segments)``.  With ``take=True`` the segments are
    unlinked at attach (ownership transferred — balanced against the
    attach's tracker registration), with ``take=False`` they stay linked
    for their owner.  Either way the mappings in ``segments`` are still
    open: buffer consumers inside ``obj`` alias them, so the caller must
    hand each one to :func:`_release_view_segment` once it no longer
    guarantees the views' validity.
    """
    segments: Dict[str, SharedMemory] = {}

    def fetch(ref: SegmentRef) -> memoryview:
        segment = segments.get(ref.name)
        if segment is None:
            segment = _attach(ref.name, take)
            if take:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            segments[ref.name] = segment
        return segment.buf[ref.offset:ref.offset + ref.length]

    body = (payload.body if payload.body_ref is None
            else fetch(payload.body_ref))
    buffers = [buffer if isinstance(buffer, bytes) else fetch(buffer)
               for buffer in payload.buffers]
    obj = pickle.loads(body, buffers=buffers)
    return obj, list(segments.values())


def loads_oob(payload: ShmPayload, *, take: bool) -> Any:
    """Reconstruct the object of a :class:`ShmPayload`, zero-copy.

    Referenced regions are handed to ``pickle.loads`` as direct views of
    the attached mapping: plain ``bytes``/``str`` parts materialise as
    private objects during the load, while buffer consumers (numpy
    arrays) come back as *writable views over the mapping* and keep it
    open until they die (the mapping is pinned and closed by a later
    sweep — see :func:`_sweep_pinned`).  ``take=True`` transfers
    ownership to this process and unlinks the segment at attach time
    (results); ``take=False`` borrows segments someone else still owns
    (arguments) — an owner release never invalidates the borrow, because
    a POSIX unlink leaves open mappings intact.
    """
    _sweep_pinned()
    obj, segments = _loads_views(payload, take=take)
    for segment in segments:
        _release_view_segment(segment)
    return obj


def destroy_payload(payload: ShmPayload) -> None:
    """Unlink the segments of a payload whose hand-off failed.

    A fire-and-forget payload whose envelope never reached the receiver
    (result send failed, coordinator gone) has nobody left to take
    ownership — the creator must reclaim the unlink duty or the segment
    outlives the run in ``/dev/shm``.  Idempotent; missing segments are
    fine (the receiver got it after all).
    """
    for name in payload.segment_names():
        try:
            # take=True attach: registration balances unlink's unregister.
            _destroy(_attach(name, take=True))
        except FileNotFoundError:
            pass


def probe_size(obj: Any, depth: int = 4) -> int:
    """Cheap recursive lower bound on the serialised size of ``obj``.

    Used as a quick gate before paying for a protocol-5 pickle: objects
    probing under the threshold keep the classic inline path with zero
    extra serialisation work.  Depth-limited; containers and
    ``payload``-carrying objects (tasks — ``sys.getsizeof`` on a task
    excludes its payload) recurse, everything else trusts
    ``sys.getsizeof`` (owning numpy arrays report their data buffer;
    views under-report, which only costs them the fast path, never
    correctness).
    """
    size = sys.getsizeof(obj, 64)
    if depth <= 0:
        return size
    payload = getattr(obj, "payload", None)
    if payload is not None:
        size += probe_size(payload, depth - 1)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            size += probe_size(key, depth - 1) + probe_size(value, depth - 1)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += probe_size(item, depth - 1)
    return size


def run_oob(
    runner: Callable[..., Any],
    threshold: int,
    head: Tuple[Any, ...],
    tail: Optional[Tuple[Any, ...]],
    envelope: Optional[ShmEnvelope],
) -> Any:
    """Worker-side trampoline: unwrap spilled args, spill a big result.

    ``runner(*head, *tail)`` is the classic child runner call; when the
    sender spilled the tail it arrives as ``envelope`` instead and is
    reconstructed here zero-copy (borrowed — the runner sees writable
    views of the sender's segments, valid for the task's duration; the
    sender releases the segments when the dispatch resolves).  A result
    probing at or above ``threshold`` is spilled into a fresh
    fire-and-forget segment and returned as a :class:`ShmEnvelope`;
    ownership transfers to whoever reconstructs it (the backend's
    ``_reconstruct`` hook).  Either way the result is fully materialised
    — spilling copies every referenced buffer, and a small result that
    might alias a borrowed view is forced through a pickle round-trip —
    before the borrowed mappings are released.
    """
    _sweep_pinned()
    borrowed: List[SharedMemory] = []
    if envelope is not None:
        args, borrowed = _loads_views(envelope.payload, take=False)
        tail = tuple(args)
        del args
    try:
        result = runner(*head, *(tail or ()))
        if probe_size(result) >= threshold:
            payload, _names = dumps_oob(result, threshold=threshold,
                                        registry=None)
            return ShmEnvelope(payload)
        if borrowed:
            # A small result can be (or contain) a view of a borrowed
            # segment; detach it from the mapping before release.
            result = pickle.loads(pickle.dumps(result, protocol=5))
        return result
    finally:
        tail = None
        for segment in borrowed:
            _release_view_segment(segment)
