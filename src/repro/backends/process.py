"""Wall-clock execution backend on worker processes (GIL escape).

:class:`ProcessBackend` implements the
:class:`~repro.backends.base.ExecutionBackend` interface over
``multiprocessing``: every grid node becomes one *serial worker process* (a
single-worker ``ProcessPoolExecutor``), so CPU-bound payloads run truly in
parallel — the speedup the GIL denies the thread backend.  Clock,
membership, transfer and queue-occupancy semantics are shared with
:class:`~repro.backends.threaded.ThreadBackend` via
:class:`~repro.backends._concurrent.LocalConcurrentBackend`.

**Picklable payload contract.**  Task payloads, outputs, ``execute_fn`` and
pipeline stage functions cross a process boundary and therefore must be
picklable: module-level functions, ``functools.partial`` over them, or
callable class instances — not lambdas or closures.  The runtime's own
plumbing honours the contract (cost models and lowered pipeline stages are
picklable callables); what the *user* hands to a skeleton must too.

**Timing model.**  Pure compute durations are measured inside the worker
process; the parent anchors them at result-receipt time, so
``DispatchOutcome.duration`` excludes IPC while ``finished - submitted``
includes it.  This is exactly the split the adaptive monitor needs: unit
times reflect node compute speed, while makespans reflect what the user
waited for.  Because one round-trip per task makes IPC dominate small
tasks, :meth:`ProcessBackend.dispatch_chunk` ships ``k`` tasks per
round-trip (one pickle each way per *chunk*); the adaptive engine feeds it
via ``ExecutionConfig.chunk_size``.

**Payload cache.**  The run-constant part of each payload — ``(execute_fn,
collect)`` for farm work, ``(cost_fn, apply_fn)`` for pipeline stages — is
pickled once and installed in each worker process a single time (a
``store_shared`` job queued ahead of the first reference on that worker's
serial queue), so per-dispatch IPC carries only the task arguments.  A
respawned worker starts with an empty cache, and the parent's shipped-set
for that node is cleared with the broken pool, so payloads are re-shipped
automatically.  ``payload_cache=False`` reverts to by-value payloads per
dispatch (results are identical; the flag exists for overhead comparison).

**Fault tolerance.**  A worker process that dies mid-task (killed, OOM,
crash) resolves its dispatches as *lost* instead of raising, and the node's
pool is discarded so a fresh worker respawns on the next dispatch — the
adaptive loop re-enqueues the task and routes around the incident, the same
path a vanished grid node takes.

**Shared-memory data plane.**  Arguments probing at or above
``shm_threshold`` (default 64KiB; 0 disables) spill into ``grasp-*``
POSIX shared-memory segments owned by the backend's
:class:`~repro.backends.shm.BufferRegistry` and ship as descriptors; the
worker borrows the segment and the parent releases it when the dispatch
resolves — including the lost-task/broken-pool paths, which run the same
done-callback.  Workers spill large *results* symmetrically
(fire-and-forget segments) and the parent's :meth:`_reconstruct` takes
ownership: attach, copy out, unlink.  Small values keep the classic
inline path.  See :mod:`repro.backends.shm` for the lifecycle rules.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import sys
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.backends._concurrent import (
    _INPROC_BANDWIDTH,
    LocalConcurrentBackend,
    _FutureHandle,
)
from repro.backends._payload import (
    AnchoredChunkHandle,
    AnchoredHandle,
    run_chunk,
    run_payload,
    run_shared_chunk,
    run_shared_payload,
    run_shared_stage,
    run_stage,
    store_shared,
)
from repro.backends.base import (
    ChainOutcome,
    ChainStage,
    ChunkOutcome,
    CompletedHandle,
    DispatchHandle,
    DispatchOutcome,
)
from repro.backends.shm import (
    DEFAULT_SHM_THRESHOLD,
    BufferRegistry,
    ShmEnvelope,
    dumps_oob,
    loads_oob,
    probe_size,
    run_oob,
)
from repro.exceptions import GridError
from repro.metrics.hooks import on_chunk, on_issue, on_lost, on_segments, on_ship
from repro.grid.topology import GridTopology
from repro.skeletons.base import Task

__all__ = ["ProcessBackend"]


def _forkserver_main_safe() -> bool:
    """Whether spawn-style worker preparation can handle ``__main__``.

    Spawn/forkserver children re-import the parent's main module.  A main
    that is importable by name (``python -m``), a real script file, or an
    interactive session without ``__file__`` (REPL, notebook) all survive
    that; a pseudo-file main such as ``<stdin>`` (here-doc scripts) makes
    every worker crash in ``spawn.prepare`` — those parents must use
    ``fork``.
    """
    main = sys.modules.get("__main__")
    if main is None:
        return True
    if getattr(getattr(main, "__spec__", None), "name", None):
        return True
    path = getattr(main, "__file__", None)
    if path is None:
        return True
    return os.path.exists(path)


def _mp_context(start_method: Optional[str]):
    """The multiprocessing context to build worker pools from.

    ``forkserver`` is preferred where available: workers fork from a
    dedicated single-threaded server, so spawning (and *re*-spawning after
    a worker death) is safe even once the parent has grown pool-manager
    and chain-driver threads — plain ``fork`` from a multi-threaded parent
    can deadlock the child and is deprecated on Python >= 3.12.  Parents
    whose ``__main__`` cannot be re-imported by a spawned child (see
    :func:`_forkserver_main_safe`), and platforms without ``forkserver``,
    fall back to ``fork``, then to the platform default.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if not _forkserver_main_safe():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform dependent
            return multiprocessing.get_context()
    try:
        context = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform dependent
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context()
    # The server imports the runtime (and with it numpy) once; every forked
    # worker inherits those modules instead of re-importing per spawn.
    # get_context("forkserver") hands out the process-global context, so
    # merge into the existing preload list (default: ["__main__"]) rather
    # than replacing it — other forkserver users keep their preloads (the
    # addition persists for the process lifetime: the server, once started,
    # cannot unload modules, so there is deliberately no undo on close()).
    try:
        from multiprocessing import forkserver as _forkserver_module
        preload = list(getattr(_forkserver_module._forkserver,
                               "_preload_modules", None) or ["__main__"])
    except Exception:  # pragma: no cover - implementation detail moved
        preload = ["__main__"]
    if "repro" not in preload:
        context.set_forkserver_preload(preload + ["repro"])
    return context


# ---------------------------------------------------------------- child side
# The task/chunk/stage payload runners live in repro.backends._payload
# (module-level, picklable by reference) and are shared with the cluster
# worker agents, so the two out-of-process substrates cannot drift.

def _warmup():
    """No-op shipped at construction to fork the worker eagerly."""
    return None


def _consume_install(future: Future) -> None:
    """Retrieve a payload-install future quietly.

    An install can only fail with a broken pool (store_shared itself never
    raises); the referencing dispatch queued right behind it reports the
    same breakage as a lost task, so the install's copy is just retrieved
    to silence "exception was never retrieved" noise.
    """
    try:
        future.exception()
    except BaseException:  # pragma: no cover - cancelled during shutdown
        pass


def _consume_warmup(future: Future) -> None:
    """Retrieve a warm-up future's outcome so spawn failures are not silent.

    A worker that cannot start (preload import failure, resource limits)
    breaks its pool here already; retrieving the exception avoids Python's
    "exception was never retrieved" noise, and the breakage then surfaces
    deterministically as lost tasks on the first real dispatch (which the
    farm executor's loss cap turns into a clear error if it persists).
    """
    exc = future.exception()
    if exc is not None:  # pragma: no cover - spawn-environment dependent
        import warnings
        warnings.warn(f"process backend worker failed to start: {exc!r}",
                      RuntimeWarning, stacklevel=2)


# --------------------------------------------------------------- parent side
class _ProcessHandle(AnchoredHandle):
    """Handle over one single-task worker-process future."""

    lost_exceptions = (BrokenProcessPool,)
    bandwidth = _INPROC_BANDWIDTH


class _ProcessChunkHandle(AnchoredChunkHandle):
    """Handle over one chunked worker-process future (k tasks, one IPC)."""

    lost_exceptions = (BrokenProcessPool,)
    bandwidth = _INPROC_BANDWIDTH


class ProcessBackend(LocalConcurrentBackend):
    """Adaptive-runtime backend executing on serial worker processes.

    Parameters
    ----------
    topology:
        Grid topology supplying node identifiers; one worker process per
        node.  When omitted, a homogeneous topology with ``workers`` nodes
        is synthesised.
    workers:
        Number of worker processes when no topology is given; defaults to
        the machine's CPU count.
    start_method:
        ``multiprocessing`` start method (default: ``forkserver`` where
        available — safe to respawn workers from a threaded parent; see
        :func:`_mp_context`).
    payload_cache:
        When True (the default), the shared part of each payload is
        pickled once and installed per worker process a single time, so
        per-dispatch IPC carries only task arguments (see module
        docstring).  False reverts to by-value payloads per dispatch.
    shm_threshold:
        Buffers/bodies at or above this many bytes travel via shared
        memory instead of the worker pipe (see module docstring).
        ``None`` (the default) means
        :data:`~repro.backends.shm.DEFAULT_SHM_THRESHOLD`; ``0``
        disables the shared-memory data plane entirely, restoring the
        classic pipe path bit-identically.  Adopted from
        ``ExecutionConfig.shm_threshold`` at link time when set there.
    """

    name = "process"
    _synth_topology_name = "processes"
    _lost_exceptions = (BrokenProcessPool,)

    def __init__(self, topology: Optional[GridTopology] = None,
                 workers: Optional[int] = None, tracer=None,
                 start_method: Optional[str] = None,
                 payload_cache: bool = True,
                 shm_threshold: Optional[int] = None):
        super().__init__(topology=topology, workers=workers, tracer=tracer)
        self._payload_cache = bool(payload_cache)
        #: Public and mutable on purpose: link-time config adoption sets
        #: it the same way it adopts the tracer and metrics registry.
        self.shm_threshold = (DEFAULT_SHM_THRESHOLD if shm_threshold is None
                              else max(0, int(shm_threshold)))
        self._shm = BufferRegistry()
        #: shared-part identity -> (token, preserialised blob); keys are
        #: id() tuples, so ``_shared_refs`` pins the objects alive.
        self._shared_payloads: Dict[tuple, Tuple[int, bytes]] = {}
        self._shared_refs: List[tuple] = []
        self._shared_tokens = itertools.count(1)
        #: node_id -> set of tokens already installed on that node's
        #: current worker (cleared with the executor on respawn).
        self._shipped: Dict[str, Set[int]] = {}
        self._context = _mp_context(start_method)
        # Spawn every worker up front, keeping startup cost out of the
        # measured dispatches.
        for node_id in self._topology.node_ids:
            future = self._ensure_executor(node_id).submit(_warmup)
            future.add_done_callback(_consume_warmup)

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_node(node_id)
        submitted = self.now
        try:
            future = self._submit_farm(node_id, "task", execute_fn, task,
                                       collect_output)
        except BrokenProcessPool:
            # The pool broke between the previous dispatch and this one:
            # same contract as a mid-task death — lost, then respawn.  The
            # submit raised before recording an issue, so the loss is
            # booked here as one issue+lost pair.
            on_issue(self.metrics, self.name, node_id)
            on_lost(self.metrics, self.name, node_id)
            outcome = self._lost_outcome(node_id, submitted)
            return CompletedHandle(outcome, node_id=node_id,
                                   submitted=submitted,
                                   master_free_after=submitted)
        return _ProcessHandle(self, future, node_id=node_id,
                              submitted=submitted)

    def dispatch_chunk(
        self,
        tasks: Sequence[Task],
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_node(node_id)
        on_chunk(self.metrics, self.name, len(tasks))
        submitted = self.now
        try:
            future = self._submit_farm(node_id, "chunk", execute_fn,
                                       list(tasks), collect_output)
        except BrokenProcessPool:
            on_issue(self.metrics, self.name, node_id)
            on_lost(self.metrics, self.name, node_id)
            outcome = self._lost_outcome(node_id, submitted)
            chunk = ChunkOutcome(
                node_id=node_id,
                outcomes=tuple(outcome for _ in tasks),
                submitted=submitted, finished=outcome.finished,
            )
            return CompletedHandle(chunk, node_id=node_id,
                                   submitted=submitted,
                                   master_free_after=submitted)
        return _ProcessChunkHandle(self, future, node_id=node_id, tasks=tasks,
                                   submitted=submitted)

    def dispatch_chain(
        self,
        task: Task,
        stages: Sequence[ChainStage],
        master_node: str,
        at_time: float,
    ) -> DispatchHandle:
        submitted = self.now
        # The first stage is submitted from the caller's thread so stage-0
        # queue order equals the master's emit order; the remaining stages
        # are walked by a driver thread (a worker process cannot wait on a
        # future owned by the parent).
        first = stages[0]
        node0 = first.pick(self.node_free_at)
        self._check_node(node0)
        future0 = self._submit_stage(node0, first, task.payload)
        result: Future = Future()
        driver = threading.Thread(
            target=self._drive_chain,
            args=(future0, node0, stages, submitted, result),
            name="grasp-chain-driver", daemon=True,
        )
        driver.start()
        return _FutureHandle(result, node_id=node0, submitted=submitted,
                             master_free_after=submitted, next_emit=submitted)

    def _drive_chain(self, future0: Future, node0: str,
                     stages: Sequence[ChainStage], submitted: float,
                     result: Future) -> None:
        current_node = node0
        try:
            records: List[Tuple[str, float, float, float]] = []
            item_cost = 0.0
            value, duration, cost = self._reconstruct(future0.result())
            records.append((node0, duration, cost, self.now - duration))
            item_cost += cost
            for stage in stages[1:]:
                node = stage.pick(self.node_free_at)
                self._check_node(node)
                current_node = node
                future = self._submit_stage(node, stage, value)
                value, duration, cost = self._reconstruct(future.result())
                records.append((node, duration, cost, self.now - duration))
                item_cost += cost
            last_node, last_duration, _, last_started = records[-1]
            result.set_result(ChainOutcome(
                output=value, final_node=last_node, submitted=submitted,
                finished=last_started + last_duration, item_cost=item_cost,
                stage_records=records,
            ))
        except BrokenProcessPool:
            # A pipeline item cannot leave the stream half-processed, so a
            # chain has no lost-task path (the simulator's chains cannot
            # fail either); surface an actionable error and discard the
            # broken pool so the node respawns for subsequent work.
            broken = self._discard_executor(current_node)
            if broken is not None:
                broken.shutdown(wait=False)
            result.set_exception(GridError(
                f"worker process for node {current_node!r} died "
                "mid-pipeline-stage; pipeline chains cannot re-enqueue "
                "partial items"
            ))
        except BaseException as exc:  # propagate through the handle
            result.set_exception(exc)

    # -------------------------------------------------------------- internals
    def _submit_farm(self, node_id: str, kind: str, execute_fn,
                     work, collect: bool) -> Future:
        """Submit one task or chunk, through the payload cache when on."""
        if self._payload_cache:
            runner = (run_shared_payload if kind == "task"
                      else run_shared_chunk)
            ship = self._prepare_ship((work,))
            future = self._submit_shared(
                node_id, ("farm", id(execute_fn), bool(collect)),
                (execute_fn, collect), runner, ship,
            )
            if future is not None:
                self._watch_segments(future, ship)
                return future
            self._drop_ship(ship)
        runner = run_payload if kind == "task" else run_chunk
        ship = self._prepare_ship((execute_fn, work, collect))
        future = self._submit_plain(node_id, runner, ship)
        self._watch_segments(future, ship)
        return future

    def _submit_stage(self, node_id: str, stage: ChainStage,
                      value: Any) -> Future:
        """Submit one pipeline stage, through the payload cache when on."""
        if self._payload_cache:
            ship = self._prepare_ship((value,))
            future = self._submit_shared(
                node_id, ("stage", id(stage.cost), id(stage.apply)),
                (stage.cost, stage.apply), run_shared_stage, ship,
            )
            if future is not None:
                self._watch_segments(future, ship)
                return future
            self._drop_ship(ship)
        ship = self._prepare_ship((stage.cost, stage.apply, value))
        future = self._submit_plain(node_id, run_stage, ship)
        self._watch_segments(future, ship)
        return future

    # ------------------------------------------------------------- data plane
    _Ship = Tuple[Optional[tuple], Optional[ShmEnvelope], List[str]]

    def _prepare_ship(self, args: tuple) -> "ProcessBackend._Ship":
        """Spill one dispatch's per-task arguments when they probe large.

        Returns ``(tail, envelope, segment_names)`` — either the classic
        inline tail with no envelope, or ``tail=None`` with an envelope
        over the spilled arguments plus the segment names this backend
        now owns for them (released when the dispatch resolves).
        """
        threshold = self.shm_threshold
        if threshold <= 0:
            return args, None, []
        estimate = probe_size(args)
        if estimate < threshold:
            on_ship(self.metrics, self.name, estimate, 0)
            return args, None, []
        try:
            payload, names = dumps_oob(args, threshold=threshold,
                                       registry=self._shm)
        except Exception:
            # Unpicklable arguments surface through the future on the
            # classic inline path, exactly as they do without shm.
            return args, None, []
        on_ship(self.metrics, self.name, payload.inline_bytes,
                payload.shm_bytes)
        on_segments(self.metrics, self.name, len(self._shm))
        tracer = self.tracer
        if tracer is not None:
            tracer.record("dispatch.shm_ship",
                          "arguments spilled to shared memory",
                          backend=self.name, direction="args",
                          segments=names, nbytes=payload.shm_bytes)
        return None, ShmEnvelope(payload), names

    def _watch_segments(self, future: Future,
                        ship: "ProcessBackend._Ship") -> None:
        """Release the dispatch's argument segments once it resolves.

        Attached as a plain done-callback so every terminal path — result
        received, payload raised, pool broken (worker died / respawn) —
        releases the refs; lost dispatches cannot orphan segments.
        """
        names = ship[2]
        if not names:
            return

        def _release(_future: Future) -> None:
            self._shm.release_many(names)
            on_segments(self.metrics, self.name, len(self._shm))

        future.add_done_callback(_release)

    def _drop_ship(self, ship: "ProcessBackend._Ship") -> None:
        """Release a prepared ship that was never submitted (rare fallback)."""
        if ship[2]:
            self._shm.release_many(ship[2])

    def _submit_plain(self, node_id: str, runner,
                      ship: "ProcessBackend._Ship") -> Future:
        """Submit a by-value job, through the shm trampoline when enabled."""
        tail, envelope, _names = ship
        if envelope is None and self.shm_threshold <= 0:
            return self._submit(node_id, runner, *(tail or ()))
        return self._submit(node_id, run_oob, runner, self.shm_threshold,
                            (), tail, envelope)

    def _reconstruct(self, value: Any) -> Any:
        if not isinstance(value, ShmEnvelope):
            return value
        payload = value.payload
        on_ship(self.metrics, self.name, payload.inline_bytes,
                payload.shm_bytes)
        tracer = self.tracer
        if tracer is not None:
            tracer.record("dispatch.shm_ship",
                          "result received via shared memory",
                          backend=self.name, direction="result",
                          segments=payload.segment_names(),
                          nbytes=payload.shm_bytes)
        return loads_oob(payload, take=True)

    def _submit_shared(self, node_id: str, key: tuple, shared: tuple,
                       runner, ship: "ProcessBackend._Ship",
                       ) -> Optional[Future]:
        """Submit a cached-shared-payload job; None = caller falls back.

        The install job and the referencing job are queued under one lock
        hold: the executor is serial, so queue order alone guarantees the
        worker installs a payload before any job references it — the same
        ordering property the cluster transport gets from its TCP stream.
        A shared part that fails to preserialise returns None and the
        caller takes the by-value path, where the pickling error surfaces
        through the future exactly as it always has.
        """
        with self._lock:
            entry = self._shared_payloads.get(key)
            if entry is None:
                try:
                    blob = pickle.dumps(shared, protocol=5)
                except Exception:
                    return None
                entry = (next(self._shared_tokens), blob)
                self._shared_payloads[key] = entry
                self._shared_refs.append(shared)
            token, blob = entry
            executor = self._executor_locked(node_id)
            shipped = self._shipped.setdefault(node_id, set())
            self._pending[node_id] += 1
            started_at = self.now
            tracer = self.tracer
            if tracer is not None:
                # Before the submit, as in _submit: the done-callback's
                # dispatch.resolve must not outrace its dispatch.issue.
                tracer.record("dispatch.issue", "payload submitted",
                              node=node_id, backend=self.name)
            try:
                if token not in shipped:
                    install = executor.submit(store_shared, token, blob)
                    install.add_done_callback(_consume_install)
                    shipped.add(token)
                tail, envelope, _names = ship
                if envelope is None and self.shm_threshold <= 0:
                    future = executor.submit(runner, token, *(tail or ()))
                else:
                    # The trampoline lets the *worker* spill a large
                    # result even when the arguments shipped inline.
                    future = executor.submit(run_oob, runner,
                                             self.shm_threshold, (token,),
                                             tail, envelope)
            except BaseException:
                self._pending[node_id] = max(0, self._pending[node_id] - 1)
                raise
        # Outside the lock, like _submit: issued counts only accepted
        # submissions, recorded before the done-callback can fire.
        on_issue(self.metrics, self.name, node_id)
        future.add_done_callback(
            lambda f, node=node_id, t0=started_at: self._note_done(node, t0, f)
        )
        return future

    def _discard_executor(self, node_id: str):
        # The shipped-set must die with the executor under ONE lock hold:
        # a racing dispatch that saw the fresh executor but the stale
        # shipped-set would skip the install its respawned worker needs.
        with self._lock:
            self._shipped.pop(node_id, None)
            return self._executors.pop(node_id, None)

    def _lost_outcome(self, node_id: str, submitted: float) -> DispatchOutcome:
        """A worker process died mid-task: surface the loss, respawn later."""
        broken = self._discard_executor(node_id)
        if broken is not None:
            broken.shutdown(wait=False)
        now = self.now
        return DispatchOutcome(
            node_id=node_id, output=None, submitted=submitted,
            exec_started=submitted, exec_finished=now, finished=now,
            lost=True,
        )

    def _make_executor(self, node_id: str) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=1, mp_context=self._context)

    def close(self) -> None:
        super().close()
        # After the executors have drained: release callbacks for in-flight
        # dispatches have run by now, so anything left is force-unlinked.
        self._shm.close()
        on_segments(self.metrics, self.name, 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(nodes={len(self._pending)})"
