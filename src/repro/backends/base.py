"""The execution-backend seam of the GRASP runtime.

The paper's compilation phase "links" a skeletal program "with the GRASP
code, the parallel environment, and, if any, the resource monitoring
library".  :class:`ExecutionBackend` is that parallel environment as an
interface: everything the calibration phase (Algorithm 1), the adaptive
engine (Algorithm 2) and the baselines need from the machine underneath —

* a **clock** (:attr:`ExecutionBackend.now`, :meth:`advance_to`),
* **availability** and **queue-occupancy** queries (:meth:`is_available`,
  :meth:`node_free_at`),
* **observation hooks** for the monitoring layer (:meth:`observe_load`,
  :meth:`observe_bandwidth`),
* a **transfer-cost** primitive (:meth:`transfer`), and
* task-level **dispatch** primitives (:meth:`dispatch` for farm-like
  skeletons, :meth:`dispatch_chain` for pipeline stage chains).

Four implementations ship with the runtime —
:class:`~repro.backends.simulated.SimulatedBackend` (virtual time over the
deterministic grid simulator, bit-identical to the historical executors),
:class:`~repro.backends.threaded.ThreadBackend` (wall-clock execution on
real OS threads), :class:`~repro.backends.process.ProcessBackend` (serial
worker processes escaping the GIL) and
:class:`~repro.backends.async_.AsyncBackend` (coroutine payloads on an
asyncio event loop) — plus the
:class:`~repro.backends.faults.FaultInjectingBackend` decorator over any of
them.  The control loop above this interface is identical for all, which is
the methodology's claim of being *generic over the parallel environment*;
the contract itself is pinned by the reusable conformance kit in
``tests/conformance/``.

Dispatches return a :class:`DispatchHandle` rather than an outcome so that
concurrent backends can overlap task execution: the simulated backend
resolves handles eagerly (virtual time needs no waiting), while the thread
backend resolves them when the worker thread finishes.  Callers should
process a handle immediately when :meth:`DispatchHandle.done` is already
true and defer it otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError
from repro.metrics.hooks import on_chunk
from repro.skeletons.base import Task, TaskResult

__all__ = [
    "DispatchOutcome",
    "ChunkOutcome",
    "ChainOutcome",
    "ChainStage",
    "DispatchHandle",
    "CompletedHandle",
    "FanInChunkHandle",
    "ExecutionBackend",
]


@dataclass(frozen=True)
class DispatchOutcome:
    """Everything one farm-style task dispatch produced.

    Times are in the backend's clock domain (virtual seconds for the
    simulator, wall seconds since backend creation for threads).

    Attributes
    ----------
    node_id:
        The node that executed (or lost) the task.
    output:
        The real output of ``execute_fn`` (``None`` when the task was lost
        or output collection was disabled).
    submitted:
        When the input left the master (the dispatch time).
    exec_started, exec_finished:
        Extent of the pure compute on the node.
    finished:
        When the result arrived back at the master.
    lost:
        The node failed while holding the task; it must be re-enqueued.
    load, bandwidth:
        Observations taken at ``exec_started`` (CPU load of the node and
        effective bandwidth toward the master) for the monitoring layer.
    """

    node_id: str
    output: Any
    submitted: float
    exec_started: float
    exec_finished: float
    finished: float
    lost: bool = False
    load: float = 0.0
    bandwidth: float = 0.0

    @property
    def duration(self) -> float:
        """Pure compute time on the node."""
        return self.exec_finished - self.exec_started

    def to_task_result(self, task: Task, during_calibration: bool = False) -> TaskResult:
        """Build the :class:`~repro.skeletons.base.TaskResult` for ``task``.

        Centralises the outcome→result field mapping used by the farm
        executor, the calibration phase and the static baselines.
        """
        return TaskResult(
            task_id=task.task_id, output=self.output, node_id=self.node_id,
            submitted=self.submitted, started=self.exec_started,
            finished=self.finished, stage=task.stage,
            during_calibration=during_calibration,
        )


@dataclass(frozen=True)
class ChunkOutcome:
    """Everything one *chunked* farm dispatch produced.

    A chunk is ``k`` tasks shipped to the same node in one dispatch so
    message-passing/IPC overhead is paid once per chunk instead of once per
    task.  ``outcomes`` holds one :class:`DispatchOutcome` per task, in task
    order; the monitoring layer consumes the chunk-level normalised time
    (total compute duration over total task cost), which keeps the decision
    statistic comparable across chunk sizes.
    """

    node_id: str
    outcomes: Tuple[DispatchOutcome, ...]
    submitted: float
    finished: float

    @property
    def lost_any(self) -> bool:
        """Whether at least one task of the chunk was lost."""
        return any(outcome.lost for outcome in self.outcomes)

    @property
    def duration(self) -> float:
        """Total pure compute time of the chunk's surviving tasks."""
        return sum(o.duration for o in self.outcomes if not o.lost)


@dataclass(frozen=True)
class ChainStage:
    """One stage of a pipeline chain, as the backend sees it.

    Attributes
    ----------
    pick:
        ``free_at -> node_id``; chooses the node for this stage given the
        backend's queue-occupancy query (this is how stage replicas are
        load-balanced).
    cost:
        ``value -> work units`` for the stage applied to the current value.
    apply:
        ``value -> value``; the stage's real computation.
    """

    pick: Callable[[Callable[[str], float]], str]
    cost: Callable[[Any], float]
    apply: Callable[[Any], Any]


@dataclass(frozen=True)
class ChainOutcome:
    """Everything one pipeline item's walk through the stages produced.

    ``stage_records`` holds ``(node_id, duration, cost, started)`` per
    stage, in stage order — exactly what the monitoring layer consumes.
    ``lost=True`` means a node failed while holding the item somewhere
    along the chain: the item produced no output and must be
    re-dispatched (the plan executor re-enqueues it under the same
    lost-task cap that protects farm dispatch from livelock).
    """

    output: Any
    final_node: str
    submitted: float
    finished: float
    item_cost: float
    stage_records: List[Tuple[str, float, float, float]] = field(default_factory=list)
    lost: bool = False


class DispatchHandle:
    """A (possibly still running) dispatch.

    Attributes available immediately after dispatch, before completion:

    * ``node_id`` — the node the task was sent to (farm dispatch only).
    * ``submitted`` — when the dispatch entered the backend.
    * ``master_free_after`` — when the master's uplink is free to send the
      next input (serial reuse of the master link).
    * ``next_emit`` — for chains: when the master may release the next item
      (the first stage's input hand-off completes).
    """

    node_id: Optional[str] = None
    submitted: float = 0.0
    master_free_after: float = 0.0
    next_emit: float = 0.0

    def done(self) -> bool:
        """Whether :meth:`outcome` would return without blocking."""
        raise NotImplementedError

    def outcome(self):
        """The :class:`DispatchOutcome` / :class:`ChainOutcome` (blocking)."""
        raise NotImplementedError


class CompletedHandle(DispatchHandle):
    """An already-resolved handle (used by eager, virtual-time backends)."""

    def __init__(self, outcome, *, node_id: Optional[str] = None,
                 submitted: float = 0.0, master_free_after: float = 0.0,
                 next_emit: float = 0.0):
        self._outcome = outcome
        self.node_id = node_id
        self.submitted = submitted
        self.master_free_after = master_free_after
        self.next_emit = next_emit

    def done(self) -> bool:
        return True

    def outcome(self):
        return self._outcome


class FanInChunkHandle(DispatchHandle):
    """Chunk handle over per-task handles (the generic chunking strategy).

    Backends without a cheaper bulk path dispatch each task of the chunk
    individually and fan the handles back into one :class:`ChunkOutcome`.
    Eager backends resolve immediately; concurrent backends resolve when the
    last per-task handle does (the per-node queues serialise the tasks).
    """

    def __init__(self, handles: List[DispatchHandle], *, node_id: str,
                 submitted: float, master_free_after: float):
        if not handles:
            raise ExecutionError("a chunk needs at least one task")
        self._handles = handles
        self.node_id = node_id
        self.submitted = submitted
        self.master_free_after = master_free_after

    def done(self) -> bool:
        return all(handle.done() for handle in self._handles)

    def outcome(self) -> ChunkOutcome:
        outcomes = tuple(handle.outcome() for handle in self._handles)
        return ChunkOutcome(
            node_id=self.node_id, outcomes=outcomes, submitted=self.submitted,
            finished=max(o.finished for o in outcomes),
        )


class ExecutionBackend:
    """Abstract parallel environment underneath the GRASP control loop."""

    #: Human-readable backend family ("simulated", "thread", ...).
    name: str = "abstract"

    #: Metrics registry the backend writes dispatch metrics into
    #: (:class:`repro.metrics.MetricsRegistry`), or None when metrics are
    #: disabled.  Adopted by the compiled program the same way the tracer
    #: is; backends read it per dispatch, so it may be swapped between runs.
    metrics = None

    #: Whether dispatch handles resolve at dispatch time (virtual-time
    #: backends).  Eager backends are driven step-by-step by the executors;
    #: non-eager backends get their window dispatched first and collected
    #: afterwards, in completion order where the statistic requires it.
    eager: bool = True

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current time in the backend's clock domain."""
        raise NotImplementedError

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (no-op for wall clocks)."""
        raise NotImplementedError

    # ------------------------------------------------------------- membership
    @property
    def topology(self):
        """The grid topology the backend is bound to (node naming/membership)."""
        raise NotImplementedError

    def has_node(self, node_id: str) -> bool:
        """Whether ``node_id`` exists in this backend."""
        return node_id in self.topology

    def available_nodes(self, time: float) -> List[str]:
        """Node ids usable at ``time`` (co-allocation candidates)."""
        raise NotImplementedError

    def is_available(self, node_id: str, time: Optional[float] = None) -> bool:
        """Whether ``node_id`` is usable at ``time``."""
        raise NotImplementedError

    def node_free_at(self, node_id: str) -> float:
        """Earliest time at which ``node_id`` can accept new work (estimate)."""
        raise NotImplementedError

    # ------------------------------------------------------------ observation
    def observe_load(self, node_id: str, time: Optional[float] = None) -> float:
        """External CPU utilisation of ``node_id`` in ``[0, 1)``."""
        raise NotImplementedError

    def observe_bandwidth(self, src: str, dst: str,
                          time: Optional[float] = None) -> float:
        """Effective bandwidth (bytes/s) between two nodes."""
        raise NotImplementedError

    # -------------------------------------------------------------- transfers
    def transfer(self, src: str, dst: str, nbytes: float,
                 at_time: Optional[float] = None):
        """Charge a ``src`` → ``dst`` transfer; returns a record with
        ``started`` and ``finished`` attributes."""
        raise NotImplementedError

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        """Ship ``task`` to ``node_id``, execute it, ship the result back.

        ``collect_output=False`` signals the output is not needed (a
        calibration probe); backends whose timing does not require running
        the payload (the simulator) may then skip ``execute_fn`` entirely,
        while measurement-based backends still execute it for timing but
        drop the result.  ``check_loss=True`` enables the mid-task failure
        check (farm dispatch); calibration passes ``False``.

        **Shared-payload contract.**  The executors call every dispatch of
        one farm with the *same* ``execute_fn`` object (and every stage of
        one pipeline with stable ``cost``/``apply`` objects — they come
        from the lowered plan, not from per-item closures).  Backends that
        ship payloads across a process or machine boundary may therefore
        serialise the shared part once, keyed on object identity, and
        reference it on subsequent dispatches (the process backend's
        payload cache, the cluster backend's payload registry).  Custom
        executors that synthesise a fresh callable per task forfeit that
        reuse but remain correct — an unseen identity simply ships by
        value.
        """
        raise NotImplementedError

    def dispatch_chunk(
        self,
        tasks: Sequence[Task],
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        """Ship a chunk of tasks to ``node_id`` in one dispatch.

        The handle resolves to a :class:`ChunkOutcome` with one
        :class:`DispatchOutcome` per task.  The default implementation
        dispatches the tasks individually back-to-back (serial master
        uplink), which preserves the per-task semantics of every backend;
        backends with a real bulk transport (one IPC round-trip per chunk)
        override it.
        """
        on_chunk(self.metrics, self.name, len(tasks))
        handles: List[DispatchHandle] = []
        free = at_time
        for task in tasks:
            handle = self.dispatch(
                task, node_id, execute_fn, master_node=master_node,
                at_time=free, check_loss=check_loss,
                collect_output=collect_output,
            )
            free = max(free, handle.master_free_after)
            handles.append(handle)
        return FanInChunkHandle(handles, node_id=node_id,
                                submitted=handles[0].submitted,
                                master_free_after=free)

    def dispatch_chain(
        self,
        task: Task,
        stages: Sequence[ChainStage],
        master_node: str,
        at_time: float,
    ) -> DispatchHandle:
        """Stream one item through a chain of stages (pipeline dispatch)."""
        raise NotImplementedError

    # ------------------------------------------------------------- data plane
    def _reconstruct(self, value: Any) -> Any:
        """Decode a worker-returned raw value before the handle unpacks it.

        The identity for in-process backends.  Backends whose data plane
        can ship results out-of-band (shared-memory envelopes) override
        this to reconstruct the real value; every result path — single
        task, chunk, chain stage — funnels through it, so the decode rule
        lives in exactly one place per backend.
        """
        return value

    def dispatch_overhead(self) -> float:
        """Measured fixed cost of one dispatch round-trip, in seconds.

        ``chunk_size="auto"`` sizes chunks so per-task overhead stays a
        small fraction of the calibrated task cost; backends that cannot
        (or need not — the simulator charges transfers explicitly) measure
        it return 0.0, which resolves to unchunked dispatch.
        """
        return 0.0

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release backend resources (threads, processes); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- guard
    def _require_node(self, node_id: str) -> None:
        if not self.has_node(node_id):
            raise ExecutionError(f"unknown node {node_id!r}")
