"""Shared machinery of the wall-clock (concurrent) backends.

:class:`~repro.backends.threaded.ThreadBackend` and
:class:`~repro.backends.process.ProcessBackend` differ only in *where* a
payload runs (an OS thread vs. a worker process); everything else — the
monotonic clock, node membership, the free in-process transfer model, host
load observation, per-node queue-occupancy accounting and the
close-once lifecycle — is identical and lives here in
:class:`LocalConcurrentBackend`.

Queue-occupancy estimation (:meth:`LocalConcurrentBackend.node_free_at`)
keeps, per node, a count of submitted-but-unfinished tasks and an
exponentially weighted average of observed task durations.  A node that has
not completed anything yet borrows the backend-wide seed estimate taken
from the *first* completed dispatch anywhere (normally a calibration
probe), so a freshly started node with a deep queue is not mistaken for a
free one — the historical ``1e-6`` placeholder made exactly that mistake.
"""

from __future__ import annotations

import os
import time as _time
from concurrent.futures import Executor, Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backends.base import (
    ChainOutcome,
    ChainStage,
    DispatchHandle,
    ExecutionBackend,
)
from repro.exceptions import GridError
from repro.metrics.hooks import on_issue, on_lost, on_resolve
from repro.sanitizers.locks import make_lock
from repro.grid.topology import GridBuilder, GridTopology
from repro.skeletons.base import Task

__all__ = ["LocalConcurrentBackend"]

#: Reported node-to-node bandwidth: an in-process hand-off (bytes/s).
_INPROC_BANDWIDTH = 1e9

#: Last-resort duration estimate before *any* dispatch has completed.
_MIN_DURATION_ESTIMATE = 1e-6


def _overhead_probe() -> None:
    """No-op payload for :meth:`LocalConcurrentBackend.dispatch_overhead`.

    Module-level so the process backend's workers can unpickle it by
    reference like any other payload.
    """
    return None


@dataclass(frozen=True)
class _Transfer:
    """Zero-cost in-process transfer record (mirrors the simulator's)."""

    src: str
    dst: str
    nbytes: float
    started: float
    finished: float

    @property
    def duration(self) -> float:
        return self.finished - self.started


class _FutureHandle(DispatchHandle):
    """Handle over a single future resolving to the dispatch outcome."""

    def __init__(self, future: Future, *, node_id: Optional[str] = None,
                 submitted: float = 0.0, master_free_after: float = 0.0,
                 next_emit: float = 0.0):
        self._future = future
        self.node_id = node_id
        self.submitted = submitted
        self.master_free_after = master_free_after
        self.next_emit = next_emit

    def done(self) -> bool:
        return self._future.done()

    def outcome(self):
        return self._future.result()


class _ChainHandle(DispatchHandle):
    """Handle over a chain of per-stage futures.

    Each future resolves to ``(value, (node, duration, cost, started),
    cost)`` — the tuple contract of the backends' ``_stage_work`` hooks.
    """

    def __init__(self, stage_futures: List[Future], *, submitted: float,
                 master_free_after: float, next_emit: float):
        self._stage_futures = stage_futures
        self.submitted = submitted
        self.master_free_after = master_free_after
        self.next_emit = next_emit

    def done(self) -> bool:
        return self._stage_futures[-1].done()

    def outcome(self) -> ChainOutcome:
        records = []
        item_cost = 0.0
        value = None
        for future in self._stage_futures:
            value, record, cost = future.result()
            records.append(record)
            item_cost += cost
        last_node, last_duration, _, last_started = records[-1]
        return ChainOutcome(
            output=value, final_node=last_node, submitted=self.submitted,
            finished=last_started + last_duration, item_cost=item_cost,
            stage_records=records,
        )


class LocalConcurrentBackend(ExecutionBackend):
    """Base class for backends executing payloads on this machine's clock.

    Parameters
    ----------
    topology:
        Grid topology supplying node identifiers (speeds/links are ignored —
        real workers run as fast as the hardware allows).  When omitted, a
        homogeneous topology with ``workers`` nodes is synthesised.
    workers:
        Number of worker queues when no topology is given; defaults to the
        machine's CPU count.
    """

    name = "local"
    eager = False

    #: Name given to a synthesised topology when none is supplied.
    _synth_topology_name = "local"

    #: Exceptions a done future raises when its worker died holding the
    #: task (metrics classify them as *lost*, not failed resolves);
    #: subclasses whose workers can die set this (the process backend).
    _lost_exceptions: tuple = ()

    def __init__(self, topology: Optional[GridTopology] = None,
                 workers: Optional[int] = None, tracer=None):
        if topology is None:
            count = workers or os.cpu_count() or 4
            topology = (
                GridBuilder().homogeneous(nodes=count, speed=1.0)
                .named(self._synth_topology_name).build(seed=0)
            )
        self._topology = topology
        self._origin = _time.perf_counter()
        self._lock = make_lock("local-backend.state")
        self._executors: Dict[str, Executor] = {}
        self._pending: Dict[str, int] = {n: 0 for n in topology.node_ids}
        self._avg_duration: Dict[str, float] = {n: 0.0 for n in topology.node_ids}
        self._seed_duration: float = 0.0
        self._overhead: Optional[float] = None
        self._closed = False
        self.tracer = tracer

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        return _time.perf_counter() - self._origin

    def advance_to(self, time: float) -> None:
        """Wall time advances on its own; nothing to do."""

    # ------------------------------------------------------------- membership
    @property
    def topology(self) -> GridTopology:
        return self._topology

    def available_nodes(self, time: float) -> List[str]:
        return list(self._topology.node_ids)

    def is_available(self, node_id: str, time: Optional[float] = None) -> bool:
        self._check_node(node_id)
        return True

    def node_free_at(self, node_id: str) -> float:
        self._check_node(node_id)
        with self._lock:
            pending = self._pending[node_id]
            estimate = self._avg_duration[node_id] or self._seed_duration \
                or _MIN_DURATION_ESTIMATE
        return self.now + pending * estimate

    # ------------------------------------------------------------ observation
    def observe_load(self, node_id: str, time: Optional[float] = None) -> float:
        self._check_node(node_id)
        try:
            load = os.getloadavg()[0] / max(os.cpu_count() or 1, 1)
        except (AttributeError, OSError):  # pragma: no cover - platform dependent
            return 0.0
        return min(max(load, 0.0), 0.999)

    def observe_bandwidth(self, src: str, dst: str,
                          time: Optional[float] = None) -> float:
        self._check_node(src)
        self._check_node(dst)
        return _INPROC_BANDWIDTH

    # -------------------------------------------------------------- transfers
    def transfer(self, src: str, dst: str, nbytes: float,
                 at_time: Optional[float] = None) -> _Transfer:
        self._check_node_or_master(src)
        self._check_node_or_master(dst)
        started = self.now if at_time is None else float(at_time)
        return _Transfer(src=src, dst=dst, nbytes=float(nbytes),
                         started=started, finished=started)

    # --------------------------------------------------------------- dispatch
    def dispatch_chain(
        self,
        task: Task,
        stages: Sequence[ChainStage],
        master_node: str,
        at_time: float,
    ) -> DispatchHandle:
        """Stream one item through the stages on this backend's queues.

        Shared by the thread and asyncio backends (their only difference
        is the :meth:`_stage_work` hook: a blocking function vs. a
        coroutine).  The process backend overrides this wholesale — its
        workers cannot wait on parent-owned futures.
        """
        submitted = self.now
        stage_futures: List[Future] = []
        previous: Optional[Future] = None
        for stage in stages:
            # Replicas are picked at submission from queue-depth estimates;
            # the chain is then pinned so per-stage serial order holds.
            node = stage.pick(self.node_free_at)
            self._check_node(node)
            previous = self._submit(
                node, self._stage_work, node, stage, previous, task
            )
            stage_futures.append(previous)
        return _ChainHandle(stage_futures, submitted=submitted,
                            master_free_after=submitted, next_emit=submitted)

    def _stage_work(self, node: str, stage: ChainStage,
                    prev_future: Optional[Future], task: Task):
        """One stage's payload; returns ``(value, record, cost)`` (hook)."""
        raise NotImplementedError

    def dispatch_overhead(self) -> float:
        """Measured cost of one no-op dispatch round-trip (cached).

        A handful of raw ``executor.submit`` round-trips against the first
        node, taking the minimum — deliberately *below* ``_submit`` so the
        probes stay invisible to metrics, tracing and the queue-occupancy
        accounting the conformance kit pins exactly.
        """
        with self._lock:
            if self._overhead is not None:
                return self._overhead
        executor = self._ensure_executor(next(iter(self._topology.node_ids)))
        samples: List[float] = []
        for _ in range(5):
            started = _time.perf_counter()
            executor.submit(_overhead_probe).result()
            samples.append(_time.perf_counter() - started)
        overhead = min(samples)
        with self._lock:
            if self._overhead is None:
                self._overhead = overhead
            return self._overhead

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executors = list(self._executors.values())
            self._executors.clear()
        for executor in executors:
            executor.shutdown(wait=True)

    # -------------------------------------------------------------- internals
    def _make_executor(self, node_id: str) -> Executor:
        """Create the serial worker queue for one node (subclass hook)."""
        raise NotImplementedError

    def _executor_locked(self, node_id: str) -> Executor:
        """The node's executor, created on first use (caller holds the lock)."""
        if self._closed:
            raise GridError(f"{self.name} backend is closed")
        executor = self._executors.get(node_id)
        if executor is None:
            executor = self._make_executor(node_id)
            self._executors[node_id] = executor
        return executor

    def _ensure_executor(self, node_id: str) -> Executor:
        """The node's executor, created on first use (caller holds no lock)."""
        with self._lock:
            return self._executor_locked(node_id)

    def _discard_executor(self, node_id: str) -> Optional[Executor]:
        """Forget a node's executor (it broke); a fresh one spawns on demand."""
        with self._lock:
            return self._executors.pop(node_id, None)

    def _submit(self, node_id: str, fn, *args) -> Future:
        with self._lock:
            executor = self._executor_locked(node_id)
            self._pending[node_id] += 1
        started_at = self.now
        tracer = self.tracer
        if tracer is not None:
            tracer.record("dispatch.issue", "payload submitted",
                          node=node_id, backend=self.name)
        try:
            future = executor.submit(fn, *args)
        except BaseException:
            # A broken/shut-down executor raises synchronously: no future
            # will ever fire the done-callback, so undo the queue count.
            with self._lock:
                self._pending[node_id] = max(0, self._pending[node_id] - 1)
            raise
        # Only accepted submissions count as issued (a raising submit above
        # records nothing), and before the done-callback is attached so a
        # resolve can never outrace its issue.
        on_issue(self.metrics, self.name, node_id)
        future.add_done_callback(
            lambda f, node=node_id, t0=started_at: self._note_done(node, t0, f)
        )
        return future

    def _note_done(self, node_id: str, submitted_at: float,
                   future: Optional[Future] = None) -> None:
        elapsed = max(self.now - submitted_at, _MIN_DURATION_ESTIMATE)
        # A future that failed (payload raised, worker process died) did not
        # observe a task duration: its elapsed time measures the crash, not
        # the node's speed, and must not seed or skew the EWMA estimates.
        failed = False
        lost = False
        if future is not None:
            try:
                error = future.exception()
            except BaseException:  # cancelled: no duration either
                failed = True
            else:
                failed = error is not None
                lost = isinstance(error, self._lost_exceptions)
        tracer = self.tracer
        if tracer is not None:
            tracer.record("dispatch.resolve", "payload finished",
                          node=node_id, backend=self.name, ok=not failed,
                          elapsed=elapsed)
        if lost:
            on_lost(self.metrics, self.name, node_id)
        else:
            on_resolve(self.metrics, self.name, node_id, elapsed,
                       ok=not failed)
        with self._lock:
            self._pending[node_id] = max(0, self._pending[node_id] - 1)
            if failed:
                return
            if self._seed_duration == 0.0:
                self._seed_duration = elapsed
            previous = self._avg_duration[node_id]
            self._avg_duration[node_id] = (
                elapsed if previous == 0.0 else 0.7 * previous + 0.3 * elapsed
            )

    def _check_node(self, node_id: str) -> None:
        if node_id not in self._pending:
            raise GridError(f"unknown node {node_id!r}")

    def _check_node_or_master(self, node_id: str) -> None:
        if node_id not in self._topology:
            raise GridError(f"unknown node {node_id!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(nodes={len(self._pending)})"
