"""Virtual-time execution backend over the deterministic grid simulator.

:class:`SimulatedBackend` adapts :class:`repro.grid.simulator.GridSimulator`
to the :class:`~repro.backends.base.ExecutionBackend` interface.  It is a
*stateless* wrapper: all state (per-core queues, execution/transfer history,
the clock) lives in the simulator, so wrapping the same simulator twice
yields interchangeable backends.

The dispatch primitives replicate the exact simulator call sequences the
historical executors used (input transfer → compute → failure check →
result transfer → real execution), so a program run through this backend is
bit-identical — same virtual times, same trace — to the pre-backend
runtime.  Dispatch handles resolve eagerly: virtual time needs no waiting.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.backends.base import (
    ChainOutcome,
    ChainStage,
    CompletedHandle,
    DispatchHandle,
    DispatchOutcome,
    ExecutionBackend,
)
from repro.grid.simulator import GridSimulator
from repro.metrics.hooks import on_issue, on_lost, on_resolve
from repro.skeletons.base import Task
from repro.utils.awaitables import resolve_awaitable

__all__ = ["SimulatedBackend"]


class SimulatedBackend(ExecutionBackend):
    """Adaptive-runtime backend executing in virtual time on the simulator."""

    name = "simulated"

    def __init__(self, simulator: GridSimulator):
        if not isinstance(simulator, GridSimulator):
            raise TypeError("SimulatedBackend requires a GridSimulator")
        self.simulator = simulator

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        return self.simulator.now

    def advance_to(self, time: float) -> None:
        self.simulator.advance_to(time)

    # ------------------------------------------------------------- membership
    @property
    def topology(self):
        return self.simulator.topology

    def available_nodes(self, time: float) -> List[str]:
        return self.simulator.topology.available_nodes(time)

    def is_available(self, node_id: str, time: Optional[float] = None) -> bool:
        return self.simulator.is_available(node_id, time)

    def node_free_at(self, node_id: str) -> float:
        return self.simulator.node_free_at(node_id)

    # ------------------------------------------------------------ observation
    def observe_load(self, node_id: str, time: Optional[float] = None) -> float:
        return self.simulator.observe_load(node_id, time)

    def observe_bandwidth(self, src: str, dst: str,
                          time: Optional[float] = None) -> float:
        return self.simulator.observe_bandwidth(src, dst, time)

    # -------------------------------------------------------------- transfers
    def transfer(self, src: str, dst: str, nbytes: float,
                 at_time: Optional[float] = None):
        return self.simulator.transfer(src, dst, nbytes, at_time=at_time)

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        sim = self.simulator
        on_issue(self.metrics, self.name, node_id)
        send = sim.transfer(master_node, node_id, task.input_bytes, at_time=at_time)
        execution = sim.run_task(node_id, task.cost, at_time=send.finished)

        if check_loss and not sim.is_available(node_id, execution.finished):
            # The node failed while (virtually) holding the task.
            on_lost(self.metrics, self.name, node_id)
            outcome = DispatchOutcome(
                node_id=node_id, output=None, submitted=at_time,
                exec_started=execution.started, exec_finished=execution.finished,
                finished=execution.finished, lost=True,
            )
            return CompletedHandle(outcome, node_id=node_id, submitted=at_time,
                                   master_free_after=send.finished)

        back = sim.transfer(node_id, master_node, task.output_bytes,
                            at_time=execution.finished)
        load = sim.observe_load(node_id, execution.started)
        bandwidth = sim.observe_bandwidth(node_id, master_node, execution.started)
        output = None
        if execute_fn is not None and collect_output:
            output = resolve_awaitable(execute_fn(task))
        # Latency on this backend is virtual compute time, not wall time.
        on_resolve(self.metrics, self.name, node_id, execution.duration)
        outcome = DispatchOutcome(
            node_id=node_id, output=output, submitted=at_time,
            exec_started=execution.started, exec_finished=execution.finished,
            finished=back.finished, lost=False, load=load, bandwidth=bandwidth,
        )
        return CompletedHandle(outcome, node_id=node_id, submitted=at_time,
                               master_free_after=send.finished)

    def dispatch_chain(
        self,
        task: Task,
        stages: Sequence[ChainStage],
        master_node: str,
        at_time: float,
    ) -> DispatchHandle:
        sim = self.simulator
        value = task.payload
        stage_records: List[Tuple[str, float, float, float]] = []
        previous_node = master_node
        available_at = at_time
        payload_bytes = task.input_bytes
        first_handoff = at_time
        item_cost = 0.0

        for index, stage in enumerate(stages):
            # Replica choice happens *when the item reaches the stage* so it
            # sees the queue backlog left by all previously streamed work.
            node = stage.pick(sim.node_free_at)
            transfer = sim.transfer(previous_node, node, payload_bytes,
                                    at_time=available_at)
            if index == 0:
                first_handoff = transfer.finished
            cost = stage.cost(value)
            item_cost += cost
            execution = sim.run_task(node, cost, at_time=transfer.finished)
            value = resolve_awaitable(stage.apply(value))
            stage_records.append((node, execution.duration, cost, execution.started))
            previous_node = node
            available_at = execution.finished
            payload_bytes = task.output_bytes

        back = sim.transfer(previous_node, master_node, task.output_bytes,
                            at_time=available_at)
        outcome = ChainOutcome(
            output=value, final_node=previous_node, submitted=at_time,
            finished=back.finished, item_cost=item_cost,
            stage_records=stage_records,
        )
        return CompletedHandle(outcome, node_id=previous_node, submitted=at_time,
                               master_free_after=first_handoff,
                               next_emit=first_handoff)

    # ---------------------------------------------------- simulator passthrough
    def run_task(self, node_id: str, cost: float, at_time: Optional[float] = None):
        """Low-level compute primitive (exposed for baselines/diagnostics)."""
        return self.simulator.run_task(node_id, cost, at_time=at_time)

    def makespan(self) -> float:
        """Finish time of the latest simulated execution or transfer."""
        return self.simulator.makespan()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedBackend({self.simulator.topology.name!r})"
