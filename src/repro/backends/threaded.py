"""Wall-clock execution backend on real OS threads.

:class:`ThreadBackend` implements the
:class:`~repro.backends.base.ExecutionBackend` interface with
``concurrent.futures``: every grid node becomes one serial worker queue (a
single-thread executor), task payloads run for real, and all times are wall
seconds measured with a monotonic clock.  The same adaptive control loop
that drives the virtual-time simulator therefore drives real hardware
unchanged — the "link with the parallel environment" step of the
compilation phase, rebound.

Semantics compared to the simulator:

* **Clock** — ``now`` is seconds since backend creation;
  :meth:`~repro.backends._concurrent.LocalConcurrentBackend.advance_to` is
  a no-op (wall time cannot be advanced).
* **Transfers** — in-process hand-offs are free: ``transfer`` returns a
  zero-duration record, and the reported bandwidth is a large constant.
* **Availability** — threads do not fail on their own; ``is_available`` is
  always true.  Wrap the backend in
  :class:`~repro.backends.faults.FaultInjectingBackend` to run node-loss
  and slowdown scenarios against real threads.
* **Queue occupancy** — ``node_free_at`` estimates each node's
  earliest-free time from its queued task count and an exponentially
  weighted average of observed task durations; before a node has completed
  anything it borrows the estimate of the first completed dispatch (see
  :mod:`repro.backends._concurrent`).
* **Monitoring** — ``observe_load`` reads the host's 1-minute load
  average normalised by core count (0.0 where unsupported), so calibration
  ranks nodes by *measured* unit times under real machine load.
* **Probes** — a dispatch with ``collect_output=False`` still executes the
  payload (timing requires running it) but discards the result; the paper's
  "calibration work counts toward the job" is preserved through the
  ``collect_output=True`` path exactly as in the simulator.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.backends._concurrent import (
    _INPROC_BANDWIDTH,
    LocalConcurrentBackend,
    _FutureHandle,
)
from repro.backends.base import (
    ChainStage,
    DispatchHandle,
    DispatchOutcome,
)
from repro.skeletons.base import Task
from repro.utils.awaitables import resolve_awaitable

__all__ = ["ThreadBackend"]


class ThreadBackend(LocalConcurrentBackend):
    """Adaptive-runtime backend executing on real OS threads."""

    name = "thread"
    _synth_topology_name = "threads"

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_node(node_id)
        submitted = self.now

        def work() -> DispatchOutcome:
            started = self.now
            output = (resolve_awaitable(execute_fn(task))
                      if execute_fn is not None else None)
            finished = self.now
            return DispatchOutcome(
                node_id=node_id,
                output=output if collect_output else None,
                submitted=submitted, exec_started=started,
                exec_finished=finished, finished=finished, lost=False,
                load=self.observe_load(node_id),
                bandwidth=_INPROC_BANDWIDTH,
            )

        future = self._submit(node_id, work)
        return _FutureHandle(future, node_id=node_id, submitted=submitted,
                             master_free_after=submitted)

    # dispatch_chain comes from LocalConcurrentBackend; only the per-stage
    # payload is thread-specific.
    def _stage_work(self, node: str, stage: ChainStage,
                    prev_future: Optional[Future], task: Task):
        if prev_future is None:
            value = task.payload
        else:
            value, _, _ = prev_future.result()
        started = self.now
        cost = float(stage.cost(value))
        output = resolve_awaitable(stage.apply(value))
        finished = self.now
        return output, (node, finished - started, cost, started), cost

    # -------------------------------------------------------------- internals
    def _make_executor(self, node_id: str) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"grasp-{node_id.replace('/', '-')}",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(nodes={len(self._pending)})"
