"""Wall-clock execution backend on real OS threads.

:class:`ThreadBackend` implements the
:class:`~repro.backends.base.ExecutionBackend` interface with
``concurrent.futures``: every grid node becomes one serial worker queue (a
single-thread executor), task payloads run for real, and all times are wall
seconds measured with a monotonic clock.  The same adaptive control loop
that drives the virtual-time simulator therefore drives real hardware
unchanged — the "link with the parallel environment" step of the
compilation phase, rebound.

Semantics compared to the simulator:

* **Clock** — ``now`` is seconds since backend creation;
  :meth:`advance_to` is a no-op (wall time cannot be advanced).
* **Transfers** — in-process hand-offs are free: ``transfer`` returns a
  zero-duration record, and the reported bandwidth is a large constant.
* **Availability** — nodes do not fail; ``is_available`` is always true.
* **Queue occupancy** — :meth:`node_free_at` estimates each node's
  earliest-free time from its queued task count and an exponentially
  weighted average of observed task durations, which is what demand-driven
  self-scheduling needs to balance load.
* **Monitoring** — :meth:`observe_load` reads the host's 1-minute load
  average normalised by core count (0.0 where unsupported), so calibration
  ranks nodes by *measured* unit times under real machine load.
* **Probes** — a dispatch with ``collect_output=False`` still executes the
  payload (timing requires running it) but discards the result; the paper's
  "calibration work counts toward the job" is preserved through the
  ``collect_output=True`` path exactly as in the simulator.
"""

from __future__ import annotations

import itertools
import os
import threading
import time as _time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.backends.base import (
    ChainOutcome,
    ChainStage,
    DispatchHandle,
    DispatchOutcome,
    ExecutionBackend,
)
from repro.exceptions import GridError
from repro.grid.topology import GridBuilder, GridTopology
from repro.skeletons.base import Task

__all__ = ["ThreadBackend"]

#: Reported node-to-node bandwidth: an in-process hand-off (bytes/s).
_INPROC_BANDWIDTH = 1e9

#: Seed estimate for a queued task's duration before any has completed.
_MIN_DURATION_ESTIMATE = 1e-6


@dataclass(frozen=True)
class _Transfer:
    """Zero-cost in-process transfer record (mirrors the simulator's)."""

    src: str
    dst: str
    nbytes: float
    started: float
    finished: float

    @property
    def duration(self) -> float:
        return self.finished - self.started


class _FutureHandle(DispatchHandle):
    """Handle over a single worker-thread future."""

    def __init__(self, future: Future, *, node_id: str, submitted: float,
                 master_free_after: float, next_emit: float = 0.0):
        self._future = future
        self.node_id = node_id
        self.submitted = submitted
        self.master_free_after = master_free_after
        self.next_emit = next_emit

    def done(self) -> bool:
        return self._future.done()

    def outcome(self) -> DispatchOutcome:
        return self._future.result()


class _ChainHandle(DispatchHandle):
    """Handle over a chain of per-stage futures."""

    def __init__(self, stage_futures: List[Future], *, submitted: float,
                 master_free_after: float, next_emit: float):
        self._stage_futures = stage_futures
        self.submitted = submitted
        self.master_free_after = master_free_after
        self.next_emit = next_emit

    def done(self) -> bool:
        return self._stage_futures[-1].done()

    def outcome(self) -> ChainOutcome:
        records = []
        item_cost = 0.0
        value = None
        for future in self._stage_futures:
            value, record, cost = future.result()
            records.append(record)
            item_cost += cost
        last_node, last_duration, _, last_started = records[-1]
        return ChainOutcome(
            output=value, final_node=last_node, submitted=self.submitted,
            finished=last_started + last_duration, item_cost=item_cost,
            stage_records=records,
        )


class ThreadBackend(ExecutionBackend):
    """Adaptive-runtime backend executing on real OS threads.

    Parameters
    ----------
    topology:
        Grid topology supplying node identifiers (speeds/links are ignored —
        real threads run as fast as the hardware allows).  When omitted, a
        homogeneous topology with ``workers`` nodes is synthesised.
    workers:
        Number of worker queues when no topology is given; defaults to the
        machine's CPU count.
    """

    name = "thread"
    eager = False

    def __init__(self, topology: Optional[GridTopology] = None,
                 workers: Optional[int] = None, tracer=None):
        if topology is None:
            count = workers or os.cpu_count() or 4
            topology = (
                GridBuilder().homogeneous(nodes=count, speed=1.0)
                .named("threads").build(seed=0)
            )
        self._topology = topology
        self._origin = _time.perf_counter()
        self._lock = threading.Lock()
        self._executors: Dict[str, ThreadPoolExecutor] = {}
        self._pending: Dict[str, int] = {n: 0 for n in topology.node_ids}
        self._avg_duration: Dict[str, float] = {n: 0.0 for n in topology.node_ids}
        self._counter = itertools.count()
        self._closed = False
        self.tracer = tracer

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        return _time.perf_counter() - self._origin

    def advance_to(self, time: float) -> None:
        """Wall time advances on its own; nothing to do."""

    # ------------------------------------------------------------- membership
    @property
    def topology(self) -> GridTopology:
        return self._topology

    def available_nodes(self, time: float) -> List[str]:
        return list(self._topology.node_ids)

    def is_available(self, node_id: str, time: Optional[float] = None) -> bool:
        self._check_node(node_id)
        return True

    def node_free_at(self, node_id: str) -> float:
        self._check_node(node_id)
        with self._lock:
            pending = self._pending[node_id]
            estimate = max(self._avg_duration[node_id], _MIN_DURATION_ESTIMATE)
        return self.now + pending * estimate

    # ------------------------------------------------------------ observation
    def observe_load(self, node_id: str, time: Optional[float] = None) -> float:
        self._check_node(node_id)
        try:
            load = os.getloadavg()[0] / max(os.cpu_count() or 1, 1)
        except (AttributeError, OSError):  # pragma: no cover - platform dependent
            return 0.0
        return min(max(load, 0.0), 0.999)

    def observe_bandwidth(self, src: str, dst: str,
                          time: Optional[float] = None) -> float:
        self._check_node(src)
        self._check_node(dst)
        return _INPROC_BANDWIDTH

    # -------------------------------------------------------------- transfers
    def transfer(self, src: str, dst: str, nbytes: float,
                 at_time: Optional[float] = None) -> _Transfer:
        self._check_node_or_master(src)
        self._check_node_or_master(dst)
        started = self.now if at_time is None else float(at_time)
        return _Transfer(src=src, dst=dst, nbytes=float(nbytes),
                         started=started, finished=started)

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_node(node_id)
        submitted = self.now

        def work() -> DispatchOutcome:
            started = self.now
            output = execute_fn(task) if execute_fn is not None else None
            finished = self.now
            return DispatchOutcome(
                node_id=node_id,
                output=output if collect_output else None,
                submitted=submitted, exec_started=started,
                exec_finished=finished, finished=finished, lost=False,
                load=self.observe_load(node_id),
                bandwidth=_INPROC_BANDWIDTH,
            )

        future = self._submit(node_id, work)
        return _FutureHandle(future, node_id=node_id, submitted=submitted,
                             master_free_after=submitted)

    def dispatch_chain(
        self,
        task: Task,
        stages: Sequence[ChainStage],
        master_node: str,
        at_time: float,
    ) -> DispatchHandle:
        submitted = self.now
        stage_futures: List[Future] = []
        previous: Optional[Future] = None
        for stage in stages:
            # Replicas are picked at submission from queue-depth estimates;
            # the chain is then pinned so per-stage serial order holds.
            node = stage.pick(self.node_free_at)
            self._check_node(node)
            previous = self._submit(
                node, self._stage_work, node, stage, previous, task
            )
            stage_futures.append(previous)
        return _ChainHandle(stage_futures, submitted=submitted,
                            master_free_after=submitted, next_emit=submitted)

    def _stage_work(self, node: str, stage: ChainStage,
                    prev_future: Optional[Future], task: Task):
        if prev_future is None:
            value = task.payload
        else:
            value, _, _ = prev_future.result()
        started = self.now
        cost = float(stage.cost(value))
        output = stage.apply(value)
        finished = self.now
        return output, (node, finished - started, cost, started), cost

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executors = list(self._executors.values())
            self._executors.clear()
        for executor in executors:
            executor.shutdown(wait=True)

    # -------------------------------------------------------------- internals
    def _submit(self, node_id: str, fn, *args) -> Future:
        with self._lock:
            if self._closed:
                raise GridError("thread backend is closed")
            executor = self._executors.get(node_id)
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"grasp-{node_id.replace('/', '-')}",
                )
                self._executors[node_id] = executor
            self._pending[node_id] += 1
        started_at = self.now
        future = executor.submit(fn, *args)
        future.add_done_callback(
            lambda _f, node=node_id, t0=started_at: self._note_done(node, t0)
        )
        return future

    def _note_done(self, node_id: str, submitted_at: float) -> None:
        elapsed = max(self.now - submitted_at, _MIN_DURATION_ESTIMATE)
        with self._lock:
            self._pending[node_id] = max(0, self._pending[node_id] - 1)
            previous = self._avg_duration[node_id]
            self._avg_duration[node_id] = (
                elapsed if previous == 0.0 else 0.7 * previous + 0.3 * elapsed
            )

    def _check_node(self, node_id: str) -> None:
        if node_id not in self._pending:
            raise GridError(f"unknown node {node_id!r}")

    def _check_node_or_master(self, node_id: str) -> None:
        if node_id not in self._topology:
            raise GridError(f"unknown node {node_id!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(nodes={len(self._pending)})"
