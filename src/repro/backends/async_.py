"""Coroutine-native execution backend on an asyncio event loop.

:class:`AsyncBackend` implements the
:class:`~repro.backends.base.ExecutionBackend` interface over ``asyncio``:
every grid node becomes one *serial virtual queue* (an ``asyncio.Queue``
drained by a per-node worker coroutine), all queues share a single event
loop running on one daemon thread, and concurrency comes from *tasks
awaiting I/O* rather than from OS threads or processes.  The same adaptive
control loop that drives the simulator, the thread backend and the process
backend therefore drives coroutine workloads unchanged.

**When to use it.**  The asyncio backend targets I/O-bound payloads —
HTTP-like request fans, storage round-trips, anything that spends its time
waiting.  A payload may be:

* a **coroutine function** (``async def worker(item)``) or any callable
  returning an awaitable — the worker coroutine awaits it, so while one
  node's payload sleeps on I/O every other node's queue keeps draining; or
* a **plain function** — executed inline on the loop.  Correct, but CPU
  work then serialises the whole loop; use the thread or process backend
  for compute-bound payloads.

**Semantics** shared with the other wall-clock backends (via
:class:`~repro.backends._concurrent.LocalConcurrentBackend`): a monotonic
clock in seconds since backend creation, free in-process transfers,
always-available nodes (wrap in
:class:`~repro.backends.faults.FaultInjectingBackend` for failure
scenarios), and queue-occupancy estimation from pending counts and EWMA
durations.  Per-node serial order holds exactly as on threads: a node's
queue finishes payload *k* before starting payload *k+1*, even when the
payloads are coroutines.

Nothing crosses a process boundary, so — unlike the process backend —
payloads need not be picklable; lambdas and closures are fine.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from concurrent.futures import Future
from typing import Any, Callable, Optional

from repro.backends._concurrent import (
    _INPROC_BANDWIDTH,
    LocalConcurrentBackend,
    _FutureHandle,
)
from repro.backends.base import (
    ChainStage,
    DispatchHandle,
    DispatchOutcome,
)
from repro.exceptions import GridError
from repro.sanitizers.locks import make_lock
from repro.skeletons.base import Task

__all__ = ["AsyncBackend"]


async def _maybe_await(value: Any) -> Any:
    """Resolve ``value`` whether it is a plain result or an awaitable."""
    if inspect.isawaitable(value):
        return await value
    return value


class _EventLoopRunner:
    """One event loop on one daemon thread, shared by every node queue."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="grasp-asyncio-loop", daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def post(self, fn: Callable[[], Any]) -> None:
        """Run ``fn()`` on the loop thread, fire-and-forget.

        Never blocks the caller: backend internals may invoke this while
        holding the backend lock, which loop-side done-callbacks also take —
        a blocking round-trip here would deadlock the two threads.
        """
        self.loop.call_soon_threadsafe(fn)

    def spawn(self, coro) -> Future:
        """Schedule a coroutine on the loop; return a waitable future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    @property
    def thread(self) -> threading.Thread:
        return self._thread

    def stop(self) -> None:
        if self.loop.is_closed():
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join()
        self.loop.close()


class _SerialQueueExecutor:
    """One node's serial virtual queue, behind the ``Executor`` submit/shutdown
    surface :class:`~repro.backends._concurrent.LocalConcurrentBackend`
    drives.

    ``submit(fn, *args)`` enqueues the callable; a single worker coroutine
    drains the queue in FIFO order, awaiting any awaitable the callable
    returns — so the node is a serial resource (like a one-thread pool)
    while its I/O waits overlap with every other node's work on the shared
    loop.
    """

    def __init__(self, runner: _EventLoopRunner, node_id: str):
        self._runner = runner
        self._node_id = node_id
        self._shutdown = False
        # Guards the shutdown-check + enqueue pair: without it a submit
        # racing close() could land its entry *behind* the shutdown
        # sentinel, where the drain never reaches it and its future hangs.
        self._submit_lock = make_lock("async-backend.submit")
        # Safe to construct off-loop on Python >= 3.10: asyncio.Queue binds
        # its loop lazily on first await.  All puts still happen on the loop
        # thread (via post), so waiter wake-ups stay loop-affine.
        self._queue: asyncio.Queue = asyncio.Queue()
        self._worker = runner.spawn(self._drain())

    async def _drain(self) -> None:
        while True:
            entry = await self._queue.get()
            if entry is None:  # shutdown sentinel
                self._queue.task_done()
                return
            fn, args, future = entry
            if future.set_running_or_notify_cancel():
                try:
                    future.set_result(await _maybe_await(fn(*args)))
                except BaseException as exc:
                    future.set_exception(exc)
            self._queue.task_done()

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        future: Future = Future()
        with self._submit_lock:
            if self._shutdown:
                raise GridError(
                    f"asyncio queue for node {self._node_id!r} is shut down"
                )
            self._runner.post(
                lambda: self._queue.put_nowait((fn, args, future)))
        return future

    def shutdown(self, wait: bool = True) -> None:
        with self._submit_lock:
            if self._shutdown:
                return
            self._shutdown = True
            self._runner.post(lambda: self._queue.put_nowait(None))
        if wait:
            self._worker.result()


class AsyncBackend(LocalConcurrentBackend):
    """Adaptive-runtime backend executing coroutine payloads on asyncio.

    Parameters
    ----------
    topology:
        Grid topology supplying node identifiers; one serial virtual queue
        per node.  When omitted, a homogeneous topology with ``workers``
        nodes is synthesised.
    workers:
        Number of node queues when no topology is given; defaults to the
        machine's CPU count (the historical default — for purely I/O-bound
        fans feel free to pass far more, queues are nearly free).

    Examples
    --------
    >>> import asyncio
    >>> from repro import AsyncBackend, Grasp, TaskFarm, GridBuilder
    >>> async def fetch(x):
    ...     await asyncio.sleep(0)   # the HTTP call would go here
    ...     return x * 2
    >>> grid = GridBuilder().homogeneous(nodes=4).build(seed=0)
    >>> with AsyncBackend(topology=grid) as backend:
    ...     result = Grasp(skeleton=TaskFarm(worker=fetch), grid=grid,
    ...                    backend=backend).run(inputs=range(8))
    >>> result.outputs == [x * 2 for x in range(8)]
    True
    """

    name = "asyncio"
    _synth_topology_name = "asyncio"

    def __init__(self, topology=None, workers: Optional[int] = None,
                 tracer=None):
        super().__init__(topology=topology, workers=workers, tracer=tracer)
        self._runner = _EventLoopRunner()
        self._close_lock = make_lock("async-backend.close")

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_node(node_id)
        submitted = self.now

        async def work() -> DispatchOutcome:
            started = self.now
            output = None
            if execute_fn is not None:
                output = await _maybe_await(execute_fn(task))
            finished = self.now
            return DispatchOutcome(
                node_id=node_id,
                output=output if collect_output else None,
                submitted=submitted, exec_started=started,
                exec_finished=finished, finished=finished, lost=False,
                load=self.observe_load(node_id),
                bandwidth=_INPROC_BANDWIDTH,
            )

        future = self._submit(node_id, work)
        return _FutureHandle(future, node_id=node_id, submitted=submitted,
                             master_free_after=submitted)

    # dispatch_chain comes from LocalConcurrentBackend; only the per-stage
    # payload is loop-specific (a coroutine the drain awaits).
    async def _stage_work(self, node: str, stage: ChainStage,
                          prev_future: Optional[Future], task: Task):
        if prev_future is None:
            value = task.payload
        else:
            # The previous stage ran on another node's queue of the same
            # loop; wrap its future so this queue's worker awaits instead
            # of blocking the loop.
            value, _, _ = await asyncio.wrap_future(prev_future)
        started = self.now
        cost = float(stage.cost(value))
        output = await _maybe_await(stage.apply(value))
        finished = self.now
        return output, (node, finished - started, cost, started), cost

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        # Closing from the loop thread itself (a payload calling close, or
        # a GC finalizer running there) can never finish: the executor
        # shutdown waits on drain coroutines only this thread can run.
        # Fail loudly instead of freezing every queue on the shared loop.
        if threading.current_thread() is self._runner.thread:
            raise GridError(
                "AsyncBackend.close() cannot run on its own event-loop "
                "thread (a payload must not close its backend)"
            )
        # The whole close body is serialized: with finer-grained claiming,
        # an explicit close racing a StreamingRun finalizer (GC thread)
        # could stop the loop while the other closer still waits inside an
        # executor shutdown whose drain coroutine then never resolves.
        # The second closer blocks here until queues are drained and the
        # loop is down, then no-ops through the idempotent base close.
        with self._close_lock:
            already_closed = self._closed
            super().close()
            if not already_closed:
                self._runner.stop()

    # -------------------------------------------------------------- internals
    def _make_executor(self, node_id: str) -> _SerialQueueExecutor:
        return _SerialQueueExecutor(self._runner, node_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsyncBackend(nodes={len(self._pending)})"
