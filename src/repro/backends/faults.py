"""Fault injection over any execution backend.

The wall-clock backends never fail on their own — threads and local worker
processes are reliable in a way grid nodes are not — so the adaptation
loop's failure paths (task loss, failover, recalibration off dead nodes)
would only ever run in virtual time.  :class:`FaultInjectingBackend` closes
that gap: it decorates any :class:`~repro.backends.base.ExecutionBackend`
and drives node availability from the *existing* failure schedules of
:mod:`repro.grid.failures`, evaluated against the wrapped backend's own
clock.

Injected effects:

* **Node death** — a node whose :class:`~repro.grid.failures.FailureModel`
  says "down" disappears from ``available_nodes``/``is_available`` (so the
  engine's recalibrate/re-rank paths route work off it), and a farm task
  dispatched to — or caught mid-flight on — a dead node resolves as *lost*
  exactly like a vanished grid node's (the payload's side effects still
  happen in the worker; the runtime discards the result and re-enqueues the
  task, which is also what a real grid master would observe).
* **Slowdown** — per-node extra seconds added to every farm task executed
  on that node (the decorator wraps ``execute_fn`` in a picklable sleeve,
  so it works across process boundaries too), degrading the node's measured
  unit times until the threshold breaches and the skeleton adapts.

Calibration probes (``check_loss=False``) are never converted to losses —
Algorithm 1 has no failure path — but a dead node is excluded from the pool
by the availability queries before probes are sent.  Pipeline chains follow
the simulator's semantics: chains do not lose items; deaths act on chain
scheduling through the availability queries and the remap/recalibrate path.

The decorator owns the backend it wraps: closing it closes the inner
backend, and every dispatch path on the closed decorator raises.  (The
conformance kit flagged the historical behaviour here: a dispatch to an
already-dead node short-circuits to a *lost* outcome without touching the
inner backend, so a closed composite would silently keep accepting work on
dead nodes forever instead of erroring like its live nodes do.)
"""

from __future__ import annotations

import asyncio
import dataclasses
import inspect
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.backends.base import (
    ChainStage,
    ChunkOutcome,
    CompletedHandle,
    DispatchHandle,
    DispatchOutcome,
    ExecutionBackend,
)
from repro.exceptions import ConfigurationError, GridError
from repro.grid.failures import FailureModel, NoFailures
from repro.metrics.hooks import on_issue, on_lost
from repro.skeletons.base import Task

__all__ = ["FaultInjectingBackend"]


@dataclass(frozen=True)
class _SlowedExecute:
    """Picklable sleeve adding a fixed delay before the real payload.

    On thread/process workers the delay is a blocking sleep — the worker
    *is* the slowed resource.  Inside a running event loop (the asyncio
    backend's per-node drain) the sleeve hands back a coroutine that
    awaits the delay instead: a blocking sleep there would stall the
    shared loop and slow *every* node, when the injected fault is meant
    to degrade exactly one.
    """

    fn: Optional[Callable[[Task], Any]]
    delay: float

    def __call__(self, task: Task) -> Any:
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            _time.sleep(self.delay)
            return self.fn(task) if self.fn is not None else None
        return self._slowed(task)

    async def _slowed(self, task: Task) -> Any:
        await asyncio.sleep(self.delay)
        output = self.fn(task) if self.fn is not None else None
        if inspect.isawaitable(output):
            output = await output
        return output


class _FaultHandle(DispatchHandle):
    """Converts a resolved dispatch to *lost* when the schedule killed the node."""

    def __init__(self, inner: DispatchHandle, backend: "FaultInjectingBackend"):
        self._inner = inner
        self._backend = backend
        self.node_id = inner.node_id
        self.submitted = inner.submitted
        self.master_free_after = inner.master_free_after
        self.next_emit = inner.next_emit

    def done(self) -> bool:
        return self._inner.done()

    def outcome(self) -> DispatchOutcome:
        return self._backend._convert(self._inner.outcome())


class _FaultChunkHandle(_FaultHandle):
    def outcome(self) -> ChunkOutcome:
        chunk = self._inner.outcome()
        outcomes = tuple(self._backend._convert(o) for o in chunk.outcomes)
        return dataclasses.replace(chunk, outcomes=outcomes)


class FaultInjectingBackend(ExecutionBackend):
    """Decorator backend injecting scheduled node deaths and slowdowns.

    Parameters
    ----------
    inner:
        The backend to decorate (typically a
        :class:`~repro.backends.threaded.ThreadBackend` or
        :class:`~repro.backends.process.ProcessBackend`).
    failures:
        A :class:`~repro.grid.failures.FailureModel` evaluated on the inner
        backend's clock (wall seconds since backend creation for the
        concurrent backends).
    slowdowns:
        Optional ``node_id -> extra seconds`` added to every farm task the
        node executes.

    Examples
    --------
    >>> from repro.backends import FaultInjectingBackend, ThreadBackend
    >>> from repro.grid.failures import PermanentFailure
    >>> backend = FaultInjectingBackend(
    ...     ThreadBackend(workers=4),
    ...     failures=PermanentFailure(failures={"threads/n0": 0.05}),
    ... )
    >>> backend.name
    'thread+faults'
    """

    def __init__(self, inner: ExecutionBackend,
                 failures: Optional[FailureModel] = None,
                 slowdowns: Optional[Dict[str, float]] = None):
        if not isinstance(inner, ExecutionBackend):
            raise ConfigurationError(
                "FaultInjectingBackend wraps an ExecutionBackend, "
                f"got {type(inner).__name__}"
            )
        self.inner = inner
        self.failures = failures if failures is not None else NoFailures()
        self.slowdowns = dict(slowdowns or {})
        for node_id, delay in self.slowdowns.items():
            if delay < 0:
                raise ConfigurationError(
                    f"slowdown for {node_id!r} must be >= 0, got {delay}"
                )
        self.eager = inner.eager
        self.name = f"{inner.name}+faults"
        self._closed = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        return self.inner.now

    def advance_to(self, time: float) -> None:
        self.inner.advance_to(time)

    # ------------------------------------------------------------- membership
    @property
    def topology(self):
        return self.inner.topology

    @property
    def simulator(self):
        """The wrapped simulator, when the inner backend has one."""
        return getattr(self.inner, "simulator", None)

    def available_nodes(self, time: float) -> List[str]:
        return [n for n in self.inner.available_nodes(time)
                if self.failures.available(n, time)]

    def is_available(self, node_id: str, time: Optional[float] = None) -> bool:
        when = self.now if time is None else float(time)
        return (self.inner.is_available(node_id, time)
                and self.failures.available(node_id, when))

    def node_free_at(self, node_id: str) -> float:
        return self.inner.node_free_at(node_id)

    # ---------------------------------------------------------------- metrics
    @property
    def metrics(self):
        """The inner backend's registry — dispatches it forwards land there.

        Losses the decorator itself injects are labelled with the composite
        ``backend`` name (e.g. ``thread+faults``) and double-booked in the
        ``faults.injected_lost`` counter, so injected and organic losses
        stay distinguishable while ``registry.total()`` sums still satisfy
        the accounting invariant.
        """
        return self.inner.metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self.inner.metrics = registry

    # ------------------------------------------------------------ observation
    def observe_load(self, node_id: str, time: Optional[float] = None) -> float:
        return self.inner.observe_load(node_id, time)

    def observe_bandwidth(self, src: str, dst: str,
                          time: Optional[float] = None) -> float:
        return self.inner.observe_bandwidth(src, dst, time)

    # -------------------------------------------------------------- transfers
    def transfer(self, src: str, dst: str, nbytes: float,
                 at_time: Optional[float] = None):
        return self.inner.transfer(src, dst, nbytes, at_time=at_time)

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_open()
        if check_loss and not self.failures.available(node_id, self.now):
            return self._lost_at_dispatch(node_id)
        handle = self.inner.dispatch(
            task, node_id, self._wrap_fn(execute_fn, node_id),
            master_node=master_node, at_time=at_time, check_loss=check_loss,
            collect_output=collect_output,
        )
        return _FaultHandle(handle, self) if check_loss else handle

    def dispatch_chunk(
        self,
        tasks: Sequence[Task],
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_open()
        if check_loss and not self.failures.available(node_id, self.now):
            now = self.now
            outcomes = tuple(self._lost_at_dispatch(node_id).outcome()
                             for _ in tasks)
            chunk = ChunkOutcome(node_id=node_id, outcomes=outcomes,
                                 submitted=now, finished=now)
            return CompletedHandle(chunk, node_id=node_id, submitted=now,
                                   master_free_after=now)
        handle = self.inner.dispatch_chunk(
            tasks, node_id, self._wrap_fn(execute_fn, node_id),
            master_node=master_node, at_time=at_time, check_loss=check_loss,
            collect_output=collect_output,
        )
        return _FaultChunkHandle(handle, self) if check_loss else handle

    def dispatch_chain(
        self,
        task: Task,
        stages: Sequence[ChainStage],
        master_node: str,
        at_time: float,
    ) -> DispatchHandle:
        self._check_open()
        return self.inner.dispatch_chain(task, stages, master_node=master_node,
                                         at_time=at_time)

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed = True
        self.inner.close()

    # -------------------------------------------------------------- internals
    def _check_open(self) -> None:
        if self._closed:
            raise GridError(f"{self.name} backend is closed")

    def _wrap_fn(self, execute_fn, node_id: str):
        delay = self.slowdowns.get(node_id, 0.0)
        if delay <= 0.0:
            return execute_fn
        return _SlowedExecute(fn=execute_fn, delay=delay)

    def _lost_at_dispatch(self, node_id: str) -> CompletedHandle:
        """The node is already dead: the task is lost in transit."""
        metrics = self.metrics
        on_issue(metrics, self.name, node_id)
        on_lost(metrics, self.name, node_id)
        if metrics is not None:
            metrics.counter("faults.injected_lost", backend=self.name).inc()
        now = self.now
        outcome = DispatchOutcome(
            node_id=node_id, output=None, submitted=now, exec_started=now,
            exec_finished=now, finished=now, lost=True,
        )
        return CompletedHandle(outcome, node_id=node_id, submitted=now,
                               master_free_after=now)

    def _convert(self, outcome: DispatchOutcome) -> DispatchOutcome:
        """Lose a task whose node died before its result was delivered.

        The check uses ``finished`` — when the result reached the master —
        not ``exec_finished``: a chunked process dispatch back-fills
        per-task compute intervals as estimates before the single IPC
        receipt, and a master must never accept a result that only arrived
        after the schedule killed the node.
        """
        if outcome.lost:
            return outcome
        if self.failures.available(outcome.node_id, outcome.finished):
            return outcome
        # The inner backend already booked this dispatch as a resolve, so
        # only the injection counter moves — the accounting invariant
        # counts the round-trip, not the discarded result.
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("faults.injected_lost", backend=self.name).inc()
        return dataclasses.replace(outcome, output=None, lost=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjectingBackend({self.inner!r})"
