"""Execution backends: the parallel environments underneath GRASP.

The adaptive runtime (calibration, the adaptive engine, the baselines) is
written against the :class:`~repro.backends.base.ExecutionBackend`
interface; this package provides the implementations and the
:func:`as_backend` coercion helper that keeps the historical
``simulator=``-style APIs working.
"""

from __future__ import annotations

from typing import Union

from repro.backends.async_ import AsyncBackend
from repro.backends.base import (
    ChainOutcome,
    ChainStage,
    ChunkOutcome,
    CompletedHandle,
    DispatchHandle,
    DispatchOutcome,
    ExecutionBackend,
    FanInChunkHandle,
)
from repro.backends.faults import FaultInjectingBackend
from repro.backends.process import ProcessBackend
from repro.backends.simulated import SimulatedBackend
from repro.backends.threaded import ThreadBackend
from repro.exceptions import ConfigurationError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology

__all__ = [
    "ExecutionBackend",
    "DispatchHandle",
    "CompletedHandle",
    "FanInChunkHandle",
    "DispatchOutcome",
    "ChunkOutcome",
    "ChainStage",
    "ChainOutcome",
    "SimulatedBackend",
    "ThreadBackend",
    "ProcessBackend",
    "AsyncBackend",
    "FaultInjectingBackend",
    "as_backend",
]

#: Names accepted by string-based backend selection (compile_program et al).
#: "cluster" resolves to repro.cluster.ClusterBackend, which lives outside
#: this package (the cluster subsystem layers on top of it, not the other
#: way around) — the compilation phase routes the name.
BACKEND_NAMES = frozenset({"simulated", "thread", "process", "asyncio",
                           "cluster"})


def as_backend(
    environment: Union[ExecutionBackend, GridSimulator, GridTopology],
) -> ExecutionBackend:
    """Coerce ``environment`` into an :class:`ExecutionBackend`.

    Accepts a ready backend (returned as-is), a :class:`GridSimulator`
    (wrapped in a stateless :class:`SimulatedBackend`) or a
    :class:`GridTopology` (a fresh simulator is created over it).
    """
    if isinstance(environment, ExecutionBackend):
        return environment
    if isinstance(environment, GridSimulator):
        return SimulatedBackend(environment)
    if isinstance(environment, GridTopology):
        return SimulatedBackend(GridSimulator(environment))
    raise ConfigurationError(
        "expected an ExecutionBackend, GridSimulator or GridTopology, "
        f"got {type(environment).__name__}"
    )
