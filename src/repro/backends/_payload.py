"""The picklable-payload contract, shared by every out-of-process worker.

:class:`~repro.backends.process.ProcessBackend` workers and the TCP worker
agents of :mod:`repro.cluster` execute the same three payload shapes — a
single farm task, a chunk of tasks, one pipeline stage — on the far side of
a serialisation boundary, and their parents anchor the child-measured
compute durations at result-receipt time in exactly the same way.  This
module holds both halves once so the two substrates cannot drift:

* **Child side** (:func:`run_payload`, :func:`run_chunk`, :func:`run_stage`)
  — module-level functions (picklable by reference) that execute a payload
  and measure its pure compute time with a local ``perf_counter``.
* **Parent side** (:func:`anchored_outcome`, :func:`anchored_chunk`) — turn
  ``(output, duration)`` pairs into
  :class:`~repro.backends.base.DispatchOutcome` records whose compute
  interval is anchored at the parent's receipt time.  Child clocks are
  never compared with the parent's: only the measured *duration* crosses
  the boundary, so ``DispatchOutcome.duration`` excludes IPC/network time
  while ``finished - submitted`` includes it — the split the adaptive
  monitor needs (unit times reflect node compute speed, makespans reflect
  what the user waited for).

The contract itself: payloads, outputs, ``execute_fn`` and pipeline stage
functions must be picklable — module-level functions, ``functools.partial``
over them, or callable class instances; not lambdas or closures.

**Shared-payload split.**  Every farm dispatch of one run repeats the same
``(execute_fn, collect)`` pair and every pipeline item repeats its stage's
``(cost_fn, apply_fn)`` pair; only the task / task list / stage value
varies.  :func:`split_payload` / :func:`join_payload` define that split
once for both out-of-process substrates: the cluster transport ships the
shared part per *node* (PUT_PAYLOAD + DISPATCH_REF frames), and the
process backend ships it per *worker process* into the module-level cache
below (:func:`store_shared` + the ``run_shared_*`` runners), so the
per-dispatch serialisation cost stops scaling with the payload.
"""

from __future__ import annotations

import pickle
import time as _time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.backends.base import ChunkOutcome, DispatchHandle, DispatchOutcome
from repro.skeletons.base import Task
from repro.utils.awaitables import resolve_awaitable

__all__ = [
    "run_payload",
    "run_chunk",
    "run_stage",
    "split_payload",
    "join_payload",
    "store_shared",
    "run_shared_payload",
    "run_shared_chunk",
    "run_shared_stage",
    "anchored_outcome",
    "anchored_chunk",
    "AnchoredHandle",
    "AnchoredChunkHandle",
]


# ---------------------------------------------------------------- child side
# Everything here runs inside a worker (process or remote agent) and must
# stay module-level so it pickles by reference.

def run_payload(execute_fn: Optional[Callable[[Task], Any]], task: Task,
                collect: bool) -> Tuple[Any, float]:
    """Execute one task in the worker; return ``(output, compute seconds)``."""
    started = _time.perf_counter()
    output = (resolve_awaitable(execute_fn(task))
              if execute_fn is not None else None)
    duration = _time.perf_counter() - started
    return (output if collect else None), duration


def run_chunk(execute_fn: Optional[Callable[[Task], Any]],
              tasks: Sequence[Task], collect: bool) -> List[Tuple[Any, float]]:
    """Execute a chunk of tasks back-to-back in the worker."""
    return [run_payload(execute_fn, task, collect) for task in tasks]


def run_stage(cost_fn: Callable[[Any], float], apply_fn: Callable[[Any], Any],
              value: Any) -> Tuple[Any, float, float]:
    """Execute one pipeline stage in the worker; return ``(output, duration, cost)``."""
    cost = float(cost_fn(value))
    started = _time.perf_counter()
    output = resolve_awaitable(apply_fn(value))
    duration = _time.perf_counter() - started
    return output, duration, cost


# ---------------------------------------------------- shared-payload split
# The canonical decomposition of a dispatch payload into its run-constant
# shared part and its per-task arguments — one definition, so the cluster
# wire format and the process-worker cache cannot disagree about it.

def split_payload(kind: str, payload: Tuple[Any, ...]) -> Tuple[tuple, Any]:
    """Split a ``kind`` payload tuple into ``(shared, args)``.

    Farm tasks and chunks share the same ``(execute_fn, collect)`` pair —
    one registered payload serves both dispatch shapes.
    """
    if kind in ("task", "chunk"):
        execute_fn, args, collect = payload
        return (execute_fn, collect), args
    if kind == "stage":
        cost_fn, apply_fn, value = payload
        return (cost_fn, apply_fn), value
    raise ValueError(f"unknown dispatch kind {kind!r}")


def join_payload(kind: str, shared: tuple, args: Any) -> Tuple[Any, ...]:
    """Inverse of :func:`split_payload`: rebuild the full payload tuple."""
    if kind in ("task", "chunk"):
        execute_fn, collect = shared
        return execute_fn, args, collect
    if kind == "stage":
        cost_fn, apply_fn = shared
        return cost_fn, apply_fn, args
    raise ValueError(f"unknown dispatch kind {kind!r}")


# ------------------------------------------------------ child payload cache
# Per-worker-process store of shared payloads.  Only the worker's single
# serial thread touches it, and parents never populate their own copy, so
# fork-started children always inherit it empty.

class _BrokenShared:
    """Marker for a shared payload that failed to load in this worker."""

    def __init__(self, reason: str):
        self.reason = reason


_SHARED_CACHE: Dict[int, Any] = {}


def store_shared(token: int, blob: bytes) -> None:
    """Install one preserialised shared payload in this worker's cache.

    A blob that fails to unpickle (module missing in the worker, …) must
    fail the *referencing dispatches* with its cause, not crash the store
    job silently — the failure is remembered and re-raised per use.
    """
    try:
        _SHARED_CACHE[token] = pickle.loads(blob)
    except Exception as exc:
        _SHARED_CACHE[token] = _BrokenShared(
            f"shared payload {token} failed to load in the worker: {exc!r}"
        )


def _shared(token: int) -> tuple:
    entry = _SHARED_CACHE.get(token)
    if entry is None:
        raise RuntimeError(
            f"shared payload {token} is not in this worker's cache (no "
            "store_shared preceded the reference on this worker's queue)"
        )
    if isinstance(entry, _BrokenShared):
        raise RuntimeError(entry.reason)
    return entry


def run_shared_payload(token: int, task: Task) -> Tuple[Any, float]:
    """:func:`run_payload` against the cached shared payload ``token``."""
    execute_fn, collect = _shared(token)
    return run_payload(execute_fn, task, collect)


def run_shared_chunk(token: int,
                     tasks: Sequence[Task]) -> List[Tuple[Any, float]]:
    """:func:`run_chunk` against the cached shared payload ``token``."""
    execute_fn, collect = _shared(token)
    return run_chunk(execute_fn, tasks, collect)


def run_shared_stage(token: int, value: Any) -> Tuple[Any, float, float]:
    """:func:`run_stage` against the cached shared payload ``token``."""
    cost_fn, apply_fn = _shared(token)
    return run_stage(cost_fn, apply_fn, value)


# --------------------------------------------------------------- parent side

def anchored_outcome(node_id: str, output: Any, duration: float, *,
                     submitted: float, received: float, load: float,
                     bandwidth: float) -> DispatchOutcome:
    """One task's outcome with its compute interval anchored at receipt.

    ``received`` is the parent-clock time the result arrived; the compute
    interval ``[received - duration, received]`` is clamped so it never
    starts before the dispatch was submitted.
    """
    started = max(submitted, received - duration)
    return DispatchOutcome(
        node_id=node_id, output=output, submitted=submitted,
        exec_started=started, exec_finished=received, finished=received,
        lost=False, load=load, bandwidth=bandwidth,
    )


def anchored_chunk(node_id: str, pairs: Sequence[Tuple[Any, float]], *,
                   submitted: float, received: float, load: float,
                   bandwidth: float) -> ChunkOutcome:
    """A chunk's outcomes, durations stacked back-to-back before receipt.

    The worker ran the chunk's tasks serially, so the chunk's total compute
    interval is anchored at receipt and the per-task durations are stacked
    inside it in task order.
    """
    total = sum(duration for _, duration in pairs)
    cursor = max(submitted, received - total)
    outcomes: List[DispatchOutcome] = []
    for output, duration in pairs:
        outcomes.append(DispatchOutcome(
            node_id=node_id, output=output, submitted=submitted,
            exec_started=cursor, exec_finished=cursor + duration,
            finished=received, lost=False, load=load, bandwidth=bandwidth,
        ))
        cursor += duration
    return ChunkOutcome(node_id=node_id, outcomes=tuple(outcomes),
                        submitted=submitted, finished=received)


class AnchoredHandle(DispatchHandle):
    """Handle over one out-of-process future resolving to (output, duration).

    Shared by the process backend and the cluster backend: receipt time is
    captured the instant the future resolves, the outcome anchors the
    child-measured duration at that receipt, and the backend's
    worker-death exception(s) resolve as a *lost* outcome via the
    backend's ``_lost_outcome`` hook.
    """

    #: Exceptions meaning "the worker died holding this task" (subclasses
    #: set this to BrokenProcessPool, WorkerLost, ...).
    lost_exceptions: Tuple[Type[BaseException], ...] = ()
    #: Bandwidth reported in the outcome (substrate-specific constant).
    bandwidth: float = 0.0

    def __init__(self, backend, future: Future, *, node_id: str,
                 submitted: float):
        self._backend = backend
        self._future = future
        self._received: Optional[float] = None
        self._decoded: Optional[Tuple[Any]] = None
        self.node_id = node_id
        self.submitted = submitted
        self.master_free_after = submitted
        future.add_done_callback(self._mark_received)

    def _mark_received(self, _future: Future) -> None:
        self._received = self._backend.now

    def _value(self) -> Any:
        """The reconstructed child result (cached: outcome() must stay
        idempotent, but decoding a shared-memory envelope transfers
        segment ownership and can only run once)."""
        if self._decoded is None:
            self._decoded = (
                self._backend._reconstruct(self._future.result()),)
        return self._decoded[0]

    def done(self) -> bool:
        return self._future.done()

    def _receipt(self) -> float:
        return self._received if self._received is not None \
            else self._backend.now

    def outcome(self) -> DispatchOutcome:
        try:
            output, duration = self._value()
        except self.lost_exceptions:
            return self._backend._lost_outcome(self.node_id, self.submitted)
        return anchored_outcome(
            self.node_id, output, duration, submitted=self.submitted,
            received=self._receipt(),
            load=self._backend.observe_load(self.node_id),
            bandwidth=self.bandwidth,
        )


class AnchoredChunkHandle(AnchoredHandle):
    """Chunked sibling of :class:`AnchoredHandle` (k tasks, one round-trip)."""

    def __init__(self, backend, future: Future, *, node_id: str,
                 tasks: Sequence[Task], submitted: float):
        super().__init__(backend, future, node_id=node_id,
                         submitted=submitted)
        self._tasks = list(tasks)

    def outcome(self) -> ChunkOutcome:
        backend = self._backend
        try:
            pairs = self._value()
        except self.lost_exceptions:
            lost = tuple(backend._lost_outcome(self.node_id, self.submitted)
                         for _ in self._tasks)
            return ChunkOutcome(node_id=self.node_id, outcomes=lost,
                                submitted=self.submitted,
                                finished=backend.now)
        return anchored_chunk(
            self.node_id, pairs, submitted=self.submitted,
            received=self._receipt(),
            load=backend.observe_load(self.node_id),
            bandwidth=self.bandwidth,
        )
