"""Administrative domains (sites / clusters).

A computational grid spans several administrative domains.  Inside a site,
nodes are typically connected by a fast local network; between sites, traffic
crosses slower wide-area links.  The :class:`Site` object groups node
identifiers and records the default intra-site link characteristics that the
:class:`repro.grid.topology.GridTopology` uses when no explicit link is
declared between two of its nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["Site"]


@dataclass
class Site:
    """A named administrative domain containing a set of nodes.

    Parameters
    ----------
    site_id:
        Unique site identifier, e.g. ``"edinburgh"``.
    node_ids:
        Identifiers of the nodes in this site.
    intra_latency:
        Default latency between two nodes of this site (virtual seconds).
    intra_bandwidth:
        Default bandwidth between two nodes of this site (bytes/second).
    description:
        Free-text description used in reports.
    """

    site_id: str
    node_ids: List[str] = field(default_factory=list)
    intra_latency: float = 5e-5
    intra_bandwidth: float = 1.25e8
    description: str = ""

    def __post_init__(self) -> None:
        if not self.site_id:
            raise ConfigurationError("site_id must be a non-empty string")
        check_non_negative(self.intra_latency, "intra_latency")
        check_positive(self.intra_bandwidth, "intra_bandwidth")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigurationError(f"site {self.site_id} lists duplicate nodes")

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.node_ids

    def __len__(self) -> int:
        return len(self.node_ids)

    def add_node(self, node_id: str) -> None:
        """Register ``node_id`` as a member of this site."""
        if node_id in self.node_ids:
            raise ConfigurationError(
                f"node {node_id} already belongs to site {self.site_id}"
            )
        self.node_ids.append(node_id)
