"""The grid execution engine.

:class:`GridSimulator` turns abstract task costs and message sizes into
virtual-time durations against a :class:`repro.grid.topology.GridTopology`.
It is the single authority on time in the system: the communicator, the
skeleton executors and the monitoring sensors all consult it.

Semantics
---------
* Each node core is a serial resource; a task placed on a busy core starts
  when the core frees up.  Placement uses the least-loaded core of the node.
* Task duration is ``cost / effective_speed(start_time)``, i.e. external load
  is sampled at the instant the task starts.  This zero-order-hold model
  matches the observation granularity of the monitoring layer and keeps the
  simulator deterministic and fast; it is documented as a deliberate
  simplification in DESIGN.md.
* Transfers are charged on the link returned by the topology's most-specific
  link resolution and do not occupy node cores.
* A node that is unavailable per the failure model rejects work; executors
  handle the resulting :class:`~repro.exceptions.GridError` by rescheduling
  (that is precisely the adaptation path experiment E11 exercises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import GridError
from repro.grid.topology import GridTopology
from repro.utils.tracing import Tracer

__all__ = ["TaskExecution", "Transfer", "GridSimulator"]


@dataclass(frozen=True)
class TaskExecution:
    """Record of one task executed on a node."""

    node_id: str
    core: int
    cost: float
    submitted: float
    started: float
    finished: float

    @property
    def duration(self) -> float:
        """Pure compute time (excluding queueing)."""
        return self.finished - self.started

    @property
    def elapsed(self) -> float:
        """Wall time from submission to completion (including queueing)."""
        return self.finished - self.submitted


@dataclass(frozen=True)
class Transfer:
    """Record of one message transfer between nodes."""

    src: str
    dst: str
    nbytes: float
    started: float
    finished: float

    @property
    def duration(self) -> float:
        return self.finished - self.started


class GridSimulator:
    """Virtual-time execution engine over a grid topology."""

    def __init__(self, topology: GridTopology, tracer: Optional[Tracer] = None,
                 start_time: float = 0.0):
        self.topology = topology
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._now = float(start_time)
        # busy-until time per (node, core)
        self._core_free_at: Dict[str, List[float]] = {
            node.node_id: [self._now] * node.cores for node in topology.nodes
        }
        self._executions: List[TaskExecution] = []
        self._transfers: List[Transfer] = []
        self.tracer.bind_clock(lambda: self._now)

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (never backwards)."""
        if time > self._now:
            self._now = float(time)

    # ------------------------------------------------------------------ tasks
    def run_task(self, node_id: str, cost: float,
                 at_time: Optional[float] = None) -> TaskExecution:
        """Execute a task of ``cost`` work units on ``node_id``.

        The task is submitted at ``at_time`` (default: the current clock) and
        starts on the earliest-free core of the node.  Returns the execution
        record; the simulator clock is *not* advanced (callers decide how to
        interleave work across nodes), but per-core busy times are updated.
        """
        submitted = self._now if at_time is None else float(at_time)
        node = self.topology.node(node_id)
        if not self.topology.failure_model.available(node_id, submitted):
            raise GridError(f"node {node_id} is unavailable at time {submitted}")
        if cost < 0:
            raise GridError(f"task cost must be >= 0, got {cost}")

        cores = self._core_free_at[node_id]
        core = min(range(len(cores)), key=lambda idx: cores[idx])
        started = max(submitted, cores[core])
        duration = node.execution_time(cost, started)
        finished = started + duration
        cores[core] = finished

        record = TaskExecution(
            node_id=node_id, core=core, cost=float(cost),
            submitted=submitted, started=started, finished=finished,
        )
        self._executions.append(record)
        self.tracer.record(
            "simulator.task", f"task on {node_id}",
            node=node_id, cost=cost, started=started, finished=finished,
        )
        return record

    def node_free_at(self, node_id: str) -> float:
        """Earliest time at which some core of ``node_id`` is free."""
        if node_id not in self._core_free_at:
            raise GridError(f"unknown node {node_id!r}")
        return min(self._core_free_at[node_id])

    def reset_queues(self, time: Optional[float] = None) -> None:
        """Clear per-core backlogs (used between GRASP rounds/experiments)."""
        base = self._now if time is None else float(time)
        for node_id, cores in self._core_free_at.items():
            self._core_free_at[node_id] = [base] * len(cores)

    # -------------------------------------------------------------- transfers
    def transfer(
        self, src: str, dst: str, nbytes: float, at_time: Optional[float] = None
    ) -> Transfer:
        """Move ``nbytes`` bytes from ``src`` to ``dst`` starting at ``at_time``."""
        started = self._now if at_time is None else float(at_time)
        if nbytes < 0:
            raise GridError(f"nbytes must be >= 0, got {nbytes}")
        link = self.topology.link_between(src, dst)
        finished = started + link.transfer_time(nbytes, started)
        record = Transfer(src=src, dst=dst, nbytes=float(nbytes),
                          started=started, finished=finished)
        self._transfers.append(record)
        self.tracer.record(
            "simulator.transfer", f"{src} -> {dst}",
            src=src, dst=dst, nbytes=nbytes, started=started, finished=finished,
        )
        return record

    # ------------------------------------------------------------ observation
    def observe_load(self, node_id: str, time: Optional[float] = None) -> float:
        """External CPU utilisation of ``node_id`` at ``time`` (default now)."""
        t = self._now if time is None else float(time)
        return self.topology.node(node_id).utilisation(t)

    def observe_bandwidth(self, src: str, dst: str, time: Optional[float] = None) -> float:
        """Effective bandwidth (bytes/s) between ``src`` and ``dst`` at ``time``."""
        t = self._now if time is None else float(time)
        return self.topology.link_between(src, dst).effective_bandwidth(t)

    def is_available(self, node_id: str, time: Optional[float] = None) -> bool:
        """Whether ``node_id`` is usable at ``time`` per the failure model."""
        t = self._now if time is None else float(time)
        if node_id not in self._core_free_at:
            raise GridError(f"unknown node {node_id!r}")
        return self.topology.failure_model.available(node_id, t)

    # --------------------------------------------------------------- history
    @property
    def executions(self) -> List[TaskExecution]:
        """All task executions so far, in submission order."""
        return list(self._executions)

    @property
    def transfers(self) -> List[Transfer]:
        """All transfers so far, in submission order."""
        return list(self._transfers)

    def total_work(self) -> float:
        """Total work units executed so far."""
        return sum(e.cost for e in self._executions)

    def busy_time(self, node_id: str) -> float:
        """Total compute time accumulated on ``node_id``."""
        return sum(e.duration for e in self._executions if e.node_id == node_id)

    def makespan(self) -> float:
        """Finish time of the latest execution or transfer (0 when idle)."""
        latest = 0.0
        if self._executions:
            latest = max(latest, max(e.finished for e in self._executions))
        if self._transfers:
            latest = max(latest, max(t.finished for t in self._transfers))
        return latest
