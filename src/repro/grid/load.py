"""Background-load models for non-dedicated grid nodes.

A computational grid is *non-dedicated*: external users consume a
time-varying fraction of each node's capacity.  GRASP's whole point is to
observe and adapt to that pressure, so the load models are the primary lever
of every experiment.

A :class:`LoadModel` maps virtual time to a utilisation fraction in
``[0, max_load]``; the simulator turns utilisation ``u`` into an effective
node speed ``speed × (1 − u)``.  All stochastic models are driven by a
generator supplied at sampling time (via :meth:`LoadModel.sample`) so they
remain deterministic per experiment seed, and are *pure functions of time*
where possible so that repeated observations of the same instant agree.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng
from repro.utils.validation import check_in_range, check_non_negative, check_probability

__all__ = [
    "LoadModel",
    "ConstantLoad",
    "StepLoad",
    "SinusoidalLoad",
    "RandomWalkLoad",
    "BurstyLoad",
    "TraceLoad",
    "CompositeLoad",
]

#: Utilisation is clipped so a node never loses *all* capacity; the original
#: testbed nodes always retained a scheduling quantum for the grid job.
MAX_UTILISATION = 0.98


def _clip(value: float, max_load: float = MAX_UTILISATION) -> float:
    return float(min(max(value, 0.0), max_load))


class LoadModel:
    """Base class: utilisation of an external workload as a function of time."""

    def utilisation(self, time: float) -> float:
        """Return the external utilisation in ``[0, MAX_UTILISATION]`` at ``time``."""
        raise NotImplementedError

    def mean_utilisation(self, start: float, end: float, samples: int = 64) -> float:
        """Approximate mean utilisation over ``[start, end]`` by sampling."""
        if end <= start:
            return self.utilisation(start)
        points = np.linspace(start, end, max(2, samples))
        return float(np.mean([self.utilisation(float(t)) for t in points]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass
class ConstantLoad(LoadModel):
    """A fixed external utilisation — a dedicated node uses ``level=0``."""

    level: float = 0.0

    def __post_init__(self) -> None:
        check_in_range(self.level, "level", 0.0, MAX_UTILISATION)

    def utilisation(self, time: float) -> float:
        return _clip(self.level)


@dataclass
class StepLoad(LoadModel):
    """Piecewise-constant load: a list of ``(time, level)`` breakpoints.

    The level before the first breakpoint is ``initial``.  Used to model a
    competing job arriving (or leaving) at a known instant — the canonical
    "load spike on the fastest node" scenario of experiment E3.
    """

    steps: Sequence[Tuple[float, float]] = ()
    initial: float = 0.0

    def __post_init__(self) -> None:
        check_in_range(self.initial, "initial", 0.0, MAX_UTILISATION)
        ordered = sorted((float(t), float(level)) for t, level in self.steps)
        for _, level in ordered:
            check_in_range(level, "step level", 0.0, MAX_UTILISATION)
        self._times = [t for t, _ in ordered]
        self._levels = [lvl for _, lvl in ordered]

    def utilisation(self, time: float) -> float:
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return _clip(self.initial)
        return _clip(self._levels[idx])


@dataclass
class SinusoidalLoad(LoadModel):
    """Diurnal-style oscillating load: ``base + amplitude·sin(2π·t/period + phase)``."""

    base: float = 0.3
    amplitude: float = 0.2
    period: float = 100.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_in_range(self.base, "base", 0.0, MAX_UTILISATION)
        check_non_negative(self.amplitude, "amplitude")
        if self.period <= 0:
            raise ConfigurationError(f"period must be > 0, got {self.period}")

    def utilisation(self, time: float) -> float:
        value = self.base + self.amplitude * math.sin(
            2.0 * math.pi * time / self.period + self.phase
        )
        return _clip(value)


@dataclass
class RandomWalkLoad(LoadModel):
    """Mean-reverting random walk sampled on a fixed grid of epochs.

    The walk is generated lazily but *deterministically* from ``seed`` and
    ``name`` so that two observers asking for the load at the same time see
    the same value.  Between epochs the load is held constant (zero-order
    hold), matching the polling granularity of NWS-style monitors.
    """

    seed: int = 0
    name: str = "walk"
    epoch: float = 5.0
    start_level: float = 0.2
    volatility: float = 0.08
    reversion: float = 0.1
    mean_level: float = 0.3
    max_level: float = MAX_UTILISATION

    def __post_init__(self) -> None:
        check_in_range(self.start_level, "start_level", 0.0, MAX_UTILISATION)
        check_in_range(self.mean_level, "mean_level", 0.0, MAX_UTILISATION)
        check_in_range(self.max_level, "max_level", 0.0, MAX_UTILISATION)
        check_non_negative(self.volatility, "volatility")
        check_probability(self.reversion, "reversion")
        if self.epoch <= 0:
            raise ConfigurationError(f"epoch must be > 0, got {self.epoch}")
        self._levels: List[float] = [self.start_level]
        self._rng = make_rng(self.seed, f"load/randomwalk/{self.name}")

    def _extend_to(self, index: int) -> None:
        while len(self._levels) <= index:
            previous = self._levels[-1]
            shock = float(self._rng.normal(0.0, self.volatility))
            pulled = previous + self.reversion * (self.mean_level - previous) + shock
            self._levels.append(_clip(pulled, self.max_level))

    def utilisation(self, time: float) -> float:
        if time < 0:
            return _clip(self.start_level, self.max_level)
        index = int(time // self.epoch)
        self._extend_to(index)
        return self._levels[index]


@dataclass
class BurstyLoad(LoadModel):
    """Two-state Markov (Gilbert) model: quiet periods punctuated by busy bursts.

    The state sequence is generated per epoch from the model's own seeded
    generator.  ``p_burst`` is the quiet→busy transition probability per
    epoch and ``p_calm`` the busy→quiet probability.
    """

    seed: int = 0
    name: str = "bursty"
    epoch: float = 5.0
    quiet_level: float = 0.05
    busy_level: float = 0.75
    p_burst: float = 0.1
    p_calm: float = 0.3

    def __post_init__(self) -> None:
        check_in_range(self.quiet_level, "quiet_level", 0.0, MAX_UTILISATION)
        check_in_range(self.busy_level, "busy_level", 0.0, MAX_UTILISATION)
        check_probability(self.p_burst, "p_burst")
        check_probability(self.p_calm, "p_calm")
        if self.epoch <= 0:
            raise ConfigurationError(f"epoch must be > 0, got {self.epoch}")
        self._states: List[bool] = [False]  # False = quiet, True = busy
        self._rng = make_rng(self.seed, f"load/bursty/{self.name}")

    def _extend_to(self, index: int) -> None:
        while len(self._states) <= index:
            busy = self._states[-1]
            u = float(self._rng.random())
            if busy:
                busy = not (u < self.p_calm)
            else:
                busy = u < self.p_burst
            self._states.append(busy)

    def utilisation(self, time: float) -> float:
        if time < 0:
            return _clip(self.quiet_level)
        index = int(time // self.epoch)
        self._extend_to(index)
        return _clip(self.busy_level if self._states[index] else self.quiet_level)


@dataclass
class TraceLoad(LoadModel):
    """Load replayed from an explicit ``(times, levels)`` trace.

    Values are held constant between trace points (zero-order hold) and the
    trace is cyclic when ``cyclic=True`` so short traces can drive long runs.
    """

    times: Sequence[float] = ()
    levels: Sequence[float] = ()
    cyclic: bool = False

    def __post_init__(self) -> None:
        if len(self.times) != len(self.levels):
            raise ConfigurationError("times and levels must have the same length")
        if len(self.times) == 0:
            raise ConfigurationError("trace must contain at least one point")
        pairs = sorted(zip((float(t) for t in self.times), (float(v) for v in self.levels)))
        self._times = [t for t, _ in pairs]
        self._levels = [_clip(v) for _, v in pairs]
        self._span = self._times[-1] - self._times[0]

    def utilisation(self, time: float) -> float:
        t = time
        if self.cyclic and self._span > 0:
            t = self._times[0] + (time - self._times[0]) % self._span
        idx = bisect.bisect_right(self._times, t) - 1
        idx = max(0, min(idx, len(self._levels) - 1))
        return self._levels[idx]


@dataclass
class CompositeLoad(LoadModel):
    """Sum of several load models, clipped to the utilisation ceiling.

    Lets experiments superimpose, e.g., a diurnal baseline with bursty
    interference.
    """

    components: Sequence[LoadModel] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("CompositeLoad needs at least one component")

    def utilisation(self, time: float) -> float:
        return _clip(sum(c.utilisation(time) for c in self.components))
