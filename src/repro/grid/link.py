"""Network links between grid nodes and sites.

Communication cost follows the classic latency/bandwidth model used by the
skeleton-performance literature: transferring ``n`` bytes over a link of
latency ``L`` seconds and bandwidth ``B`` bytes/second takes
``L + n / B`` virtual seconds.  A link may carry its own utilisation model so
that *bandwidth availability* varies over time — one of the observables the
paper's statistical calibration consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.grid.load import ConstantLoad, LoadModel
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["NetworkLink"]

#: Floor on the bandwidth fraction available to the grid job.
MIN_BANDWIDTH_FRACTION = 0.05


@dataclass
class NetworkLink:
    """A (directed) network link between two endpoints.

    Endpoints may be node identifiers or site identifiers; the topology
    resolves the most specific applicable link for a transfer.

    Parameters
    ----------
    src, dst:
        Endpoint identifiers.
    latency:
        One-way latency in virtual seconds.
    bandwidth:
        Nominal bandwidth in bytes per virtual second.
    load_model:
        Utilisation of the link by external traffic over time.
    symmetric:
        When ``True`` (default) the link also covers ``dst → src``.
    """

    src: str
    dst: str
    latency: float = 1e-4
    bandwidth: float = 1e7
    load_model: LoadModel = field(default_factory=ConstantLoad)
    symmetric: bool = True

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ConfigurationError("link endpoints must be non-empty strings")
        check_non_negative(self.latency, "latency")
        check_positive(self.bandwidth, "bandwidth")

    def connects(self, a: str, b: str) -> bool:
        """True when this link covers a transfer from ``a`` to ``b``."""
        if self.src == a and self.dst == b:
            return True
        return self.symmetric and self.src == b and self.dst == a

    def utilisation(self, time: float) -> float:
        """External utilisation of the link at ``time``."""
        return self.load_model.utilisation(time)

    def effective_bandwidth(self, time: float) -> float:
        """Bandwidth available to the grid job at ``time`` (bytes/second)."""
        available = max(1.0 - self.utilisation(time), MIN_BANDWIDTH_FRACTION)
        return self.bandwidth * available

    def transfer_time(self, nbytes: float, time: float) -> float:
        """Virtual duration of moving ``nbytes`` bytes starting at ``time``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return self.latency
        return self.latency + nbytes / self.effective_bandwidth(time)

    def key(self) -> tuple:
        """Canonical (direction-insensitive when symmetric) identity tuple."""
        if self.symmetric:
            return tuple(sorted((self.src, self.dst)))
        return (self.src, self.dst)
