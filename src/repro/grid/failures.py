"""Node failure and churn models.

The PPoPP'07 paper lists adaptation to "evolving external pressure" as the
key challenge; its future-work trajectory (and the companion task-farm paper)
also handles nodes disappearing altogether.  Experiment E11 exercises that
extension, so the simulator supports pluggable failure models.

A :class:`FailureModel` answers one question: *is node X usable at time t?*
Deterministic (scheduled) and stochastic (transient) variants are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng
from repro.utils.validation import check_non_negative, check_probability

__all__ = [
    "FailureModel",
    "NoFailures",
    "PermanentFailure",
    "TransientFailure",
    "ScheduledFailures",
]


class FailureModel:
    """Base class for node-availability models."""

    def available(self, node_id: str, time: float) -> bool:
        """Return ``True`` when ``node_id`` can run work at ``time``."""
        raise NotImplementedError

    def next_change(self, node_id: str, time: float) -> float:
        """Earliest time ``> time`` at which availability may change.

        Returns ``float('inf')`` when the node's availability is constant
        from ``time`` onwards.  Used by executors to avoid waiting forever on
        a permanently dead node.
        """
        return float("inf")


@dataclass
class NoFailures(FailureModel):
    """All nodes are always available (the default)."""

    def available(self, node_id: str, time: float) -> bool:
        return True


@dataclass
class PermanentFailure(FailureModel):
    """Named nodes fail for good at given times.

    ``failures`` maps node identifier to failure time; unlisted nodes never
    fail.
    """

    failures: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node_id, when in self.failures.items():
            check_non_negative(when, f"failure time for {node_id}")

    @classmethod
    def at(cls, when: float, *node_ids: str) -> "PermanentFailure":
        """Kill every listed node permanently at ``when``.

        Convenience for the common fault-injection scenario ("these nodes
        die t seconds into the run"), usable against the simulator's clock
        or a wall-clock backend's seconds-since-creation clock.
        """
        return cls(failures={node_id: float(when) for node_id in node_ids})

    def available(self, node_id: str, time: float) -> bool:
        when = self.failures.get(node_id)
        return when is None or time < when

    def next_change(self, node_id: str, time: float) -> float:
        when = self.failures.get(node_id)
        if when is None or time >= when:
            return float("inf")
        return float(when)


@dataclass
class ScheduledFailures(FailureModel):
    """Explicit per-node downtime windows.

    ``windows`` maps node identifier to a list of ``(start, end)`` intervals
    during which the node is unavailable.  Overlapping windows are allowed.
    """

    windows: Dict[str, Sequence[Tuple[float, float]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalised: Dict[str, List[Tuple[float, float]]] = {}
        for node_id, intervals in self.windows.items():
            cleaned: List[Tuple[float, float]] = []
            for start, end in intervals:
                if end <= start:
                    raise ConfigurationError(
                        f"downtime window for {node_id} must have end > start, "
                        f"got ({start}, {end})"
                    )
                cleaned.append((float(start), float(end)))
            normalised[node_id] = sorted(cleaned)
        self._windows = normalised

    def available(self, node_id: str, time: float) -> bool:
        for start, end in self._windows.get(node_id, ()):  # few windows: linear scan
            if start <= time < end:
                return False
        return True

    def next_change(self, node_id: str, time: float) -> float:
        candidates: List[float] = []
        for start, end in self._windows.get(node_id, ()):
            if start > time:
                candidates.append(start)
            if end > time:
                candidates.append(end)
        return min(candidates) if candidates else float("inf")


@dataclass
class TransientFailure(FailureModel):
    """Stochastic up/down behaviour sampled per fixed epoch.

    Each node flips between up and down states per epoch with probabilities
    ``p_fail`` (up→down) and ``p_recover`` (down→up); states are generated
    deterministically per ``seed``/node so all observers agree.
    """

    seed: int = 0
    epoch: float = 10.0
    p_fail: float = 0.02
    p_recover: float = 0.5

    def __post_init__(self) -> None:
        check_probability(self.p_fail, "p_fail")
        check_probability(self.p_recover, "p_recover")
        if self.epoch <= 0:
            raise ConfigurationError(f"epoch must be > 0, got {self.epoch}")
        self._states: Dict[str, List[bool]] = {}

    def _states_for(self, node_id: str, index: int) -> List[bool]:
        states = self._states.get(node_id)
        if states is None:
            states = [True]
            self._states[node_id] = states
        if len(states) <= index:
            rng = make_rng(self.seed, f"failures/{node_id}")
            # Re-derive the full sequence so extension is independent of the
            # order in which different lengths were requested.
            states = [True]
            for _ in range(index):
                up = states[-1]
                u = float(rng.random())
                states.append((u >= self.p_fail) if up else (u < self.p_recover))
            self._states[node_id] = states
        return states

    def available(self, node_id: str, time: float) -> bool:
        if time < 0:
            return True
        index = int(time // self.epoch)
        return self._states_for(node_id, index)[index]

    def next_change(self, node_id: str, time: float) -> float:
        index = int(max(time, 0.0) // self.epoch)
        current = self.available(node_id, time)
        # Scan forward a bounded number of epochs for the next flip.
        for ahead in range(1, 10_000):
            t = (index + ahead) * self.epoch
            if self.available(node_id, t) != current:
                return float(t)
        return float("inf")
