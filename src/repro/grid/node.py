"""Grid processing elements.

A :class:`GridNode` models one processing element of the grid: its intrinsic
compute speed, how many cores it exposes to the grid job, the external
background load it suffers (because the grid is non-dedicated) and its
failure behaviour.

Speeds are expressed in abstract *work units per second of virtual time*.
A task of cost ``c`` run on an otherwise-idle node of speed ``s`` takes
``c / s`` virtual seconds; external utilisation ``u`` stretches that to
``c / (s · (1 − u))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.grid.load import ConstantLoad, LoadModel
from repro.utils.validation import check_positive

__all__ = ["GridNode"]

#: Floor on the compute fraction left to the grid job so durations stay finite.
MIN_AVAILABLE_FRACTION = 0.02


@dataclass
class GridNode:
    """One processing element of the computational grid.

    Parameters
    ----------
    node_id:
        Unique identifier, e.g. ``"site0/n3"``.
    speed:
        Work units per virtual second when completely idle.
    cores:
        Number of cores the node contributes; each core can run one task at
        a time.  The GRASP skeletons of the paper are process-per-node, so
        the default is 1, but multi-core nodes are supported for the
        extension experiments.
    load_model:
        External (non-grid) utilisation as a function of time.
    site:
        Administrative domain this node belongs to (informational; the
        topology holds the authoritative mapping).
    memory_mb:
        Nominal memory capacity; only used by workloads that model memory
        pressure.
    """

    node_id: str
    speed: float = 1.0
    cores: int = 1
    load_model: LoadModel = field(default_factory=ConstantLoad)
    site: Optional[str] = None
    memory_mb: float = 4096.0

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ConfigurationError("node_id must be a non-empty string")
        check_positive(self.speed, "speed")
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        check_positive(self.memory_mb, "memory_mb")

    def utilisation(self, time: float) -> float:
        """External utilisation at ``time`` (fraction of capacity lost)."""
        return self.load_model.utilisation(time)

    def effective_speed(self, time: float) -> float:
        """Speed available to the grid job at ``time``.

        Never drops below ``speed × MIN_AVAILABLE_FRACTION`` so task
        durations remain finite even under saturating external load.
        """
        available = max(1.0 - self.utilisation(time), MIN_AVAILABLE_FRACTION)
        return self.speed * available

    def execution_time(self, cost: float, time: float) -> float:
        """Virtual duration of a task of ``cost`` work units started at ``time``."""
        if cost < 0:
            raise ConfigurationError(f"task cost must be >= 0, got {cost}")
        if cost == 0:
            return 0.0
        return cost / self.effective_speed(time)

    def with_load(self, load_model: LoadModel) -> "GridNode":
        """Return a copy of this node with a different load model."""
        return GridNode(
            node_id=self.node_id,
            speed=self.speed,
            cores=self.cores,
            load_model=load_model,
            site=self.site,
            memory_mb=self.memory_mb,
        )

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridNode({self.node_id}, speed={self.speed}, cores={self.cores})"
