"""Computational-grid simulator substrate.

The PPoPP'07 paper evaluates GRASP on a *non-dedicated, heterogeneous,
dynamic* computational grid.  Since no such testbed is available to this
reproduction, :mod:`repro.grid` provides a deterministic, virtual-time
simulator of one:

* :class:`GridNode` — a processing element with a base speed, core count and
  an external background-load model representing competing users.
* :class:`NetworkLink` — latency/bandwidth-modelled connectivity, optionally
  with its own utilisation model.
* :class:`Site` — an administrative domain (cluster) grouping nodes.
* :class:`GridTopology` — the full grid: nodes, sites, links.
* :class:`GridBuilder` — a fluent builder for common experimental grids
  (homogeneous, heterogeneous, multi-site).
* :mod:`repro.grid.load` — background-load models (constant, random walk,
  sinusoidal, bursty/Markov, step, trace-driven).
* :mod:`repro.grid.failures` — node failure/churn models.
* :class:`repro.grid.simulator.GridSimulator` — the execution engine that
  turns task costs and message sizes into virtual-time durations.
"""

from __future__ import annotations

from repro.grid.node import GridNode
from repro.grid.link import NetworkLink
from repro.grid.site import Site
from repro.grid.topology import GridBuilder, GridTopology
from repro.grid.load import (
    BurstyLoad,
    CompositeLoad,
    ConstantLoad,
    LoadModel,
    RandomWalkLoad,
    SinusoidalLoad,
    StepLoad,
    TraceLoad,
)
from repro.grid.failures import (
    FailureModel,
    NoFailures,
    PermanentFailure,
    ScheduledFailures,
    TransientFailure,
)
from repro.grid.simulator import GridSimulator, TaskExecution, Transfer
from repro.grid.events import Event, EventQueue

__all__ = [
    "GridNode",
    "NetworkLink",
    "Site",
    "GridTopology",
    "GridBuilder",
    "LoadModel",
    "ConstantLoad",
    "RandomWalkLoad",
    "SinusoidalLoad",
    "StepLoad",
    "BurstyLoad",
    "TraceLoad",
    "CompositeLoad",
    "FailureModel",
    "NoFailures",
    "PermanentFailure",
    "TransientFailure",
    "ScheduledFailures",
    "GridSimulator",
    "TaskExecution",
    "Transfer",
    "Event",
    "EventQueue",
]
