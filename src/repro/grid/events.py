"""A minimal discrete-event engine.

The skeleton executors (notably the pipeline, which has to interleave stage
completions across nodes) are written against a conventional event queue:
events carry a firing time, a monotonically increasing sequence number (to
break ties deterministically) and an arbitrary payload.

The engine is deliberately tiny — a heap plus a clock — because the heavy
lifting (durations) is done by the cost models in :mod:`repro.grid.node` and
:mod:`repro.grid.link`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional

from repro.exceptions import GridError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled occurrence.

    Ordering is by ``(time, sequence)`` so simultaneous events fire in the
    order they were scheduled, keeping runs fully deterministic.
    """

    time: float
    sequence: int
    kind: str = field(compare=False, default="")
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A priority queue of :class:`Event` objects with an advancing clock."""

    def __init__(self, start_time: float = 0.0):
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = float(start_time)

    @property
    def now(self) -> float:
        """The current virtual time (the firing time of the last popped event)."""
        return self._now

    def schedule(self, time: float, kind: str = "", payload: Any = None) -> Event:
        """Schedule an event at absolute virtual ``time``.

        Scheduling in the past raises :class:`~repro.exceptions.GridError`
        because it almost always indicates an executor bug.
        """
        if time < self._now - 1e-12:
            raise GridError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=float(time), sequence=next(self._counter),
                      kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, kind: str = "", payload: Any = None) -> Event:
        """Schedule an event ``delay`` seconds after the current time."""
        if delay < 0:
            raise GridError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, kind=kind, payload=payload)

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock to it."""
        if not self._heap:
            raise GridError("event queue is empty")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def peek(self) -> Optional[Event]:
        """Return (without removing) the earliest event, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Yield events in firing order until the queue is empty."""
        while self._heap:
            yield self.pop()

    def run_until(
        self,
        handler: Callable[[Event], None],
        stop_time: float = float("inf"),
        max_events: Optional[int] = None,
    ) -> int:
        """Pop events and pass them to ``handler`` until exhaustion or limits.

        Returns the number of events processed.  The handler may schedule
        further events.
        """
        processed = 0
        while self._heap:
            upcoming = self._heap[0]
            if upcoming.time > stop_time:
                break
            if max_events is not None and processed >= max_events:
                break
            handler(self.pop())
            processed += 1
        return processed
