"""Grid topology: nodes, sites and links, plus a fluent builder.

The topology is the static description of the grid handed to the GRASP
runtime at compilation time.  It answers three questions:

* which nodes exist (and what are their speeds / load models),
* which site each node belongs to, and
* what link characteristics apply between any pair of nodes.

Link resolution is most-specific-first: an explicit node-to-node link wins
over a site-to-site link, which wins over the intra-site defaults, which win
over the topology-wide wide-area defaults.  A :mod:`networkx` view is
available for structural analysis and visualisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError, GridError
from repro.grid.failures import FailureModel, NoFailures
from repro.grid.link import NetworkLink
from repro.grid.load import (
    BurstyLoad,
    ConstantLoad,
    LoadModel,
    RandomWalkLoad,
    SinusoidalLoad,
)
from repro.grid.node import GridNode
from repro.grid.site import Site
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive

__all__ = ["GridTopology", "GridBuilder"]

#: Default wide-area latency (virtual seconds) between nodes of different
#: sites when no explicit link is declared.
DEFAULT_WAN_LATENCY = 5e-3
#: Default wide-area bandwidth (bytes per virtual second).
DEFAULT_WAN_BANDWIDTH = 1.25e7


class GridTopology:
    """The complete static description of a computational grid."""

    def __init__(
        self,
        nodes: Iterable[GridNode],
        sites: Optional[Iterable[Site]] = None,
        links: Optional[Iterable[NetworkLink]] = None,
        failure_model: Optional[FailureModel] = None,
        wan_latency: float = DEFAULT_WAN_LATENCY,
        wan_bandwidth: float = DEFAULT_WAN_BANDWIDTH,
        name: str = "grid",
    ):
        self.name = name
        self._nodes: Dict[str, GridNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ConfigurationError(f"duplicate node id {node.node_id!r}")
            self._nodes[node.node_id] = node
        if not self._nodes:
            raise ConfigurationError("a grid topology needs at least one node")

        self._sites: Dict[str, Site] = {}
        for site in sites or []:
            if site.site_id in self._sites:
                raise ConfigurationError(f"duplicate site id {site.site_id!r}")
            for node_id in site.node_ids:
                if node_id not in self._nodes:
                    raise ConfigurationError(
                        f"site {site.site_id} references unknown node {node_id}"
                    )
            self._sites[site.site_id] = site

        self._node_site: Dict[str, str] = {}
        for site in self._sites.values():
            for node_id in site.node_ids:
                if node_id in self._node_site:
                    raise ConfigurationError(
                        f"node {node_id} belongs to more than one site"
                    )
                self._node_site[node_id] = site.site_id

        self._links: List[NetworkLink] = list(links or [])
        for link in self._links:
            for endpoint in (link.src, link.dst):
                if endpoint not in self._nodes and endpoint not in self._sites:
                    raise ConfigurationError(
                        f"link endpoint {endpoint!r} is neither a node nor a site"
                    )

        self.failure_model: FailureModel = failure_model or NoFailures()
        check_positive(wan_bandwidth, "wan_bandwidth")
        if wan_latency < 0:
            raise ConfigurationError("wan_latency must be >= 0")
        self.wan_latency = float(wan_latency)
        self.wan_bandwidth = float(wan_bandwidth)

    # ------------------------------------------------------------------ nodes
    @property
    def node_ids(self) -> List[str]:
        """All node identifiers, in insertion order."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[GridNode]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    def node(self, node_id: str) -> GridNode:
        """Look up a node by identifier."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GridError(f"unknown node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ sites
    @property
    def sites(self) -> List[Site]:
        """All declared sites."""
        return list(self._sites.values())

    def site_of(self, node_id: str) -> Optional[str]:
        """The site identifier of ``node_id``, or ``None`` if unassigned."""
        if node_id not in self._nodes:
            raise GridError(f"unknown node {node_id!r}")
        return self._node_site.get(node_id)

    # ------------------------------------------------------------------ links
    def link_between(self, src: str, dst: str) -> NetworkLink:
        """Resolve the link governing a transfer from ``src`` to ``dst``.

        Resolution order: explicit node↔node link, explicit site↔site link,
        intra-site defaults, wide-area defaults.  A loop-back transfer
        (``src == dst``) gets a zero-latency, effectively infinite-bandwidth
        link.
        """
        if src not in self._nodes:
            raise GridError(f"unknown node {src!r}")
        if dst not in self._nodes:
            raise GridError(f"unknown node {dst!r}")
        if src == dst:
            return NetworkLink(src=src, dst=dst, latency=0.0, bandwidth=1e15)

        for link in self._links:
            if link.connects(src, dst):
                return link

        src_site = self._node_site.get(src)
        dst_site = self._node_site.get(dst)
        if src_site is not None and dst_site is not None:
            for link in self._links:
                if link.connects(src_site, dst_site):
                    return link
            if src_site == dst_site:
                site = self._sites[src_site]
                return NetworkLink(
                    src=src, dst=dst,
                    latency=site.intra_latency,
                    bandwidth=site.intra_bandwidth,
                )
        return NetworkLink(
            src=src, dst=dst, latency=self.wan_latency, bandwidth=self.wan_bandwidth
        )

    # ------------------------------------------------------------ convenience
    def speeds(self) -> Dict[str, float]:
        """Nominal (idle) speed of every node."""
        return {node_id: node.speed for node_id, node in self._nodes.items()}

    def heterogeneity(self) -> float:
        """Ratio of fastest to slowest nominal node speed (≥ 1)."""
        values = [node.speed for node in self._nodes.values()]
        return max(values) / min(values)

    def available_nodes(self, time: float) -> List[str]:
        """Node identifiers usable at ``time`` according to the failure model."""
        return [
            node_id
            for node_id in self._nodes
            if self.failure_model.available(node_id, time)
        ]

    def with_failure_model(self, failure_model: FailureModel) -> "GridTopology":
        """Return a copy of this topology with a different failure model."""
        return GridTopology(
            nodes=self.nodes,
            sites=self.sites,
            links=list(self._links),
            failure_model=failure_model,
            wan_latency=self.wan_latency,
            wan_bandwidth=self.wan_bandwidth,
            name=self.name,
        )

    def to_networkx(self) -> nx.Graph:
        """Export a :mod:`networkx` graph of nodes (vertices) and links (edges)."""
        graph = nx.Graph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(node.node_id, speed=node.speed, cores=node.cores,
                           site=self._node_site.get(node.node_id))
        ids = list(self._nodes)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                link = self.link_between(a, b)
                graph.add_edge(a, b, latency=link.latency, bandwidth=link.bandwidth)
        return graph

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly structural summary used by reports."""
        return {
            "name": self.name,
            "nodes": len(self._nodes),
            "sites": len(self._sites),
            "explicit_links": len(self._links),
            "heterogeneity": self.heterogeneity(),
            "speeds": self.speeds(),
        }


class GridBuilder:
    """Fluent builder for the grid shapes used by the experiments.

    Examples
    --------
    A dedicated homogeneous cluster::

        grid = GridBuilder().homogeneous(nodes=8, speed=2.0).build(seed=0)

    A heterogeneous, non-dedicated grid with random-walk background load::

        grid = (GridBuilder()
                .heterogeneous(nodes=16, speed_spread=8.0)
                .with_dynamic_load("randomwalk", mean_level=0.4)
                .build(seed=3))

    A two-site grid with a slow wide-area link::

        grid = (GridBuilder()
                .site("edi", nodes=8, speed=4.0)
                .site("bcn", nodes=8, speed=2.0)
                .wan(latency=2e-2, bandwidth=5e6)
                .build(seed=7))
    """

    def __init__(self) -> None:
        self._site_specs: List[Dict[str, object]] = []
        self._load_kind: str = "constant"
        self._load_kwargs: Dict[str, float] = {}
        self._failure_model: Optional[FailureModel] = None
        self._wan_latency = DEFAULT_WAN_LATENCY
        self._wan_bandwidth = DEFAULT_WAN_BANDWIDTH
        self._name = "grid"

    # ------------------------------------------------------------ node groups
    def homogeneous(self, nodes: int, speed: float = 1.0, cores: int = 1) -> "GridBuilder":
        """Add a single site of identical nodes."""
        return self.site("site0", nodes=nodes, speed=speed, cores=cores)

    def heterogeneous(
        self,
        nodes: int,
        speed_spread: float = 4.0,
        base_speed: float = 1.0,
        cores: int = 1,
    ) -> "GridBuilder":
        """Add a single site whose node speeds span ``base_speed``–``base_speed×spread``.

        Speeds are spaced geometrically so the spread is controlled exactly
        by ``speed_spread`` regardless of node count.
        """
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        check_positive(speed_spread, "speed_spread")
        check_positive(base_speed, "base_speed")
        speeds = list(
            base_speed * np.geomspace(1.0, speed_spread, num=nodes)
        )
        self._site_specs.append(
            {"site_id": f"site{len(self._site_specs)}", "speeds": speeds, "cores": cores}
        )
        return self

    def site(
        self,
        site_id: str,
        nodes: int,
        speed: float = 1.0,
        cores: int = 1,
        intra_latency: float = 5e-5,
        intra_bandwidth: float = 1.25e8,
    ) -> "GridBuilder":
        """Add a named site of ``nodes`` identical nodes."""
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        check_positive(speed, "speed")
        self._site_specs.append(
            {
                "site_id": site_id,
                "speeds": [float(speed)] * nodes,
                "cores": cores,
                "intra_latency": intra_latency,
                "intra_bandwidth": intra_bandwidth,
            }
        )
        return self

    def with_speeds(self, speeds: Sequence[float], site_id: Optional[str] = None) -> "GridBuilder":
        """Add a site with an explicit per-node speed list."""
        if len(speeds) == 0:
            raise ConfigurationError("speeds must not be empty")
        for s in speeds:
            check_positive(s, "speed")
        self._site_specs.append(
            {
                "site_id": site_id or f"site{len(self._site_specs)}",
                "speeds": [float(s) for s in speeds],
                "cores": 1,
            }
        )
        return self

    # -------------------------------------------------------------- behaviour
    def with_dynamic_load(self, kind: str = "randomwalk", **kwargs: float) -> "GridBuilder":
        """Attach a background-load model to every node.

        ``kind`` is one of ``"constant"``, ``"randomwalk"``, ``"sinusoidal"``
        or ``"bursty"``; keyword arguments are forwarded to the model.
        Stochastic models get an independent stream per node.
        """
        if kind not in {"constant", "randomwalk", "sinusoidal", "bursty"}:
            raise ConfigurationError(f"unknown load kind {kind!r}")
        self._load_kind = kind
        self._load_kwargs = dict(kwargs)
        return self

    def with_failures(self, failure_model: FailureModel) -> "GridBuilder":
        """Attach a failure/churn model to the topology."""
        self._failure_model = failure_model
        return self

    def wan(self, latency: float, bandwidth: float) -> "GridBuilder":
        """Set the default wide-area link characteristics between sites."""
        self._wan_latency = float(latency)
        self._wan_bandwidth = float(bandwidth)
        return self

    def named(self, name: str) -> "GridBuilder":
        """Set the topology name used in reports."""
        self._name = name
        return self

    # ------------------------------------------------------------------ build
    def _make_load(self, seed: int, node_id: str, rng: np.random.Generator) -> LoadModel:
        kind = self._load_kind
        kwargs = dict(self._load_kwargs)
        if kind == "constant":
            return ConstantLoad(level=float(kwargs.get("level", 0.0)))
        if kind == "sinusoidal":
            # Stagger phases per node so the grid is not globally synchronous.
            phase = float(rng.uniform(0.0, 2.0 * np.pi))
            kwargs.setdefault("phase", phase)
            return SinusoidalLoad(**kwargs)
        if kind == "randomwalk":
            kwargs.setdefault("start_level", float(rng.uniform(0.05, 0.4)))
            return RandomWalkLoad(seed=seed, name=node_id, **kwargs)
        if kind == "bursty":
            return BurstyLoad(seed=seed, name=node_id, **kwargs)
        raise ConfigurationError(f"unknown load kind {kind!r}")

    def build(self, seed: int = 0) -> GridTopology:
        """Materialise the topology described so far."""
        if not self._site_specs:
            raise ConfigurationError("GridBuilder: no nodes declared")
        rng = make_rng(seed, "gridbuilder")
        nodes: List[GridNode] = []
        sites: List[Site] = []
        for spec in self._site_specs:
            site_id = str(spec["site_id"])
            speeds: List[float] = list(spec["speeds"])  # type: ignore[arg-type]
            cores = int(spec.get("cores", 1))
            site = Site(
                site_id=site_id,
                intra_latency=float(spec.get("intra_latency", 5e-5)),
                intra_bandwidth=float(spec.get("intra_bandwidth", 1.25e8)),
            )
            for index, speed in enumerate(speeds):
                node_id = f"{site_id}/n{index}"
                load = self._make_load(seed, node_id, rng)
                nodes.append(
                    GridNode(node_id=node_id, speed=float(speed), cores=cores,
                             load_model=load, site=site_id)
                )
                site.add_node(node_id)
            sites.append(site)
        return GridTopology(
            nodes=nodes,
            sites=sites,
            failure_model=self._failure_model,
            wan_latency=self._wan_latency,
            wan_bandwidth=self._wan_bandwidth,
            name=self._name,
        )
