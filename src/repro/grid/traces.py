"""Synthetic load-trace generation and (de)serialisation.

Grid experiments in the 2006/2007 companion papers were driven by the actual
background load of shared departmental machines.  Lacking those recordings,
this module generates synthetic traces with the same qualitative features —
slow drift, diurnal cycles and sporadic bursts — and can round-trip them to
simple CSV files so experiments can be replayed and shared.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.load import TraceLoad
from repro.utils.rng import make_rng

__all__ = ["LoadTrace", "generate_trace", "generate_node_traces",
           "read_trace_csv", "write_trace_csv"]


@dataclass(frozen=True)
class LoadTrace:
    """A recorded (or generated) utilisation trace for one node."""

    node_id: str
    times: Tuple[float, ...]
    levels: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.levels):
            raise ConfigurationError("times and levels must have the same length")
        if len(self.times) == 0:
            raise ConfigurationError("trace must contain at least one sample")

    def to_load_model(self, cyclic: bool = False) -> TraceLoad:
        """Convert this trace into a :class:`repro.grid.load.TraceLoad` model."""
        return TraceLoad(times=self.times, levels=self.levels, cyclic=cyclic)

    @property
    def duration(self) -> float:
        """Span of the trace in virtual seconds."""
        return self.times[-1] - self.times[0]

    def mean_level(self) -> float:
        """Average utilisation across the trace."""
        return float(np.mean(self.levels))


def generate_trace(
    node_id: str,
    duration: float,
    step: float = 5.0,
    seed: int = 0,
    base: float = 0.2,
    drift_volatility: float = 0.03,
    diurnal_amplitude: float = 0.15,
    diurnal_period: float = 600.0,
    burst_probability: float = 0.05,
    burst_level: float = 0.6,
) -> LoadTrace:
    """Generate one synthetic utilisation trace.

    The trace is the clipped sum of a mean-reverting random drift, a
    sinusoidal "diurnal" component and sporadic bursts.

    Parameters mirror the qualitative features of shared-workstation load:
    ``base`` sets the long-run mean, ``burst_probability`` the per-step
    chance of an interfering job arriving.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    if step <= 0:
        raise ConfigurationError(f"step must be > 0, got {step}")
    rng = make_rng(seed, f"trace/{node_id}")
    n = int(np.floor(duration / step)) + 1
    times = np.arange(n) * step

    drift = np.empty(n)
    drift[0] = base
    for i in range(1, n):
        shock = rng.normal(0.0, drift_volatility)
        drift[i] = drift[i - 1] + 0.1 * (base - drift[i - 1]) + shock
    diurnal = diurnal_amplitude * np.sin(2.0 * np.pi * times / diurnal_period)
    bursts = (rng.random(n) < burst_probability) * burst_level

    levels = np.clip(drift + diurnal + bursts, 0.0, 0.95)
    return LoadTrace(node_id=node_id, times=tuple(map(float, times)),
                     levels=tuple(map(float, levels)))


def generate_node_traces(
    node_ids: Sequence[str],
    duration: float,
    step: float = 5.0,
    seed: int = 0,
    **kwargs: float,
) -> Dict[str, LoadTrace]:
    """Generate an independent trace per node (streams keyed by node id)."""
    traces: Dict[str, LoadTrace] = {}
    for index, node_id in enumerate(node_ids):
        traces[node_id] = generate_trace(
            node_id=node_id, duration=duration, step=step,
            seed=seed + index * 7919, **kwargs,
        )
    return traces


def write_trace_csv(traces: Union[LoadTrace, Sequence[LoadTrace]],
                    path: Union[str, Path, io.TextIOBase]) -> None:
    """Write one or more traces to a CSV file with columns node,time,level."""
    if isinstance(traces, LoadTrace):
        traces = [traces]

    def _write(handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(["node", "time", "level"])
        for trace in traces:
            for t, level in zip(trace.times, trace.levels):
                writer.writerow([trace.node_id, f"{t:.6f}", f"{level:.6f}"])

    if isinstance(path, io.TextIOBase):
        _write(path)
    else:
        with open(path, "w", newline="") as handle:
            _write(handle)


def read_trace_csv(path: Union[str, Path, io.TextIOBase]) -> Dict[str, LoadTrace]:
    """Read traces previously written by :func:`write_trace_csv`."""
    def _read(handle) -> Dict[str, LoadTrace]:
        reader = csv.DictReader(handle)
        series: Dict[str, List[Tuple[float, float]]] = {}
        for row in reader:
            series.setdefault(row["node"], []).append(
                (float(row["time"]), float(row["level"]))
            )
        traces: Dict[str, LoadTrace] = {}
        for node_id, points in series.items():
            points.sort()
            traces[node_id] = LoadTrace(
                node_id=node_id,
                times=tuple(t for t, _ in points),
                levels=tuple(level for _, level in points),
            )
        return traces

    if isinstance(path, io.TextIOBase):
        return _read(path)
    with open(path, "r", newline="") as handle:
        return _read(handle)
