"""Version information for the GRASP reproduction package."""

__version__ = "1.0.0"

#: Version of the PPoPP 2007 paper reproduced by this package.
PAPER = ("González-Vélez & Cole, 'Adaptive Structured Parallelism "
         "for Computational Grids', PPoPP 2007")

#: DOI of the reproduced paper.
PAPER_DOI = "10.1145/1229428.1229456"
