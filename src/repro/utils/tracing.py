"""Lightweight structured tracing.

The GRASP runtime records every phase transition, calibration decision,
adaptation trigger and task completion as a :class:`TraceEvent`.  Traces are
the raw material for the experiment harness (``repro.analysis``) and for the
methodology-trace experiment (E1), which reconstructs Figure 1 of the paper
from a recorded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, categorised event.

    Attributes
    ----------
    time:
        Virtual (simulated) time at which the event occurred.
    category:
        Dot-separated category, e.g. ``"phase.calibration"`` or
        ``"adaptation.recalibrate"``.
    message:
        Human-readable description.
    data:
        Arbitrary structured payload (kept JSON-friendly by convention).
    """

    time: float
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def matches(self, prefix: str) -> bool:
        """True when the event category equals or is nested under ``prefix``."""
        return self.category == prefix or self.category.startswith(prefix + ".")


class Tracer:
    """Collects :class:`TraceEvent` records for one run.

    A tracer can be disabled (``enabled=False``) to remove recording overhead
    in throughput benchmarks; all recording calls become no-ops.
    """

    def __init__(self, enabled: bool = True, clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self._clock = clock or (lambda: 0.0)
        self._events: List[TraceEvent] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual-time source used to timestamp events."""
        self._clock = clock

    def record(self, category: str, message: str = "", **data: Any) -> None:
        """Record one event (no-op when the tracer is disabled)."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(time=float(self._clock()), category=category,
                       message=message, data=dict(data))
        )

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, in recording order."""
        return list(self._events)

    def filter(self, prefix: str) -> List[TraceEvent]:
        """Events whose category matches ``prefix`` (exact or nested)."""
        return [e for e in self._events if e.matches(prefix)]

    def categories(self) -> List[str]:
        """Distinct categories in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.category, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)
