"""Structured run tracing: the runtime's observability layer.

The GRASP runtime records every phase transition, calibration decision,
adaptation trigger, dispatch and cluster membership change as a
:class:`TraceEvent`.  Traces are the raw material for the experiment
harness (``repro.analysis``), the methodology-trace experiment (E1,
reconstructing Figure 1 of the paper from a recorded run), and the
``python -m repro.trace`` report/diff CLI.

Three guarantees this module makes:

* **Thread safety.**  :meth:`Tracer.record` is called from executor
  fan-in threads, future done-callbacks and the cluster coordinator's
  service threads; all tracer state is guarded by one lock and every
  read path (iteration, :attr:`Tracer.events`, :meth:`Tracer.filter`)
  works on a snapshot, so a reader iterating mid-run never sees
  ``RuntimeError: list changed size during iteration``.
* **Bounded retention.**  The in-memory buffer is a ring of at most
  ``max_events`` events (default :data:`DEFAULT_MAX_EVENTS`); older
  events are dropped and counted in :attr:`Tracer.dropped_events`.
  Attached sinks receive **every** event, including ones the ring later
  drops — the JSONL file is the complete record, memory stays bounded.
* **Honest timestamps.**  Every event carries a monotonic sequence
  number (``seq``), the virtual/backend time (``time``) and the wall
  clock (``wall``).  An event recorded before :meth:`Tracer.bind_clock`
  has ``time=None`` — it is *not* silently stamped ``0.0`` and sorted
  before calibration in timelines.

Sinks implement the :class:`TraceSink` protocol; :class:`JsonlTraceSink`
writes one JSON object per line to a line-buffered file through a
background writer thread, so the recording hot path pays a lock and an
append — not serialisation and IO.
"""

from __future__ import annotations

import json
import os
import threading
import time as _time
import uuid
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.sanitizers.locks import make_lock

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "JsonlTraceSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
]

#: Default ring capacity: large enough for any experiment in the repo,
#: small enough that a week-long streaming run cannot exhaust memory.
DEFAULT_MAX_EVENTS = 100_000

#: One shared compact encoder for JSONL lines: dumps() re-reads its
#: kwargs per call, and the sink writer serialises in batches where
#: every nanosecond of GIL hold steals from the dispatch hot path.
_encode_line = json.JSONEncoder(separators=(",", ":"), default=repr).encode


#: Cache key/value for :func:`_format_line` — see there.
_Fragments = Dict[Tuple[Optional[str], str, str], Tuple[str, str]]

#: Encoded-key cache for :func:`_encode_data`: event data keys are
#: ``record()`` kwargs, i.e. a small fixed vocabulary per codebase.
_key_cache: Dict[str, str] = {}

_INF = float("inf")


def _encode_data(data: Dict[str, Any]) -> str:
    """Compact-encode an event's ``data`` dict.

    Fast path for the overwhelmingly common shape — a flat dict of
    plain scalars — at roughly half the cost of the general encoder;
    anything else (nested containers, exotic floats, non-JSON values)
    falls back to :data:`_encode_line` for identical output.
    """
    if not data:
        return "{}"
    parts = []
    for k, v in data.items():
        key = _key_cache.get(k)
        if key is None:
            _key_cache[k] = key = _encode_line(k) + ":"
        t = type(v)
        if t is str:
            parts.append(key + _encode_line(v))
        elif t is int:
            parts.append(key + repr(v))
        elif t is float and -_INF < v < _INF:
            parts.append(key + repr(v))
        elif t is bool:
            parts.append(key + ("true" if v else "false"))
        elif v is None:
            parts.append(key + "null")
        else:
            return _encode_line(data)
    return "{" + ",".join(parts) + "}"


def _format_line(event: "TraceEvent", run_id: Optional[str],
                 fragments: _Fragments) -> str:
    """One JSONL line for ``event`` — same shape as ``to_dict``.

    The per-event varying fields (seq, timestamps, data) are formatted
    directly; the fixed ones (run id, category, message — a handful of
    distinct values per run) are escaped once and cached in
    ``fragments``.  Hand-assembly here halves the per-event cost of a
    full-dict ``json.dumps``, which is the difference between tracing
    being free and tracing showing up in dispatch benchmarks.
    """
    key = (run_id, event.category, event.message)
    cached = fragments.get(key)
    if cached is None:
        run_part = "null" if run_id is None else _encode_line(run_id)
        head = f',"run":{run_part},'
        tail = (f',"category":{_encode_line(event.category)}'
                f',"message":{_encode_line(event.message)},"data":')
        fragments[key] = cached = (head, tail)
    head, tail = cached
    time_part = "null" if event.time is None else repr(event.time)
    return (f'{{"seq":{event.seq}{head}"time":{time_part}'
            f',"wall":{event.wall!r}{tail}{_encode_data(event.data)}}}')


@dataclass(slots=True)
class TraceEvent:
    """One timestamped, categorised event.

    Events are value records — treat them as immutable.  (The class is
    slotted rather than frozen: ``record()`` sits on the dispatch hot
    path, and frozen dataclasses pay an ``object.__setattr__`` per field
    on construction.)

    Attributes
    ----------
    time:
        Virtual (simulated/backend) time at which the event occurred, or
        ``None`` when it was recorded before a clock was bound.
    category:
        Dot-separated category, e.g. ``"phase.calibration"`` or
        ``"adaptation.recalibrate"``.
    message:
        Human-readable description.
    data:
        Arbitrary structured payload (kept JSON-friendly by convention).
    seq:
        Monotonic per-tracer sequence number — the causal order of the
        run, independent of clock binding.
    wall:
        Wall-clock timestamp (``time.time()``) at recording.
    """

    time: Optional[float]
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0
    wall: float = 0.0

    def matches(self, prefix: str) -> bool:
        """True when the event category equals or is nested under ``prefix``."""
        return self.category == prefix or self.category.startswith(prefix + ".")

    def to_dict(self, run_id: Optional[str] = None) -> Dict[str, Any]:
        """A JSON-friendly mapping of the event (the JSONL line shape)."""
        return {
            "seq": self.seq,
            "run": run_id,
            "time": self.time,
            "wall": self.wall,
            "category": self.category,
            "message": self.message,
            "data": self.data,
        }


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive the live event stream of one tracer.

    ``emit`` is called once per recorded event, in ``seq`` order, from
    whichever thread recorded the event — implementations must be
    thread-safe.  A sink whose ``emit`` raises is detached from the
    tracer (with a warning) rather than poisoning the recording path.
    """

    def emit(self, event: TraceEvent, run_id: str) -> None:
        """Receive one event."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release the sink's resources (idempotent)."""
        ...  # pragma: no cover - protocol


class JsonlTraceSink:
    """Writes each event as one JSON line to ``path`` (line-buffered).

    The file is opened eagerly in ``"w"`` mode, so a run's trace file
    exists (possibly empty) from the moment tracing is enabled.

    ``emit`` only enqueues the event under the sink's lock; a background
    writer thread serialises and writes, so tracing a dispatch hot path
    costs an append rather than a ``json.dumps`` plus a flushed write
    per event.  Lines land in ``emit`` order.  ``close()`` drains the
    queue and joins the writer, so a closed sink's file is complete.
    Values that are not JSON-encodable fall back to their ``repr``;
    a writer-side IO error is re-raised from the next ``emit`` (which
    makes the tracer detach this sink).
    """

    #: How long ``close()`` waits for the writer to drain, seconds.
    CLOSE_TIMEOUT = 10.0

    #: Writer-thread poll interval, seconds: the longest an emitted
    #: event waits before reaching the OS (``close()`` drains at once).
    FLUSH_INTERVAL = 0.05

    def __init__(self, path: Any):
        self.path = os.fspath(path)
        self._file = open(self.path, "w", buffering=1, encoding="utf-8")
        self._lock = make_lock("tracer.jsonl-sink")
        self._wake = threading.Event()
        self._pending: List[Tuple[TraceEvent, str]] = []
        # Writer-thread private (never touched under self._lock): the
        # fixed-fragment cache for _format_line.  Bounded in practice —
        # one entry per distinct (run, category, message) triple.
        self._fragments: _Fragments = {}
        self._closed = False
        self._error: Optional[BaseException] = None
        self._writer = threading.Thread(
            target=self._drain_loop, daemon=True,
            name=f"grasp-trace-writer:{os.path.basename(self.path)}")
        self._writer.start()

    def emit(self, event: TraceEvent, run_id: str) -> None:
        with self._lock:
            if self._error is not None:
                raise self._error
            if self._closed:
                return
            self._pending.append((event, run_id))

    def _drain_loop(self) -> None:
        # Timed polling rather than a per-emit wake: waking the writer
        # from every emit costs ~1us on the recording thread, which is
        # real money on the dispatch hot path.  ``close()`` sets the
        # event for an immediate final drain.
        while True:
            self._wake.wait(self.FLUSH_INTERVAL)
            with self._lock:
                batch, self._pending = self._pending, []
                closed = self._closed
            if batch:
                try:
                    self._write(batch)
                except Exception as exc:
                    with self._lock:
                        self._error = exc
                        self._pending = []
                    return
            elif closed:
                return

    def _write(self, batch: List[Tuple[TraceEvent, str]]) -> None:
        # One write (and, with the line-buffered file, one flush) per
        # batch: per-line flushing costs a syscall per event, which at
        # dispatch rates is the dominant tracing overhead.  Lines are
        # assembled via _format_line (cached fixed fragments) rather
        # than a full-dict encode — on a single-core runner every
        # microsecond here is stolen from the dispatch loop.
        fragments = self._fragments
        lines = [_format_line(event, run_id, fragments)
                 for event, run_id in batch]
        self._file.write("\n".join(lines) + "\n")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        self._writer.join(timeout=self.CLOSE_TIMEOUT)
        # Belt and braces: if the writer died on an error or the join
        # timed out, whatever it left behind is written synchronously.
        with self._lock:
            batch, self._pending = self._pending, []
        if batch and self._error is None:
            try:
                self._write(batch)
            except Exception:   # a closing sink must not raise
                pass
        try:
            self._file.close()
        except Exception:       # pragma: no cover - double close etc.
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlTraceSink({self.path!r})"


def _new_run_id() -> str:
    """A short identifier tying one process's run to its trace lines."""
    return f"{os.getpid()}-{uuid.uuid4().hex[:8]}"


class Tracer:
    """Collects :class:`TraceEvent` records for one run.

    A tracer can be disabled (``enabled=False``) to remove recording
    overhead in throughput benchmarks; all recording calls become no-ops.

    Parameters
    ----------
    clock:
        Virtual-time source.  ``None`` (the default) means *unbound*:
        events recorded before :meth:`bind_clock` carry ``time=None``
        (they still carry ``seq`` and ``wall``).
    max_events:
        In-memory ring capacity.  Older events are dropped (and counted
        in :attr:`dropped_events`) once the ring is full; attached sinks
        still receive every event.  ``None`` disables the bound.
    run_id:
        Identifier stamped into every sink line; generated when omitted.
    """

    def __init__(self, enabled: bool = True,
                 clock: Optional[Callable[[], float]] = None,
                 max_events: Optional[int] = DEFAULT_MAX_EVENTS,
                 run_id: Optional[str] = None):
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.enabled = enabled
        self.run_id = run_id or _new_run_id()
        self._clock = clock
        self._max_events = max_events
        self._lock = make_lock("tracer.state")
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._dropped = 0
        self._seq = 0
        self._sinks: List[TraceSink] = []

    # ---------------------------------------------------------------- clock
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual-time source used to timestamp events."""
        self._clock = clock

    # ---------------------------------------------------------------- sinks
    def attach(self, sink: TraceSink) -> None:
        """Forward every subsequent event to ``sink`` (in ``seq`` order)."""
        with self._lock:
            self._sinks.append(sink)

    def detach(self, sink: TraceSink) -> None:
        """Stop forwarding to ``sink`` (no-op when not attached)."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    @property
    def sinks(self) -> List[TraceSink]:
        """The currently attached sinks."""
        with self._lock:
            return list(self._sinks)

    def close(self) -> None:
        """Detach and close every sink (idempotent).

        Recording continues afterwards — only into the in-memory ring —
        so a finished run's tracer stays readable.
        """
        with self._lock:
            sinks, self._sinks = self._sinks, []
        for sink in sinks:
            try:
                sink.close()
            except Exception as exc:
                warnings.warn(f"trace sink {sink!r} failed to close: {exc!r}",
                              RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------ recording
    def record(self, category: str, message: str = "", **data: Any) -> None:
        """Record one event (no-op when the tracer is disabled).

        Safe to call from any thread.  The virtual timestamp comes from
        the bound clock (``None`` while unbound); the event is appended
        to the ring and forwarded to every attached sink under the
        tracer lock, so sink output is strictly ``seq``-ordered.
        """
        if not self.enabled:
            return
        clock = self._clock
        virtual = float(clock()) if clock is not None else None
        wall = _time.time()
        dead: List[TraceSink] = []
        with self._lock:
            # ``data`` is this call's own kwargs dict — no copy needed.
            event = TraceEvent(time=virtual, category=category,
                               message=message, data=data,
                               seq=self._seq, wall=wall)
            self._seq += 1
            if (self._max_events is not None
                    and len(self._events) == self._max_events):
                self._dropped += 1
            self._events.append(event)
            for sink in self._sinks:
                try:
                    sink.emit(event, self.run_id)
                except Exception:
                    dead.append(sink)
            for sink in dead:
                self._sinks.remove(sink)
        for sink in dead:
            warnings.warn(
                f"trace sink {sink!r} raised from emit() and was detached",
                RuntimeWarning, stacklevel=2,
            )

    # -------------------------------------------------------------- reading
    @property
    def events(self) -> List[TraceEvent]:
        """A snapshot of the retained events, in recording order."""
        with self._lock:
            return list(self._events)

    @property
    def dropped_events(self) -> int:
        """Events evicted from the ring so far (sinks still saw them)."""
        with self._lock:
            return self._dropped

    @property
    def max_events(self) -> Optional[int]:
        """The ring capacity (``None`` = unbounded)."""
        return self._max_events

    def filter(self, prefix: str) -> List[TraceEvent]:
        """Events whose category matches ``prefix`` (exact or nested)."""
        return [e for e in self.events if e.matches(prefix)]

    def categories(self) -> List[str]:
        """Distinct categories in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.category, None)
        return list(seen)

    def clear(self) -> None:
        """Drop the retained events (sequence numbers keep counting)."""
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)
