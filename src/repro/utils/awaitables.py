"""Resolving possibly-awaitable payload results in synchronous contexts.

The asyncio backend awaits coroutine payloads natively on its event loop;
every *synchronous* context that can meet a coroutine worker — sequential
reference runs, pipeline cost threading on the master, the simulated
backend's eager dispatch, thread/process worker bodies — funnels through
:func:`resolve_awaitable` instead, so an ``async def`` worker means the
same thing on every backend.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

__all__ = ["resolve_awaitable"]

#: One cached private loop per thread: the dispatch paths resolve one
#: payload per call, and paying asyncio.run's loop setup/teardown per task
#: would tax every coroutine worker on the thread/process/simulated
#: backends.  The loop lives as long as its (long-lived worker) thread.
_thread_loops = threading.local()

#: One shared resolver thread for the inside-a-running-loop fallback, so
#: repeated nested resolutions (pipeline probes on the asyncio backend run
#: one per stage) reuse a thread + loop instead of building both per call.
_resolver_pool: Optional[ThreadPoolExecutor] = None
_resolver_lock = threading.Lock()


async def _consume(awaitable) -> Any:
    return await awaitable


def _private_loop() -> asyncio.AbstractEventLoop:
    loop = getattr(_thread_loops, "loop", None)
    if loop is None or loop.is_closed():
        loop = asyncio.new_event_loop()
        _thread_loops.loop = loop
    return loop


def _resolver() -> ThreadPoolExecutor:
    global _resolver_pool
    with _resolver_lock:
        if _resolver_pool is None:
            # Deliberately NOT "grasp-" prefixed: backend lifecycle tests
            # treat lingering grasp-* threads as leaks, and this resolver
            # is a process-lifetime singleton, not backend state.
            _resolver_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-awaitable-resolver")
        return _resolver_pool


def _resolve_on_resolver(value: Any) -> Any:
    _thread_loops.is_resolver = True
    return _private_loop().run_until_complete(_consume(value))


def resolve_awaitable(value: Any) -> Any:
    """Return ``value``, running it to completion first if it is awaitable.

    Non-awaitable values pass through untouched, so call sites can wrap
    every payload invocation unconditionally.  Awaitables run to completion
    on the calling thread's cached private event loop.  When the caller is
    itself inside a running loop (a synchronous helper like
    ``Pipeline.run_item`` executing as an asyncio-backend payload), the
    resolution hops to a throwaway thread instead — blocking the calling
    loop exactly as any synchronous payload on it would.
    """
    if not inspect.isawaitable(value):
        return value
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return _private_loop().run_until_complete(_consume(value))
    if getattr(_thread_loops, "is_resolver", False):
        # Doubly-nested (a sync helper inside the resolver's own loop):
        # a throwaway thread avoids deadlocking the single resolver.
        with ThreadPoolExecutor(max_workers=1) as pool:
            return pool.submit(asyncio.run, _consume(value)).result()
    return _resolver().submit(_resolve_on_resolver, value).result()
