"""Deterministic random-number management.

Every stochastic component of the simulator (background-load models, failure
models, workload generators) draws from its own named stream derived from a
single experiment seed.  This guarantees that

* the whole experiment is reproducible from one integer seed, and
* adding or removing one stochastic component does not perturb the draws of
  the others (streams are independent, keyed by name).

The implementation uses :class:`numpy.random.Generator` seeded through
``numpy.random.SeedSequence`` spawned per stream name.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["derive_seed", "make_rng", "RngStream"]


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a stream-specific 63-bit seed from ``base_seed`` and ``name``.

    The derivation hashes the pair with SHA-256 so that distinct names give
    statistically independent seeds while remaining fully deterministic.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.
    name:
        A stable identifier for the consuming component, e.g.
        ``"load/node3"`` or ``"workload/montecarlo"``.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(base_seed: int, name: str = "default") -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator` for ``name``."""
    return np.random.default_rng(derive_seed(base_seed, name))


@dataclass
class RngStream:
    """A registry of named, independent random generators.

    Components request a generator by name; repeated requests for the same
    name return the *same* generator instance so that a stream's state
    advances coherently across calls.

    Examples
    --------
    >>> streams = RngStream(seed=42)
    >>> a = streams.get("load/node0")
    >>> b = streams.get("load/node1")
    >>> a is streams.get("load/node0")
    True
    >>> a is b
    False
    """

    seed: int = 0
    _generators: Dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``."""
        gen = self._generators.get(name)
        if gen is None:
            gen = make_rng(self.seed, name)
            self._generators[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStream":
        """Create a child registry whose streams are independent of ours."""
        return RngStream(seed=derive_seed(self.seed, f"spawn:{name}"))

    def reset(self, name: Optional[str] = None) -> None:
        """Reset one stream (or all streams when ``name`` is ``None``)."""
        if name is None:
            self._generators.clear()
        else:
            self._generators.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._generators

    def __len__(self) -> int:
        return len(self._generators)
