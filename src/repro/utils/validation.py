"""Argument-validation helpers.

Small, explicit validators used at public API boundaries.  They raise
:class:`repro.exceptions.ConfigurationError` with a message that names the
offending parameter, which keeps configuration errors easy to diagnose in
scripted experiment sweeps.
"""

from __future__ import annotations

from typing import Any, Sized, Tuple, Type, Union

from repro.exceptions import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_not_empty",
    "check_type",
]

Number = Union[int, float]


def check_positive(value: Number, name: str) -> Number:
    """Require ``value > 0``; return it for chaining."""
    if not (value > 0):
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: Number, name: str) -> Number:
    """Require ``value >= 0``; return it for chaining."""
    if not (value >= 0):
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: Number, name: str) -> Number:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: Number,
    name: str,
    low: Number,
    high: Number,
    *,
    inclusive: bool = True,
) -> Number:
    """Require ``low <= value <= high`` (or strict when ``inclusive=False``)."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        brackets = "[]" if inclusive else "()"
        raise ConfigurationError(
            f"{name} must be in {brackets[0]}{low}, {high}{brackets[1]}, got {value!r}"
        )
    return value


def check_not_empty(value: Sized, name: str) -> Sized:
    """Require a non-empty sized collection; return it for chaining."""
    if len(value) == 0:
        raise ConfigurationError(f"{name} must not be empty")
    return value


def check_type(value: Any, name: str, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Require ``isinstance(value, types)``; return it for chaining."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise ConfigurationError(
            f"{name} must be of type {expected}, got {type(value).__name__}"
        )
    return value
