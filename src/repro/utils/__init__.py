"""Shared utilities: deterministic RNG, statistics, tracing and validation."""

from __future__ import annotations

from repro.utils.rng import RngStream, derive_seed, make_rng
from repro.utils.stats import (
    LinearFit,
    RegressionResult,
    Summary,
    coefficient_of_variation,
    multivariate_linear_regression,
    normalise,
    summarise,
    univariate_linear_regression,
    weighted_mean,
)
from repro.utils.tracing import JsonlTraceSink, TraceEvent, TraceSink, Tracer
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_not_empty,
    check_type,
)

__all__ = [
    "RngStream",
    "derive_seed",
    "make_rng",
    "LinearFit",
    "RegressionResult",
    "Summary",
    "coefficient_of_variation",
    "multivariate_linear_regression",
    "normalise",
    "summarise",
    "univariate_linear_regression",
    "weighted_mean",
    "JsonlTraceSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_not_empty",
    "check_type",
]
