"""Statistical primitives used by the calibration and analysis code.

The GRASP calibration phase (Algorithm 1 of the paper) ranks nodes either by
raw execution time or *statistically*, using "univariate and multivariate
linear regression involving execution time, processor load, and bandwidth
utilisation".  This module implements those regressions (via least squares)
together with the summary statistics used throughout the analysis harness.

All routines accept plain sequences or NumPy arrays and return small frozen
dataclasses so results serialise and compare cleanly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Summary",
    "LinearFit",
    "RegressionResult",
    "summarise",
    "weighted_mean",
    "coefficient_of_variation",
    "normalise",
    "percentile",
    "univariate_linear_regression",
    "multivariate_linear_regression",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    @property
    def spread(self) -> float:
        """Max minus min; a quick heterogeneity indicator."""
        return self.maximum - self.minimum


@dataclass(frozen=True)
class LinearFit:
    """Result of a univariate least-squares fit ``y ≈ intercept + slope·x``."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * x


@dataclass(frozen=True)
class RegressionResult:
    """Result of a multivariate least-squares fit ``y ≈ intercept + coeffs·x``."""

    coefficients: tuple
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: Sequence[float]) -> float:
        """Evaluate the fitted hyperplane at feature vector ``x``."""
        x_arr = np.asarray(x, dtype=float)
        if x_arr.shape != (len(self.coefficients),):
            raise ValueError(
                f"expected {len(self.coefficients)} features, got {x_arr.shape}"
            )
        return float(self.intercept + np.dot(self.coefficients, x_arr))


def summarise(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises
    ------
    ValueError
        If ``values`` is empty.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    minimum = float(arr.min())
    maximum = float(arr.max())
    # Pairwise summation can put the mean an ulp outside [min, max] for
    # near-identical samples; clamp so Summary invariants always hold.
    mean = min(max(float(arr.mean()), minimum), maximum)
    return Summary(
        count=int(arr.size),
        mean=mean,
        std=float(arr.std(ddof=0)),
        minimum=minimum,
        maximum=maximum,
        median=float(np.median(arr)),
    )


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; weights need not be normalised."""
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError("values and weights must have the same length")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return float(np.dot(v, w) / total)


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Std/mean of a sample; 0.0 for a zero-mean or single-element sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        return 0.0
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std(ddof=0) / abs(mean))


def normalise(values: Sequence[float]) -> np.ndarray:
    """Scale ``values`` into ``[0, 1]`` (all zeros when the range is zero)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr
    low, high = arr.min(), arr.max()
    if high == low:
        return np.zeros_like(arr)
    return (arr - low) / (high - low)


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` with linear interpolation.

    ``q`` is on the ``[0, 100]`` scale.  The estimate follows the standard
    ``linear`` method (NumPy's default): rank ``(n - 1) * q / 100`` with the
    fractional part interpolated between the two nearest order statistics.
    Shared by the metrics histogram summaries (p50/p95/p99) and the trace
    regression-gate profile so both report identical numbers for identical
    samples.

    Raises
    ------
    ValueError
        If ``values`` is empty or ``q`` is outside ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("cannot take a percentile of an empty sample")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def univariate_linear_regression(
    x: Sequence[float], y: Sequence[float]
) -> LinearFit:
    """Least-squares fit of ``y`` against a single predictor ``x``.

    Used by the *statistical calibration* mode to adjust observed execution
    times for processor load (the predictor).

    Raises
    ------
    ValueError
        If the inputs differ in length or contain fewer than two points.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    n = x_arr.size
    if n < 2:
        raise ValueError("need at least two points for a regression")

    x_mean = x_arr.mean()
    y_mean = y_arr.mean()
    sxx = float(np.sum((x_arr - x_mean) ** 2))
    sxy = float(np.sum((x_arr - x_mean) * (y_arr - y_mean)))
    if sxx == 0.0:
        # Degenerate predictor: fall back to the constant model.
        slope = 0.0
    else:
        slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    predictions = intercept + slope * x_arr
    ss_res = float(np.sum((y_arr - predictions) ** 2))
    ss_tot = float(np.sum((y_arr - y_mean) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else max(0.0, 1.0 - ss_res / ss_tot)
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=float(r_squared), n=int(n))


def multivariate_linear_regression(
    features: Sequence[Sequence[float]], y: Sequence[float]
) -> RegressionResult:
    """Least-squares fit of ``y`` against several predictors.

    ``features`` is an ``n × k`` matrix (one row per observation).  The fit
    is solved with :func:`numpy.linalg.lstsq`, which tolerates singular or
    collinear feature matrices by returning the minimum-norm solution — the
    behaviour we want for small calibration samples.

    Raises
    ------
    ValueError
        If shapes are inconsistent or fewer than two observations are given.
    """
    x_arr = np.asarray(features, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.ndim != 2:
        raise ValueError("features must be a 2-D array (observations × predictors)")
    if x_arr.shape[0] != y_arr.shape[0]:
        raise ValueError("features and y must have the same number of rows")
    n, k = x_arr.shape
    if n < 2:
        raise ValueError("need at least two observations for a regression")

    design = np.hstack([np.ones((n, 1)), x_arr])
    solution, _, _, _ = np.linalg.lstsq(design, y_arr, rcond=None)
    intercept = float(solution[0])
    coefficients = tuple(float(c) for c in solution[1:])

    predictions = design @ solution
    ss_res = float(np.sum((y_arr - predictions) ** 2))
    ss_tot = float(np.sum((y_arr - y_arr.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else max(0.0, 1.0 - ss_res / ss_tot)
    return RegressionResult(
        coefficients=coefficients,
        intercept=intercept,
        r_squared=float(r_squared),
        n=int(n),
    )
