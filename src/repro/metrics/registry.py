"""Aggregated runtime metrics: counters, gauges, histograms, one registry.

The tracer (:mod:`repro.utils.tracing`) answers *what happened, in order*;
this module answers *how much, how fast, right now*.  A
:class:`MetricsRegistry` holds named instruments:

* :class:`Counter` — monotonically increasing totals (tasks dispatched,
  losses, recalibrations);
* :class:`Gauge` — point-in-time levels that move both ways (in-flight
  dispatches per node, live workers), including callback gauges evaluated
  lazily at snapshot time (:meth:`MetricsRegistry.gauge_fn`);
* :class:`Histogram` — fixed-bucket distributions with p50/p95/p99
  summaries (dispatch→resolve latency, chunk sizes).

Design constraints, in order of importance:

* **Lock-cheap writers.**  Every mutation takes exactly one small
  per-instrument lock (a :func:`~repro.sanitizers.locks.make_lock`, so
  the lock-order sanitizer sees metrics sites too); instrument handles
  are resolved once and cached by the instrumenting code where it
  matters, and the resolve fast path is a single dict read.
* **Snapshot without stopping writers.**  :meth:`MetricsRegistry.snapshot`
  copies the series table under the registry lock, then reads each
  instrument under its own lock — writers in other threads are never
  blocked for the duration of the whole snapshot.
* **Namespaced series.**  An instrument is identified by its metric name
  plus a label set, rendered ``dispatch.latency{backend=process,node=n3}``.
  Label values are stringified; the *set* of label combinations per
  metric name is bounded by a cardinality guard — past
  ``max_series_per_metric`` distinct label sets, further combinations
  fold into one ``{overflow=true}`` series (counted in the snapshot's
  ``meta.folded_series``) instead of growing memory without bound.
* **Simulator-honest time.**  The registry never reads the wall clock on
  the write path.  ``bind_clock`` attaches the backend/virtual clock
  (exactly like ``Tracer.bind_clock``); the only wall read is the
  human-facing stamp on a snapshot, routed through
  :mod:`repro.metrics.clock` (enforced by graspcheck GC009).

Histogram percentiles are computed from a bounded reservoir of the most
recent ``reservoir`` observations (default 2048) via
:func:`repro.utils.stats.percentile` — exact for runs that fit the
reservoir, a recent-window estimate for longer ones; the fixed buckets
always cover the full run.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.metrics.clock import wall_time
from repro.sanitizers.locks import make_lock
from repro.utils.stats import percentile

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_series_key",
]

#: Cardinality guard: distinct label sets allowed per metric name before
#: new combinations fold into the ``{overflow=true}`` series.  Sized for
#: the runtime's real label spaces (backend × node on grids of tens of
#: nodes), far below anything that could exhaust memory.
DEFAULT_MAX_SERIES = 64

#: Default histogram buckets (upper bounds, seconds): spans ~10us IPC
#: round-trips to multi-second stage executions; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Observations retained for percentile summaries, per histogram.
DEFAULT_RESERVOIR = 2048

#: Label set that over-cardinality series fold into.
_OVERFLOW_LABELS: Tuple[Tuple[str, str], ...] = (("overflow", "true"),)

_LabelKey = Tuple[Tuple[str, str], ...]
_SeriesKey = Tuple[str, _LabelKey]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series_key(name: str, labels: _LabelKey) -> str:
    """Render ``name{k=v,...}`` (bare ``name`` for an empty label set)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = make_lock("metrics.instrument")
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0; counters never go down)."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def read(self) -> Dict[str, Any]:
        """This instrument's snapshot fragment."""
        return {"value": self.value}


class Gauge:
    """A level that moves both ways."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = make_lock("metrics.instrument")
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def read(self) -> Dict[str, Any]:
        return {"value": self.value}


class _CallbackGauge:
    """A gauge whose value is a callable evaluated at snapshot time.

    The callback runs outside any registry lock; an exception makes the
    snapshot value ``None`` rather than poisoning the whole snapshot.
    """

    kind = "gauge"
    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> Optional[float]:
        try:
            return float(self._fn())
        except Exception:
            return None

    def read(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket distribution with bounded-reservoir percentiles."""

    kind = "histogram"
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_min", "_max",
                 "_reservoir")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                 reservoir: int = DEFAULT_RESERVOIR) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._lock = make_lock("metrics.instrument")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)     # trailing +Inf bucket
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._reservoir: Deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._reservoir.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile of the retained reservoir (None if empty)."""
        with self._lock:
            sample = list(self._reservoir)
        if not sample:
            return None
        return percentile(sample, q)

    def read(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = sum(counts)
            observed = {"sum": self._sum, "min": self._min, "max": self._max}
            sample = list(self._reservoir)
        buckets: Dict[str, int] = {}
        for bound, bucket_count in zip(self._bounds, counts):
            buckets[repr(bound)] = bucket_count
        buckets["+Inf"] = counts[-1]
        summary: Dict[str, Any] = {
            "count": total,
            "sum": observed["sum"],
            "min": observed["min"],
            "max": observed["max"],
            "buckets": buckets,
        }
        for q in (50, 95, 99):
            summary[f"p{q}"] = percentile(sample, q) if sample else None
        return summary


class MetricsRegistry:
    """Namespaced, thread-safe home of one run's instruments."""

    def __init__(self, max_series_per_metric: int = DEFAULT_MAX_SERIES):
        if max_series_per_metric < 1:
            raise ValueError(
                f"max_series_per_metric must be >= 1, "
                f"got {max_series_per_metric}")
        self._lock = make_lock("metrics.registry")
        self._series: Dict[_SeriesKey, Any] = {}
        # Label sets folded by the cardinality guard, mapped to the
        # overflow series they landed in (keeps the resolve fast path a
        # dict read even for folded series).
        self._alias: Dict[_SeriesKey, _SeriesKey] = {}
        self._per_metric: Dict[str, int] = {}
        self._max_series = max_series_per_metric
        self._folded = 0
        self._clock: Optional[Callable[[], float]] = None

    # ---------------------------------------------------------------- clock
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual/backend time source stamped onto snapshots."""
        self._clock = clock

    # ----------------------------------------------------------- instruments
    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._resolve(name, labels, Counter, "counter")

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        return self._resolve(name, labels, Gauge, "gauge")

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 **labels: Any) -> None:
        """Register a callback gauge evaluated lazily at snapshot time.

        Re-registering the same series replaces the callback (a backend
        re-adopting a registry must not raise).
        """
        instrument = self._resolve(name, labels, lambda: _CallbackGauge(fn),
                                   "gauge")
        if not isinstance(instrument, _CallbackGauge):
            raise ValueError(
                f"metric {name!r} is already a plain {instrument.kind}, "
                "not a callback gauge")
        instrument._fn = fn

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: Any) -> Histogram:
        """The histogram series ``name{labels}`` (created on first use).

        ``buckets`` only applies at creation; later resolutions of an
        existing series return it unchanged.
        """
        return self._resolve(name, labels, lambda: Histogram(buckets),
                             "histogram")

    def _resolve(self, name: str, labels: Dict[str, Any],
                 factory: Callable[[], Any], kind: str) -> Any:
        label_key = _label_key(labels)
        key = (name, label_key)
        # Fast path: a plain dict read (atomic under the GIL).  The
        # tables only ever grow and instruments are never replaced
        # (callback gauges swap their *callable*, not the instrument),
        # so a hit is always the live instrument.
        instrument = self._series.get(key)
        if instrument is None:
            alias = self._alias.get(key)
            if alias is not None:
                instrument = self._series.get(alias)
        if instrument is None:
            with self._lock:
                used = self._per_metric.get(name, 0)
                if (key not in self._series and key not in self._alias
                        and used >= self._max_series):
                    # Cardinality guard: fold the new label set into the
                    # shared overflow series instead of growing forever.
                    self._alias[key] = (name, _OVERFLOW_LABELS)
                    self._folded += 1
                key = self._alias.get(key, key)
                instrument = self._series.get(key)
                if instrument is None:
                    instrument = factory()
                    self._series[key] = instrument
                    self._per_metric[name] = used + 1
        if instrument.kind != kind:
            raise ValueError(
                f"metric {format_series_key(*key)!r} is a "
                f"{instrument.kind}, requested {kind}")
        return instrument

    # ---------------------------------------------------------------- reading
    def total(self, name: str) -> float:
        """Sum of a counter/gauge metric's values across all label sets.

        Histograms contribute their observation *count*.  Unknown names
        total 0.0.
        """
        with self._lock:
            matching = [inst for (metric, _), inst in self._series.items()
                        if metric == name]
        total = 0.0
        for instrument in matching:
            if instrument.kind == "histogram":
                total += instrument.count
            else:
                value = instrument.value
                if value is not None:
                    total += value
        return total

    def series_names(self) -> List[str]:
        """Distinct metric names, sorted."""
        with self._lock:
            return sorted({name for name, _ in self._series})

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-friendly view of every series, writers unhindered.

        The registry lock is held only to copy the series table; each
        instrument is then read under its own lock, so a snapshot never
        stalls concurrent writers for its full duration.
        """
        with self._lock:
            items = list(self._series.items())
            folded = self._folded
        clock = self._clock
        series: List[Dict[str, Any]] = []
        for (name, label_key), instrument in sorted(
                items, key=lambda item: (item[0][0], item[0][1])):
            entry: Dict[str, Any] = {
                "key": format_series_key(name, label_key),
                "name": name,
                "labels": dict(label_key),
                "type": instrument.kind,
            }
            entry.update(instrument.read())
            series.append(entry)
        return {
            "meta": {
                "time": float(clock()) if clock is not None else None,
                "wall": wall_time(),
                "folded_series": folded,
            },
            "series": series,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)
