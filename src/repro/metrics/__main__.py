"""``python -m repro.metrics`` — snapshot rendering and live STATUS probes."""

import sys

from repro.metrics.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
