"""Aggregated runtime metrics for the GRASP runtime.

The trace subsystem (:mod:`repro.trace`) records *what happened, in
order*; this package aggregates *how much and how fast*: a lock-cheap
:class:`MetricsRegistry` of counters, gauges and fixed-bucket histograms
that every backend, the adaptive engine and the cluster layer write into,
snapshot-able at any moment without stopping the writers.

Three ways to read it:

* programmatic — ``GraspResult.metrics`` / ``StreamingRun.metrics()``
  snapshots, or any registry's :meth:`MetricsRegistry.snapshot`;
* live — ``python -m repro.metrics status --connect HOST:PORT`` sends a
  STATUS probe to a running :class:`~repro.cluster.ClusterCoordinator`;
* offline — ``python -m repro.metrics show snapshot.json`` renders a
  dumped snapshot, and ``python -m repro.trace regress`` turns a snapshot
  (or trace) into a perf profile gated against a committed baseline.

See :mod:`repro.metrics.hooks` for the dispatch metric taxonomy and the
accounting invariant the conformance kit asserts.
"""

from repro.metrics.hooks import (
    CHUNK_BUCKETS,
    on_chunk,
    on_issue,
    on_lost,
    on_resolve,
)
from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_MAX_SERIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series_key,
)

__all__ = [
    "CHUNK_BUCKETS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_series_key",
    "on_chunk",
    "on_issue",
    "on_lost",
    "on_resolve",
]
