"""The metrics subsystem's *only* wall-clock access point.

Metric values themselves are timestamped with the backend/tracer clock
bound via :meth:`repro.metrics.registry.MetricsRegistry.bind_clock`, so
simulated runs stay bit-identical; the wall-clock stamp on a snapshot
(for humans correlating a dump with logs) is the single wall read the
subsystem makes, and it lives here.  graspcheck rule GC009 forbids
``time.time()``/``perf_counter()`` anywhere else under ``repro.metrics``
— route new wall reads through this shim or they will not pass CI.
"""

from __future__ import annotations

import time as _time

__all__ = ["wall_time"]


def wall_time() -> float:
    """Wall-clock seconds since the epoch (``time.time()``)."""
    return _time.time()
