"""One-line instrumentation hooks for the dispatch hot path.

Every wall-clock backend records the same three dispatch transitions the
tracer already narrates — issue, resolve, lost — plus chunk sizes.  These
helpers keep each backend's instrumentation to a single call per site,
guard the ``metrics is None`` (metrics disabled) case centrally, and pin
the metric-name taxonomy in one place:

=============================  =========  ==================================
metric                         type       labels
=============================  =========  ==================================
``dispatch.issued``            counter    ``backend``, ``node``
``dispatch.resolved``          counter    ``backend``, ``node``
``dispatch.failed``            counter    ``backend``, ``node``
``dispatch.lost``              counter    ``backend``, ``node``
``dispatch.in_flight``         gauge      ``backend``, ``node``
``dispatch.latency``           histogram  ``backend``, ``node``
``dispatch.chunk_size``        histogram  ``backend``
``transport.bytes_inline``     counter    ``backend``
``transport.bytes_shm``        counter    ``backend``
``transport.shm_segments``     gauge      ``backend``
=============================  =========  ==================================

Counting granularity is *per dispatch*, not per task: a chunked process or
cluster dispatch (k tasks, one round-trip) is one issue and one resolve,
with its size recorded in ``dispatch.chunk_size``.  An issue is recorded
only once a submission has actually been accepted — a submit that raises
(closed backend, broken pool at dispatch) records nothing, so the
accounting invariant (asserted by the backend-conformance kit) is exact:
for every backend, once all handles have resolved,

    ``issued == resolved + lost``

and the ``dispatch.in_flight`` gauges all read zero.  ``failed`` counts
resolves whose payload raised (a subset of ``resolved``).

The ``transport.*`` family measures the data plane (PR 10's shared-memory
path): ``bytes_inline`` / ``bytes_shm`` split each shipped payload into
the bytes that travelled inline (pickle body + small buffers) versus via
a shared-memory segment, and ``shm_segments`` gauges the segments the
backend currently owns — it must read zero once every dispatch resolved
and the backend closed (asserted by the shm leak tests and CI's
``/dev/shm`` scan).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

__all__ = [
    "on_chunk",
    "on_issue",
    "on_lost",
    "on_resolve",
    "on_segments",
    "on_ship",
]

#: Chunk sizes are small integers; latency buckets would waste the range.
CHUNK_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def on_issue(metrics: Optional[Any], backend: str, node: str) -> None:
    """A dispatch left the master for ``node``."""
    if metrics is None:
        return
    metrics.counter("dispatch.issued", backend=backend, node=node).inc()
    metrics.gauge("dispatch.in_flight", backend=backend, node=node).inc()


def on_resolve(metrics: Optional[Any], backend: str, node: str,
               elapsed: float, ok: bool = True) -> None:
    """A dispatch came back (successfully or with a payload error)."""
    if metrics is None:
        return
    metrics.counter("dispatch.resolved", backend=backend, node=node).inc()
    metrics.gauge("dispatch.in_flight", backend=backend, node=node).dec()
    metrics.histogram("dispatch.latency", backend=backend,
                      node=node).observe(elapsed)
    if not ok:
        metrics.counter("dispatch.failed", backend=backend, node=node).inc()


def on_lost(metrics: Optional[Any], backend: str, node: str) -> None:
    """The node died holding the dispatch; the work is gone."""
    if metrics is None:
        return
    metrics.counter("dispatch.lost", backend=backend, node=node).inc()
    metrics.gauge("dispatch.in_flight", backend=backend, node=node).dec()


def on_chunk(metrics: Optional[Any], backend: str, size: int) -> None:
    """A chunk dispatch of ``size`` tasks was issued."""
    if metrics is None:
        return
    metrics.histogram("dispatch.chunk_size", buckets=CHUNK_BUCKETS,
                      backend=backend).observe(size)


def on_ship(metrics: Optional[Any], backend: str, inline_bytes: int,
            shm_bytes: int) -> None:
    """A payload (args or result) crossed the process boundary.

    Exact byte counts where the payload was actually serialised here (a
    shared-memory envelope knows its split precisely); callers on the
    classic inline path pass the cheap probe estimate for
    ``inline_bytes``, which is a lower bound, never an overcount of shm.
    """
    if metrics is None:
        return
    if inline_bytes:
        metrics.counter("transport.bytes_inline",
                        backend=backend).inc(inline_bytes)
    if shm_bytes:
        metrics.counter("transport.bytes_shm", backend=backend).inc(shm_bytes)


def on_segments(metrics: Optional[Any], backend: str, count: int) -> None:
    """The backend's owned shared-memory segment count changed."""
    if metrics is None:
        return
    metrics.gauge("transport.shm_segments", backend=backend).set(count)
