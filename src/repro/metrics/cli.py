"""Render metrics snapshots and query live coordinators.

Two subcommands:

* ``show SNAPSHOT.json`` — render a dumped registry snapshot (the
  :meth:`~repro.metrics.registry.MetricsRegistry.snapshot` shape, e.g. a
  ``GRASP_METRICS`` dump) as a text table or JSON;
* ``status --connect HOST:PORT`` — send a STATUS probe to a live
  :class:`~repro.cluster.ClusterCoordinator` and render its reply.

Exit codes follow the trace CLI convention: 0 on success, 2 on an
unreadable input / unreachable coordinator / usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
from typing import Any, Dict, List, Optional

__all__ = ["MetricsCliError", "load_snapshot", "main", "query_status"]

_RECV_BYTES = 1 << 16


class MetricsCliError(Exception):
    """An unreadable snapshot or failed status query (CLI exit code 2)."""


# --------------------------------------------------------------------- loading
def load_snapshot(path: str) -> Dict[str, Any]:
    """Parse one registry-snapshot JSON file.

    Raises :class:`MetricsCliError` on a missing/unreadable file, invalid
    JSON, or JSON that is not a snapshot object (no ``series`` list).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise MetricsCliError(f"cannot read {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise MetricsCliError(
            f"{path}: not valid JSON ({exc.msg})"
        ) from exc
    if not isinstance(data, dict) or not isinstance(data.get("series"), list):
        raise MetricsCliError(
            f"{path}: not a metrics snapshot (no series list)"
        )
    return data


# --------------------------------------------------------------- status query
def _parse_address(address: str) -> tuple:
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise MetricsCliError(
            f"--connect wants HOST:PORT, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise MetricsCliError(
            f"--connect wants a numeric port, got {port!r}"
        ) from exc


def query_status(host: str, port: int, timeout: float = 5.0) -> Dict[str, Any]:
    """Send one STATUS probe to a coordinator; return its snapshot dict.

    Raises :class:`MetricsCliError` when the coordinator is unreachable,
    does not answer within ``timeout``, or speaks a different protocol
    (e.g. a same-version coordinator that predates STATUS drops the
    connection with a protocol error).
    """
    from repro.cluster.protocol import FrameDecoder, Status, StatusReply, encode
    from repro.exceptions import ProtocolError

    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise MetricsCliError(
            f"cannot connect to coordinator at {host}:{port} ({exc})"
        ) from exc
    try:
        sock.sendall(encode(Status()))
        decoder = FrameDecoder()
        while True:
            try:
                data = sock.recv(_RECV_BYTES)
            except socket.timeout as exc:
                raise MetricsCliError(
                    f"coordinator at {host}:{port} did not answer the "
                    f"STATUS probe within {timeout:.1f}s"
                ) from exc
            if not data:
                raise MetricsCliError(
                    f"coordinator at {host}:{port} closed the connection "
                    "without answering STATUS"
                )
            for message in decoder.feed(data):
                if isinstance(message, StatusReply):
                    return dict(message.snapshot)
                raise MetricsCliError(
                    f"coordinator answered STATUS with "
                    f"{type(message).__name__}"
                )
    except ProtocolError as exc:
        raise MetricsCliError(
            f"protocol error talking to {host}:{port}: {exc}"
        ) from exc
    except OSError as exc:
        raise MetricsCliError(
            f"connection to {host}:{port} failed ({exc})"
        ) from exc
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass


# ------------------------------------------------------------------ rendering
def _fmt(value: Any, precision: int = 4) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def _render_snapshot_text(snapshot: Dict[str, Any], source: str) -> str:
    meta = snapshot.get("meta") or {}
    series = snapshot.get("series") or []
    lines: List[str] = []
    lines.append(f"metrics snapshot — {source}")
    lines.append(f"  run time      {_fmt(meta.get('time'))}")
    lines.append(f"  wall stamp    {_fmt(meta.get('wall'), precision=10)}")
    lines.append(f"  series        {len(series)}"
                 + (f"  (+{meta['folded_series']} folded)"
                    if meta.get("folded_series") else ""))
    counters = [s for s in series if s.get("type") == "counter"]
    gauges = [s for s in series if s.get("type") == "gauge"]
    histograms = [s for s in series if s.get("type") == "histogram"]

    if counters or gauges:
        lines.append("")
        lines.append(f"  {'series':<52} {'type':<9} {'value':>12}")
        for entry in counters + gauges:
            lines.append(f"  {entry.get('key', ''):<52} "
                         f"{entry.get('type', ''):<9} "
                         f"{_fmt(entry.get('value')):>12}")
    if histograms:
        lines.append("")
        lines.append(f"  {'histogram':<52} {'count':>7} {'p50':>10} "
                     f"{'p95':>10} {'p99':>10} {'max':>10}")
        for entry in histograms:
            lines.append(f"  {entry.get('key', ''):<52} "
                         f"{_fmt(entry.get('count')):>7} "
                         f"{_fmt(entry.get('p50')):>10} "
                         f"{_fmt(entry.get('p95')):>10} "
                         f"{_fmt(entry.get('p99')):>10} "
                         f"{_fmt(entry.get('max')):>10}")
    return "\n".join(lines)


def _render_status_text(status: Dict[str, Any], address: str) -> str:
    lines: List[str] = []
    lines.append(f"cluster status — {address}")
    lines.append(f"  protocol      {_fmt(status.get('protocol'))}")
    lines.append(f"  live workers  {_fmt(status.get('live_workers'))}")
    lines.append(f"  pending       {_fmt(status.get('pending'))}")
    lines.append(f"  results       {_fmt(status.get('results_ok'))} ok / "
                 f"{_fmt(status.get('results_failed'))} failed")
    workers = status.get("workers") or []
    if workers:
        lines.append("")
        lines.append(f"  {'node':<18} {'host':<16} {'cpus':>4} {'load':>6} "
                     f"{'pending':>8} {'beat age':>9} {'ok':>7} {'fail':>5}")
        for worker in workers:
            lines.append(
                f"  {_fmt(worker.get('node')):<18} "
                f"{_fmt(worker.get('host')):<16} "
                f"{_fmt(worker.get('cpus')):>4} "
                f"{_fmt(worker.get('load')):>6} "
                f"{_fmt(worker.get('pending')):>8} "
                f"{_fmt(worker.get('heartbeat_age'), precision=3):>9} "
                f"{_fmt(worker.get('results_ok')):>7} "
                f"{_fmt(worker.get('results_failed')):>5}")
    return "\n".join(lines)


# ----------------------------------------------------------------- entry point
def _cmd_show(args: argparse.Namespace) -> int:
    snapshot = load_snapshot(args.snapshot)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2))
    else:
        print(_render_snapshot_text(snapshot, args.snapshot))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    host, port = _parse_address(args.connect)
    status = query_status(host, port, timeout=args.timeout)
    if args.format == "json":
        print(json.dumps(status, indent=2))
    else:
        print(_render_status_text(status, f"{host}:{port}"))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="Render GRASP metrics snapshots / query live clusters.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="render a dumped registry snapshot")
    show.add_argument("snapshot", help="path to a snapshot .json dump")
    show.add_argument("--format", choices=("text", "json"), default="text")
    show.set_defaults(func=_cmd_show)

    status = sub.add_parser(
        "status", help="query a live cluster coordinator")
    status.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to probe")
    status.add_argument("--timeout", type=float, default=5.0,
                        help="probe timeout in seconds (default 5)")
    status.add_argument("--format", choices=("text", "json"),
                        default="text")
    status.set_defaults(func=_cmd_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code (0 ok, 2 error)."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:   # argparse: usage error (2) or --help (0)
        code = exc.code
        return code if isinstance(code, int) else 2
    try:
        return args.func(args)
    except MetricsCliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Same convention as the trace CLI: a closed pager pipe is a
        # silent success, with stdout re-pointed so the shutdown flush
        # stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":    # pragma: no cover - python -m repro.metrics.cli
    sys.exit(main(sys.argv[1:]))
