"""Result record shared by the baseline executors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.skeletons.base import TaskResult

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Outcome of a non-adaptive baseline run (mirrors :class:`GraspResult`)."""

    outputs: Any
    results: List[TaskResult]
    makespan: float
    started: float
    finished: float
    strategy: str
    nodes: List[str] = field(default_factory=list)

    @property
    def total_tasks(self) -> int:
        """Number of completed task results."""
        return len(self.results)

    def per_node_counts(self) -> Dict[str, int]:
        """Tasks completed per node."""
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.node_id] = counts.get(result.node_id, 0) + 1
        return counts
