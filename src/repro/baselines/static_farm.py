"""Non-adaptive farm baselines.

Two comparators for the adaptive GRASP farm:

* :class:`StaticFarm` — the classical static farm: every task is assigned to
  a node *before* execution starts (block, cyclic or speed-weighted block
  distribution) and the assignment never changes.  This is the comparator
  the companion task-farm evaluation uses and the one that suffers most
  under heterogeneity and dynamic load.
* :class:`DemandDrivenFarm` — a work-conserving self-scheduling farm over
  *all* nodes with no calibration and no recalibration.  It isolates the
  contribution of GRASP's fittest-node selection and threshold feedback from
  the generic benefit of demand-driven dispatch (ablation in E4/E10).

Both run the same :class:`~repro.skeletons.taskfarm.TaskFarm` skeleton over
the same execution backend as the adaptive runtime, with the same
communication model (inputs shipped from the master, results shipped back).
Like the adaptive executors they accept any
:class:`~repro.backends.base.ExecutionBackend`, so the comparators run in
virtual time on the simulator or in wall time on real threads.
"""

from __future__ import annotations

import collections
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro.backends import DispatchHandle, ExecutionBackend, as_backend
from repro.baselines.result import BaselineResult
from repro.core.scheduler import (
    DemandDrivenScheduler,
    Scheduler,
    StaticBlockScheduler,
    StaticCyclicScheduler,
    WeightedBlockScheduler,
)
from repro.exceptions import ConfigurationError, ExecutionError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.skeletons.base import Skeleton, Task, TaskResult

__all__ = ["StaticFarm", "DemandDrivenFarm"]

_STRATEGIES = {"block", "cyclic", "weighted"}


class StaticFarm:
    """A-priori distributed (non-adaptive) task farm.

    Parameters
    ----------
    skeleton:
        The farm (or any farm-like skeleton exposing ``make_tasks`` and
        ``execute_task``).
    grid:
        The grid topology to run on.
    strategy:
        ``"block"`` (contiguous equal blocks), ``"cyclic"`` (round-robin) or
        ``"weighted"`` (blocks proportional to nominal node speed — the
        strongest static comparator).
    workers:
        Node identifiers to use; defaults to every node except the master.
    master_node:
        Node hosting the farmer; defaults to the first topology node.
    """

    def __init__(
        self,
        skeleton: Skeleton,
        grid: GridTopology,
        strategy: str = "block",
        workers: Optional[Sequence[str]] = None,
        master_node: Optional[str] = None,
        simulator: Optional[Union[GridSimulator, ExecutionBackend]] = None,
    ):
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown static farm strategy {strategy!r}; expected one of {_STRATEGIES}"
            )
        if not hasattr(skeleton, "execute_task"):
            raise ConfigurationError("StaticFarm needs a farm-like skeleton")
        self.skeleton = skeleton
        self.grid = grid
        self.strategy = strategy
        self.backend = as_backend(simulator if simulator is not None else grid)
        self.simulator = getattr(self.backend, "simulator", None)
        self.master_node = master_node or grid.node_ids[0]
        if self.master_node not in grid:
            raise ConfigurationError(f"unknown master node {self.master_node!r}")
        default_workers = [n for n in grid.node_ids if n != self.master_node]
        self.workers = (list(workers) if workers is not None
                        else (default_workers or [self.master_node]))
        if not self.workers:
            raise ConfigurationError("StaticFarm needs at least one worker")
        for node in self.workers:
            if node not in grid:
                raise ConfigurationError(f"unknown worker node {node!r}")

    def _scheduler(self) -> Scheduler:
        if self.strategy == "block":
            return StaticBlockScheduler()
        if self.strategy == "cyclic":
            return StaticCyclicScheduler()
        return WeightedBlockScheduler(weights=self.grid.speeds())

    def run(self, inputs: Iterable[Any], start_time: float = 0.0) -> BaselineResult:
        """Execute all inputs with the static distribution; return the result."""
        tasks = list(self.skeleton.make_tasks(inputs))
        if not tasks:
            raise ExecutionError("static farm needs at least one task")
        assignment = self._scheduler().assign(tasks, self.workers)

        # Inputs are shipped node by node, task by task, up front (static
        # distribution sends everything before computing starts on the
        # master side; workers start as soon as their first input arrives).
        # Dispatches are collected after all are issued so concurrent
        # backends overlap the whole assignment.
        handles: List[Tuple[Task, DispatchHandle]] = []
        master_free = float(start_time)
        for node in self.workers:
            for task in assignment.get(node, []):
                handle = self.backend.dispatch(
                    task, node, self.skeleton.execute_task,
                    master_node=self.master_node, at_time=master_free,
                    check_loss=False,
                )
                master_free = handle.master_free_after
                handles.append((task, handle))

        results: List[TaskResult] = [
            handle.outcome().to_task_result(task) for task, handle in handles
        ]

        finished = max(r.finished for r in results)
        ordered = [r.output for r in sorted(results, key=lambda r: r.task_id)]
        return BaselineResult(
            outputs=ordered, results=results, makespan=finished - start_time,
            started=float(start_time), finished=finished,
            strategy=f"static-{self.strategy}", nodes=list(self.workers),
        )


class DemandDrivenFarm:
    """Self-scheduling farm over all workers, without calibration/adaptation."""

    def __init__(
        self,
        skeleton: Skeleton,
        grid: GridTopology,
        workers: Optional[Sequence[str]] = None,
        master_node: Optional[str] = None,
        simulator: Optional[Union[GridSimulator, ExecutionBackend]] = None,
    ):
        if not hasattr(skeleton, "execute_task"):
            raise ConfigurationError("DemandDrivenFarm needs a farm-like skeleton")
        self.skeleton = skeleton
        self.grid = grid
        self.backend = as_backend(simulator if simulator is not None else grid)
        self.simulator = getattr(self.backend, "simulator", None)
        self.master_node = master_node or grid.node_ids[0]
        if self.master_node not in grid:
            raise ConfigurationError(f"unknown master node {self.master_node!r}")
        default_workers = [n for n in grid.node_ids if n != self.master_node]
        self.workers = (list(workers) if workers is not None
                        else (default_workers or [self.master_node]))
        if not self.workers:
            raise ConfigurationError("DemandDrivenFarm needs at least one worker")
        self.scheduler = DemandDrivenScheduler()

    def run(self, inputs: Iterable[Any], start_time: float = 0.0) -> BaselineResult:
        """Execute all inputs demand-driven; return the result."""
        tasks = collections.deque(self.skeleton.make_tasks(inputs))
        if not tasks:
            raise ExecutionError("demand-driven farm needs at least one task")

        handles: List[Tuple[Task, DispatchHandle]] = []
        master_free = float(start_time)
        while tasks:
            task = tasks.popleft()
            ready = {
                node: max(self.backend.node_free_at(node), master_free)
                for node in self.workers
            }
            node = self.scheduler.next_node(ready)
            handle = self.backend.dispatch(
                task, node, self.skeleton.execute_task,
                master_node=self.master_node, at_time=ready[node],
                check_loss=False,
            )
            master_free = handle.master_free_after
            handles.append((task, handle))

        results: List[TaskResult] = [
            handle.outcome().to_task_result(task) for task, handle in handles
        ]

        finished = max(r.finished for r in results)
        ordered = [r.output for r in sorted(results, key=lambda r: r.task_id)]
        return BaselineResult(
            outputs=ordered, results=results, makespan=finished - start_time,
            started=float(start_time), finished=finished,
            strategy="demand-driven", nodes=list(self.workers),
        )
