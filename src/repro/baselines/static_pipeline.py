"""Non-adaptive pipeline baseline.

:class:`StaticPipeline` maps each stage onto a node once, before execution,
and never reconsiders the mapping.  Two mapping rules are provided:

* ``"declaration"`` — stage *k* on the *k*-th node of the worker list (the
  naive mapping an MPI pipeline would use);
* ``"speed"`` — heaviest stage on the nominally fastest node (a
  heterogeneity-aware static mapping, the stronger comparator; it still
  cannot react to *dynamic* load, which is the gap adaptation closes in
  experiment E5).

The streaming model (per-stage serialisation, inter-stage transfers, result
return to the master) is identical to the adaptive
:class:`~repro.core.pipeline_executor.PipelineExecutor` — both stream
through :meth:`~repro.backends.base.ExecutionBackend.dispatch_chain` — so
measured differences come from the mapping policy alone, and the baseline
runs on any backend (virtual time or real threads).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.backends import DispatchHandle, ExecutionBackend, as_backend
from repro.baselines.result import BaselineResult
from repro.exceptions import ConfigurationError, ExecutionError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.core.pipeline_executor import lower_pipeline_stages
from repro.skeletons.base import Task, TaskResult
from repro.skeletons.pipeline import Pipeline

__all__ = ["StaticPipeline"]

_MAPPINGS = {"declaration", "speed"}


class StaticPipeline:
    """Fixed stage-to-node mapping, no monitoring, no remapping."""

    def __init__(
        self,
        pipeline: Pipeline,
        grid: GridTopology,
        mapping: str = "declaration",
        workers: Optional[Sequence[str]] = None,
        master_node: Optional[str] = None,
        simulator: Optional[Union[GridSimulator, ExecutionBackend]] = None,
    ):
        if not isinstance(pipeline, Pipeline):
            raise ConfigurationError("StaticPipeline needs a Pipeline skeleton")
        if mapping not in _MAPPINGS:
            raise ConfigurationError(
                f"unknown mapping {mapping!r}; expected one of {_MAPPINGS}"
            )
        self.pipeline = pipeline
        self.grid = grid
        self.mapping = mapping
        self.backend = as_backend(simulator if simulator is not None else grid)
        self.simulator = getattr(self.backend, "simulator", None)
        self.master_node = master_node or grid.node_ids[0]
        if self.master_node not in grid:
            raise ConfigurationError(f"unknown master node {self.master_node!r}")
        default_workers = [n for n in grid.node_ids if n != self.master_node]
        self.workers = (list(workers) if workers is not None
                        else (default_workers or [self.master_node]))
        for node in self.workers:
            if node not in grid:
                raise ConfigurationError(f"unknown worker node {node!r}")
        if len(self.workers) < pipeline.num_stages:
            raise ConfigurationError(
                f"pipeline has {pipeline.num_stages} stages but only "
                f"{len(self.workers)} workers were provided"
            )

    # --------------------------------------------------------------- mapping
    def stage_assignment(self, sample_item: Any) -> Dict[int, str]:
        """The static stage → node assignment used by this baseline."""
        stages = self.pipeline.num_stages
        if self.mapping == "declaration":
            return {i: self.workers[i] for i in range(stages)}
        # "speed": heaviest stage to nominally fastest node.
        costs = [self.pipeline.stage_cost(i, sample_item) for i in range(stages)]
        stage_order = sorted(range(stages), key=lambda i: -costs[i])
        node_order = sorted(self.workers, key=lambda n: -self.grid.node(n).speed)
        return {stage: node_order[pos] for pos, stage in enumerate(stage_order)}

    # ------------------------------------------------------------------- run
    def run(self, inputs: Iterable[Any], start_time: float = 0.0) -> BaselineResult:
        """Stream all items through the fixed mapping; return the result."""
        tasks = self.pipeline.make_tasks(inputs)
        if not tasks:
            raise ExecutionError("static pipeline needs at least one item")
        assignment = self.stage_assignment(tasks[0].payload)
        chain = lower_pipeline_stages(
            self.pipeline,
            lambda index: (lambda free_at, _node=assignment[index]: _node),
        )

        # The master may release the next item once the previous one's input
        # hand-off to the first stage has completed; collection happens after
        # the whole stream is issued so concurrent backends pipeline for real.
        handles: List[Tuple[Task, DispatchHandle]] = []
        emit_time = float(start_time)
        for task in tasks:
            handle = self.backend.dispatch_chain(
                task, chain, master_node=self.master_node, at_time=emit_time,
            )
            emit_time = handle.next_emit
            handles.append((task, handle))

        results: List[TaskResult] = [
            TaskResult(task_id=task.task_id, output=outcome.output,
                       node_id=outcome.final_node, submitted=outcome.submitted,
                       started=outcome.submitted, finished=outcome.finished,
                       stage=self.pipeline.num_stages - 1)
            for task, outcome in
            ((task, handle.outcome()) for task, handle in handles)
        ]

        finished = max(r.finished for r in results)
        ordered = [r.output for r in sorted(results, key=lambda r: r.task_id)]
        return BaselineResult(
            outputs=ordered, results=results, makespan=finished - start_time,
            started=float(start_time), finished=finished,
            strategy=f"static-pipeline-{self.mapping}",
            nodes=[assignment[i] for i in range(self.pipeline.num_stages)],
        )
