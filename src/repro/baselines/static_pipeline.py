"""Non-adaptive pipeline baseline.

:class:`StaticPipeline` maps each stage onto a node once, before execution,
and never reconsiders the mapping.  Two mapping rules are provided:

* ``"declaration"`` — stage *k* on the *k*-th node of the worker list (the
  naive mapping an MPI pipeline would use);
* ``"speed"`` — heaviest stage on the nominally fastest node (a
  heterogeneity-aware static mapping, the stronger comparator; it still
  cannot react to *dynamic* load, which is the gap adaptation closes in
  experiment E5).

The streaming model (per-stage serialisation, inter-stage transfers, result
return to the master) is identical to the adaptive
:class:`~repro.core.pipeline_executor.PipelineExecutor`, so measured
differences come from the mapping policy alone.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.baselines.result import BaselineResult
from repro.exceptions import ConfigurationError, ExecutionError
from repro.grid.simulator import GridSimulator
from repro.grid.topology import GridTopology
from repro.skeletons.base import TaskResult
from repro.skeletons.pipeline import Pipeline

__all__ = ["StaticPipeline"]

_MAPPINGS = {"declaration", "speed"}


class StaticPipeline:
    """Fixed stage-to-node mapping, no monitoring, no remapping."""

    def __init__(
        self,
        pipeline: Pipeline,
        grid: GridTopology,
        mapping: str = "declaration",
        workers: Optional[Sequence[str]] = None,
        master_node: Optional[str] = None,
        simulator: Optional[GridSimulator] = None,
    ):
        if not isinstance(pipeline, Pipeline):
            raise ConfigurationError("StaticPipeline needs a Pipeline skeleton")
        if mapping not in _MAPPINGS:
            raise ConfigurationError(
                f"unknown mapping {mapping!r}; expected one of {_MAPPINGS}"
            )
        self.pipeline = pipeline
        self.grid = grid
        self.mapping = mapping
        self.simulator = simulator or GridSimulator(grid)
        self.master_node = master_node or grid.node_ids[0]
        if self.master_node not in grid:
            raise ConfigurationError(f"unknown master node {self.master_node!r}")
        default_workers = [n for n in grid.node_ids if n != self.master_node]
        self.workers = list(workers) if workers is not None else (default_workers or [self.master_node])
        for node in self.workers:
            if node not in grid:
                raise ConfigurationError(f"unknown worker node {node!r}")
        if len(self.workers) < pipeline.num_stages:
            raise ConfigurationError(
                f"pipeline has {pipeline.num_stages} stages but only "
                f"{len(self.workers)} workers were provided"
            )

    # --------------------------------------------------------------- mapping
    def stage_assignment(self, sample_item: Any) -> Dict[int, str]:
        """The static stage → node assignment used by this baseline."""
        stages = self.pipeline.num_stages
        if self.mapping == "declaration":
            return {i: self.workers[i] for i in range(stages)}
        # "speed": heaviest stage to nominally fastest node.
        costs = [self.pipeline.stage_cost(i, sample_item) for i in range(stages)]
        stage_order = sorted(range(stages), key=lambda i: -costs[i])
        node_order = sorted(self.workers, key=lambda n: -self.grid.node(n).speed)
        return {stage: node_order[pos] for pos, stage in enumerate(stage_order)}

    # ------------------------------------------------------------------- run
    def run(self, inputs: Iterable[Any], start_time: float = 0.0) -> BaselineResult:
        """Stream all items through the fixed mapping; return the result."""
        tasks = self.pipeline.make_tasks(inputs)
        if not tasks:
            raise ExecutionError("static pipeline needs at least one item")
        assignment = self.stage_assignment(tasks[0].payload)

        results: List[TaskResult] = []
        emit_time = float(start_time)
        for task in tasks:
            released_at = emit_time
            value = task.payload
            previous_node = self.master_node
            available_at = released_at
            payload_bytes = task.input_bytes
            for stage_index in range(self.pipeline.num_stages):
                node = assignment[stage_index]
                transfer = self.simulator.transfer(previous_node, node, payload_bytes,
                                                   at_time=available_at)
                if stage_index == 0:
                    # The master may release the next item once this one's
                    # input hand-off to the first stage has completed.
                    emit_time = transfer.finished
                cost = self.pipeline.stage_cost(stage_index, value)
                execution = self.simulator.run_task(node, cost, at_time=transfer.finished)
                value = self.pipeline.apply_stage(stage_index, value)
                previous_node = node
                available_at = execution.finished
                payload_bytes = task.output_bytes
            back = self.simulator.transfer(previous_node, self.master_node,
                                           task.output_bytes, at_time=available_at)
            results.append(
                TaskResult(task_id=task.task_id, output=value, node_id=previous_node,
                           submitted=released_at, started=released_at,
                           finished=back.finished,
                           stage=self.pipeline.num_stages - 1)
            )

        finished = max(r.finished for r in results)
        ordered = [r.output for r in sorted(results, key=lambda r: r.task_id)]
        return BaselineResult(
            outputs=ordered, results=results, makespan=finished - start_time,
            started=float(start_time), finished=finished,
            strategy=f"static-pipeline-{self.mapping}",
            nodes=[assignment[i] for i in range(self.pipeline.num_stages)],
        )
