"""Non-adaptive baseline executors.

The paper's claims are comparative: adaptive, calibrated skeletons versus
their conventional non-adaptive counterparts on a dynamic, heterogeneous
grid.  This package provides those counterparts, executing the *same*
skeleton objects over the *same* simulated grid so differences are entirely
attributable to calibration and adaptation:

* :class:`StaticFarm` — a-priori task distribution (block, cyclic or
  speed-weighted block), no calibration, no adaptation.
* :class:`DemandDrivenFarm` — demand-driven self-scheduling over all nodes,
  but without calibration (no fittest-node selection) and without
  threshold-driven recalibration.  Used by the ablation experiments to
  separate the benefit of self-scheduling from the benefit of GRASP proper.
* :class:`StaticPipeline` — fixed stage-to-node mapping (declaration order
  or nominal-speed order), no remapping.
"""

from __future__ import annotations

from repro.baselines.result import BaselineResult
from repro.baselines.static_farm import DemandDrivenFarm, StaticFarm
from repro.baselines.static_pipeline import StaticPipeline

__all__ = ["BaselineResult", "StaticFarm", "DemandDrivenFarm", "StaticPipeline"]
