"""`ClusterBackend`: the adaptive runtime on a real multi-host grid.

This is the compilation phase's "link against the remote parallel
environment": the same :class:`~repro.backends.base.ExecutionBackend`
interface every executor already drives, implemented over the TCP worker
agents of :mod:`repro.cluster`.  Grid node ids map one-to-one onto
registered agents; dispatch/chunk/chain ship work through the
:class:`~repro.cluster.coordinator.ClusterCoordinator` and anchor the
worker-measured compute durations at coordinator receipt — the same
timing split as the process backend (``duration`` excludes the network,
``finished - submitted`` includes it), via the shared helpers in
:mod:`repro.backends._payload`.

**Fault tolerance is real here.**  A worker that is SIGKILLed, loses power
or drops off the network resolves its in-flight dispatches as *lost* and
vanishes from the availability queries, so the adaptive engine re-enqueues
the tasks and recalibrates onto the surviving machines; an agent that
rejoins under the same node id re-enters the availability set and the next
scheduling decision can use it again.  No result is accepted from a node
after it is declared dead (the coordinator clears the request table
atomically with the death mark).

Two ways in:

* ``backend="cluster"`` in :func:`~repro.core.compilation.compile_program`
  / :class:`~repro.core.grasp.Grasp` — spawns a
  :class:`~repro.cluster.local.LocalCluster` with one localhost worker
  subprocess per grid node (tests, examples, single-machine GIL escape).
* ``ClusterBackend(coordinator=...)`` over a coordinator whose agents run
  on real machines (see :mod:`repro.cluster.local` for the recipe).
"""

from __future__ import annotations

import threading
import time as _time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.backends._concurrent import _FutureHandle, _Transfer
from repro.backends._payload import (
    AnchoredChunkHandle,
    AnchoredHandle,
    split_payload,
)
from repro.backends.base import (
    ChainOutcome,
    ChainStage,
    ChunkOutcome,
    CompletedHandle,
    DispatchHandle,
    DispatchOutcome,
    ExecutionBackend,
)
from repro.cluster.coordinator import ClusterCoordinator, WorkerLost
from repro.cluster.local import LocalCluster
from repro.cluster.protocol import dumps_payload
from repro.exceptions import ClusterError, ConfigurationError, GridError
from repro.metrics.hooks import (
    on_chunk,
    on_issue,
    on_lost,
    on_resolve,
    on_ship,
)
from repro.sanitizers.locks import make_lock
from repro.grid.node import GridNode
from repro.grid.topology import GridTopology
from repro.skeletons.base import Task

__all__ = ["ClusterBackend"]

#: Reported node-to-node bandwidth: a commodity-LAN hand-off (bytes/s).
_LAN_BANDWIDTH = 1e8

#: Last-resort duration estimate before *any* dispatch has completed.
_MIN_DURATION_ESTIMATE = 1e-6


def _probe_cost(value: Any) -> float:
    """Zero-cost stage function for the dispatch-overhead probe."""
    return 0.0


def _probe_apply(value: Any) -> Any:
    """Identity stage function for the dispatch-overhead probe."""
    return value


def _topology_from_workers(coordinator: ClusterCoordinator) -> GridTopology:
    """Synthesise a topology whose nodes are the currently-live agents."""
    names = coordinator.live_nodes()
    if not names:
        raise ClusterError(
            "no worker agents are registered; start workers (python -m "
            "repro.cluster.worker) before building a ClusterBackend, or "
            "pass an explicit topology"
        )
    nodes = [
        GridNode(node_id=name, speed=1.0,
                 site=name.split("/")[0] if "/" in name else "cluster")
        for name in names
    ]
    return GridTopology(nodes=nodes, name="cluster")


class _ClusterHandle(AnchoredHandle):
    """Handle over one single-task remote dispatch."""

    lost_exceptions = (WorkerLost,)
    bandwidth = _LAN_BANDWIDTH


class _ClusterChunkHandle(AnchoredChunkHandle):
    """Handle over one chunked remote dispatch (k tasks, one round-trip)."""

    lost_exceptions = (WorkerLost,)
    bandwidth = _LAN_BANDWIDTH


class ClusterBackend(ExecutionBackend):
    """Adaptive-runtime backend executing on TCP worker agents.

    Parameters
    ----------
    coordinator:
        A running :class:`~repro.cluster.coordinator.ClusterCoordinator`
        whose agents serve the grid nodes.  Optional when ``cluster`` is
        given.
    topology:
        Grid topology naming the nodes.  Node ids must match agent names;
        when omitted, a homogeneous topology is synthesised from the
        currently-registered agents.
    cluster:
        A :class:`~repro.cluster.local.LocalCluster` to run over.  With
        ``owns_cluster=True`` the backend closes it (workers and all) on
        :meth:`close` — this is how ``backend="cluster"`` wires up.
    payload_registry:
        When True (the default), the shared part of each dispatch payload
        is preserialised once and shipped to each node a single time
        (PUT_PAYLOAD), so per-task frames carry only the task arguments —
        the dispatch hot path.  False reverts to by-value DISPATCH frames
        (one full payload pickle per dispatch); results are bit-identical
        either way, the flag exists for overhead comparisons.
    """

    name = "cluster"
    eager = False

    def __init__(self, coordinator: Optional[ClusterCoordinator] = None,
                 topology: Optional[GridTopology] = None, tracer=None, *,
                 cluster: Optional[LocalCluster] = None,
                 owns_cluster: bool = False,
                 payload_registry: bool = True):
        if cluster is not None:
            coordinator = cluster.coordinator
        if coordinator is None:
            raise ConfigurationError(
                "ClusterBackend needs a coordinator= or cluster="
            )
        self._coordinator = coordinator
        self._cluster = cluster
        self._owns_cluster = owns_cluster and cluster is not None
        self._topology = (topology if topology is not None
                          else _topology_from_workers(coordinator))
        self._origin = _time.perf_counter()
        self._lock = make_lock("cluster-backend.state")
        self._pending: Dict[str, int] = {n: 0 for n in self._topology.node_ids}
        self._avg_duration: Dict[str, float] = \
            {n: 0.0 for n in self._topology.node_ids}
        self._seed_duration = 0.0
        self._overhead: Optional[float] = None
        self._closed = False
        self.tracer = tracer
        self._metrics = None
        # Forward the coordinator's membership/payload events into the run
        # tracer.  Registered unconditionally: the tracer is re-checked at
        # event time, so a backend built before its run's tracer existed
        # (compile_program adopts it into ``self.tracer``) still traces.
        self._cluster_listener = self._on_cluster_event
        coordinator.add_listener(self._cluster_listener)
        self._use_registry = bool(payload_registry)
        #: shared-part identity -> registered payload id; the keys are id()
        #: tuples, so ``_payload_refs`` pins the objects alive to keep the
        #: ids from being recycled.
        self._payload_ids: Dict[tuple, int] = {}
        self._payload_refs: List[tuple] = []

    # --------------------------------------------------------------- spawning
    @classmethod
    def local(cls, topology: Optional[GridTopology] = None,
              workers: Optional[int] = None, tracer=None,
              payload_registry: bool = True,
              **cluster_kwargs) -> "ClusterBackend":
        """A backend over a freshly-spawned localhost cluster it owns.

        One worker subprocess per node of ``topology`` (or ``workers``
        anonymous nodes); closing the backend tears the whole cluster down.
        """
        if topology is not None:
            names: Any = list(topology.node_ids)
        else:
            names = workers if workers is not None else 2
        cluster = LocalCluster(workers=names, **cluster_kwargs)
        return cls(topology=topology, tracer=tracer, cluster=cluster,
                   owns_cluster=True, payload_registry=payload_registry)

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        return _time.perf_counter() - self._origin

    def advance_to(self, time: float) -> None:
        """Wall time advances on its own; nothing to do."""

    # ------------------------------------------------------------- membership
    @property
    def topology(self) -> GridTopology:
        return self._topology

    @property
    def coordinator(self) -> ClusterCoordinator:
        """The coordinator this backend dispatches through."""
        return self._coordinator

    # ---------------------------------------------------------------- metrics
    @property
    def metrics(self):
        """The adopted metrics registry (see ExecutionBackend.metrics)."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        # Adopting a registry also wires the coordinator-level callback
        # gauges: evaluated lazily at snapshot time, so a snapshot shows
        # the cluster's state *now*, not at adoption.
        self._metrics = registry
        if registry is None:
            return
        coordinator = self._coordinator
        registry.gauge_fn("cluster.live_workers",
                          lambda: len(coordinator.live_nodes()))
        registry.gauge_fn("cluster.pending_futures",
                          coordinator.pending_count)
        registry.gauge_fn("cluster.heartbeat_age",
                          coordinator.max_heartbeat_age)
        # Result tallies are counted coordinator-side as frames arrive
        # (piggybacked on RESULT traffic — no extra protocol); exposed
        # here as lazily-read values.
        registry.gauge_fn("cluster.results_ok",
                          lambda: coordinator.status_snapshot()["results_ok"])
        registry.gauge_fn(
            "cluster.results_failed",
            lambda: coordinator.status_snapshot()["results_failed"])
        # Coordinator-owned argument segments of the shared-memory data
        # plane; must drain to zero as dispatches resolve.
        registry.gauge_fn("transport.shm_segments",
                          coordinator.shm_segment_count)

    def available_nodes(self, time: float) -> List[str]:
        """Topology nodes that have a live worker agent right now.

        This is the availability seam the adaptive engine routes through:
        dead agents disappear here, rejoining ones come back here.
        """
        live = set(self._coordinator.live_nodes())
        return [n for n in self._topology.node_ids if n in live]

    def is_available(self, node_id: str, time: Optional[float] = None) -> bool:
        self._check_node(node_id)
        return self._coordinator.is_live(node_id)

    def node_free_at(self, node_id: str) -> float:
        self._check_node(node_id)
        with self._lock:
            pending = self._pending[node_id]
            estimate = self._avg_duration[node_id] or self._seed_duration \
                or _MIN_DURATION_ESTIMATE
        return self.now + pending * estimate

    # ------------------------------------------------------------ observation
    def observe_load(self, node_id: str, time: Optional[float] = None) -> float:
        self._check_node(node_id)
        load = self._coordinator.node_load(node_id)
        return min(max(load, 0.0), 0.999)

    def observe_bandwidth(self, src: str, dst: str,
                          time: Optional[float] = None) -> float:
        self._check_node(src)
        self._check_node(dst)
        return _LAN_BANDWIDTH

    def dispatch_overhead(self) -> float:
        """Measured fixed cost of one coordinator round-trip, in seconds.

        Min of a few no-op stage dispatches to the first live agent,
        measured once and cached — the value feeds ``chunk_size="auto"``
        and is deliberately sent through the legacy by-value path so the
        probes never touch the run's payload registry.
        """
        with self._lock:
            if self._overhead is not None:
                return self._overhead
        nodes = self.available_nodes(self.now)
        if not nodes:
            return 0.0
        samples = []
        try:
            for _ in range(5):
                started = _time.perf_counter()
                self._coordinator.submit(
                    nodes[0], "stage", (_probe_cost, _probe_apply, None)
                ).result(timeout=30.0)
                samples.append(_time.perf_counter() - started)
        except Exception:
            # A dying worker mid-probe: report what we have (or nothing).
            pass
        overhead = min(samples) if samples else 0.0
        with self._lock:
            if self._overhead is None:
                self._overhead = overhead
            return self._overhead

    # -------------------------------------------------------------- transfers
    def transfer(self, src: str, dst: str, nbytes: float,
                 at_time: Optional[float] = None) -> _Transfer:
        self._check_node(src)
        self._check_node(dst)
        started = self.now if at_time is None else float(at_time)
        return _Transfer(src=src, dst=dst, nbytes=float(nbytes),
                         started=started, finished=started)

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        task: Task,
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        # No separate closed check: _submit raises GridError after close.
        self._check_node(node_id)
        submitted = self.now
        try:
            future = self._submit(node_id, "task",
                                  (execute_fn, task, collect_output))
        except WorkerLost:
            # Dead at dispatch: lost in transit, same as a vanished grid
            # node; the availability queries already exclude it.  _submit
            # raised before recording an issue, so the loss is booked here
            # as one issue+lost pair.
            on_issue(self._metrics, self.name, node_id)
            on_lost(self._metrics, self.name, node_id)
            outcome = self._lost_outcome(node_id, submitted)
            return CompletedHandle(outcome, node_id=node_id,
                                   submitted=submitted,
                                   master_free_after=submitted)
        return _ClusterHandle(self, future, node_id=node_id,
                              submitted=submitted)

    def dispatch_chunk(
        self,
        tasks: Sequence[Task],
        node_id: str,
        execute_fn: Optional[Callable[[Task], Any]],
        master_node: str,
        at_time: float,
        check_loss: bool = True,
        collect_output: bool = True,
    ) -> DispatchHandle:
        self._check_node(node_id)
        on_chunk(self._metrics, self.name, len(tasks))
        submitted = self.now
        try:
            future = self._submit(node_id, "chunk",
                                  (execute_fn, list(tasks), collect_output))
        except WorkerLost:
            on_issue(self._metrics, self.name, node_id)
            on_lost(self._metrics, self.name, node_id)
            outcome = self._lost_outcome(node_id, submitted)
            chunk = ChunkOutcome(
                node_id=node_id,
                outcomes=tuple(outcome for _ in tasks),
                submitted=submitted, finished=outcome.finished,
            )
            return CompletedHandle(chunk, node_id=node_id,
                                   submitted=submitted,
                                   master_free_after=submitted)
        return _ClusterChunkHandle(self, future, node_id=node_id, tasks=tasks,
                                   submitted=submitted)

    def dispatch_chain(
        self,
        task: Task,
        stages: Sequence[ChainStage],
        master_node: str,
        at_time: float,
    ) -> DispatchHandle:
        self._check_open()
        submitted = self.now
        # Stage 0 is submitted from the caller's thread so stage-0 queue
        # order equals the master's emit order; the rest of the walk runs
        # on a driver thread (a remote agent cannot wait on another agent's
        # result — results fan in through the coordinator).
        first = stages[0]
        node0 = first.pick(self.node_free_at)
        self._check_node(node0)
        future0 = self._submit_or_lost_chain(node0, first, task.payload)
        result: Future = Future()
        driver = threading.Thread(
            target=self._drive_chain,
            args=(future0, node0, stages, submitted, result),
            name="grasp-cluster-chain-driver", daemon=True,
        )
        driver.start()
        return _FutureHandle(result, node_id=node0, submitted=submitted,
                             master_free_after=submitted, next_emit=submitted)

    def _submit_or_lost_chain(self, node_id: str, stage: ChainStage,
                              value: Any) -> Future:
        try:
            return self._submit(node_id, "stage",
                                (stage.cost, stage.apply, value))
        except WorkerLost as exc:
            failed: Future = Future()
            failed.set_exception(exc)
            return failed

    def _drive_chain(self, future0: Future, node0: str,
                     stages: Sequence[ChainStage], submitted: float,
                     result: Future) -> None:
        current_node = node0
        try:
            records: List[Tuple[str, float, float, float]] = []
            item_cost = 0.0
            value, duration, cost = future0.result()
            records.append((node0, duration, cost, self.now - duration))
            item_cost += cost
            for stage in stages[1:]:
                node = stage.pick(self.node_free_at)
                self._check_node(node)
                current_node = node
                future = self._submit_or_lost_chain(node, stage, value)
                value, duration, cost = future.result()
                records.append((node, duration, cost, self.now - duration))
                item_cost += cost
            last_node, last_duration, _, last_started = records[-1]
            result.set_result(ChainOutcome(
                output=value, final_node=last_node, submitted=submitted,
                finished=last_started + last_duration, item_cost=item_cost,
                stage_records=records,
            ))
        except WorkerLost:
            # A pipeline item cannot leave the stream half-processed, so a
            # chain has no lost-task path (same contract as the process
            # backend); surface an actionable error instead.
            result.set_exception(GridError(
                f"cluster worker for node {current_node!r} died "
                "mid-pipeline-stage; pipeline chains cannot re-enqueue "
                "partial items"
            ))
        except BaseException as exc:    # propagate through the handle
            result.set_exception(exc)

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._coordinator.remove_listener(self._cluster_listener)
        if self._owns_cluster and self._cluster is not None:
            self._cluster.close()

    # -------------------------------------------------------------- internals
    def _on_cluster_event(self, category: str, message: str,
                          data: Dict[str, Any]) -> None:
        """Coordinator listener: membership events land in the run tracer."""
        tracer = self.tracer
        if tracer is not None:
            tracer.record(category, message, **data)
        if category == "dispatch.shm_ship":
            # The coordinator counted the payload's exact inline/shm byte
            # split as it crossed the data plane.
            on_ship(self._metrics, self.name,
                    int(data.get("inline", 0)), int(data.get("shm", 0)))

    def _submit(self, node_id: str, kind: str, payload: tuple) -> Future:
        with self._lock:
            if self._closed:
                raise GridError("cluster backend is closed")
            self._pending[node_id] += 1
        started_at = self.now
        tracer = self.tracer
        if tracer is not None:
            tracer.record("dispatch.issue", "payload submitted",
                          node=node_id, backend=self.name, kind=kind)
        try:
            if self._use_registry:
                payload_id, args = self._registered(kind, payload)
                future = self._coordinator.submit_ref(node_id, kind,
                                                      payload_id, args)
            else:
                future = self._coordinator.submit(node_id, kind, payload)
        except BaseException:
            with self._lock:
                self._pending[node_id] = max(0, self._pending[node_id] - 1)
            raise
        # Only accepted submissions count as issued, recorded before the
        # done-callback can fire so a resolve never outraces its issue.
        on_issue(self._metrics, self.name, node_id)
        future.add_done_callback(
            lambda f, node=node_id, t0=started_at: self._note_done(node, t0, f)
        )
        return future

    def _registered(self, kind: str, payload: tuple) -> Tuple[int, Any]:
        """The coordinator payload id for this payload's shared part.

        The shared part (``(execute_fn, collect)`` for farms, ``(cost_fn,
        apply_fn)`` for stages) is pickled **once** per distinct identity
        and registered with the coordinator; every subsequent dispatch of
        the run reuses the id.  An unpicklable shared part raises
        :class:`~repro.exceptions.ProtocolError` here, at the caller —
        same contract as the legacy path.
        """
        shared, args = split_payload(kind, payload)
        group = "farm" if kind in ("task", "chunk") else "stage"
        key = (group,) + tuple(id(part) for part in shared)
        with self._lock:
            payload_id = self._payload_ids.get(key)
        if payload_id is None:
            blob = dumps_payload(shared)
            payload_id = self._coordinator.register_payload(blob)
            with self._lock:
                existing = self._payload_ids.get(key)
                if existing is not None:
                    # A racing dispatch registered the same shared part
                    # first; its id wins, our orphan blob is harmless.
                    payload_id = existing
                else:
                    self._payload_ids[key] = payload_id
                    self._payload_refs.append(shared)
        return payload_id, args

    def _note_done(self, node_id: str, submitted_at: float,
                   future: Future) -> None:
        elapsed = max(self.now - submitted_at, _MIN_DURATION_ESTIMATE)
        # A failed future (payload raised, worker died) measured the crash,
        # not the node's speed; it must not seed or skew the estimates.
        lost = False
        try:
            error = future.exception()
            failed = error is not None
            lost = isinstance(error, WorkerLost)
        except BaseException:       # cancelled: no duration either
            failed = True
        tracer = self.tracer
        if tracer is not None:
            if lost:
                tracer.record("dispatch.lost", "worker died holding the task",
                              node=node_id, backend=self.name,
                              elapsed=elapsed)
            else:
                tracer.record("dispatch.resolve", "payload finished",
                              node=node_id, backend=self.name, ok=not failed,
                              elapsed=elapsed)
        if lost:
            on_lost(self._metrics, self.name, node_id)
        else:
            on_resolve(self._metrics, self.name, node_id, elapsed,
                       ok=not failed)
        with self._lock:
            self._pending[node_id] = max(0, self._pending[node_id] - 1)
            if failed:
                return
            if self._seed_duration == 0.0:
                self._seed_duration = elapsed
            previous = self._avg_duration[node_id]
            self._avg_duration[node_id] = (
                elapsed if previous == 0.0 else 0.7 * previous + 0.3 * elapsed
            )

    def _lost_outcome(self, node_id: str, submitted: float) -> DispatchOutcome:
        """A worker died holding the task: surface the loss for re-enqueue."""
        now = self.now
        tracer = self.tracer
        if tracer is not None:
            tracer.record("dispatch.lost", "node dead at dispatch",
                          node=node_id, backend=self.name,
                          elapsed=now - submitted)
        return DispatchOutcome(
            node_id=node_id, output=None, submitted=submitted,
            exec_started=submitted, exec_finished=now, finished=now,
            lost=True,
        )

    def _check_node(self, node_id: str) -> None:
        if node_id not in self._pending:
            raise GridError(f"unknown node {node_id!r}")

    def _check_open(self) -> None:
        with self._lock:
            if self._closed:
                raise GridError("cluster backend is closed")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterBackend(nodes={len(self._pending)}, "
                f"live={len(self.available_nodes(self.now))})")
