"""A localhost cluster: coordinator + worker subprocesses, one call.

:class:`LocalCluster` exists so tests, examples and benchmarks can exercise
the *real* distributed machinery — TCP sockets, the framed wire protocol,
worker processes that can be ``kill -9``-ed — without provisioning actual
machines.  It starts a :class:`~repro.cluster.coordinator.ClusterCoordinator`
on an ephemeral loopback port, spawns one ``python -m repro.cluster.worker``
subprocess per node name, and waits for every agent to register.

The spawned workers inherit this interpreter's ``sys.path`` (via
``PYTHONPATH``), so by-reference pickles of functions importable here
resolve there too; when the driving script itself is ``__main__`` its path
is handed to the workers (``--main``) so even top-level script functions
ship, mirroring ``multiprocessing``'s spawn semantics.

For a real multi-host grid, run the coordinator in your driver process and
start agents on each machine by hand (or via your scheduler)::

    coord = ClusterCoordinator(host="0.0.0.0", port=7777)
    # on each machine:  python -m repro.cluster.worker \\
    #                       --connect coordhost:7777 --node cell3/n0
    coord.wait_for_workers(["cell3/n0", ...])
    backend = ClusterBackend(coordinator=coord)

Remember: the wire protocol carries pickles — trusted networks only.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Union

from repro.backends.shm import DEFAULT_SHM_THRESHOLD
from repro.cluster.coordinator import ClusterCoordinator
from repro.exceptions import ClusterError

__all__ = ["LocalCluster"]


def _worker_environment() -> Dict[str, str]:
    """Subprocess env whose ``PYTHONPATH`` mirrors this process's ``sys.path``.

    Guarantees the worker can import both ``repro`` and whatever modules
    the caller's payload functions live in, however this process acquired
    them (editable install, ``PYTHONPATH=src``, pytest rootdir insertion).
    """
    env = dict(os.environ)
    entries = [p for p in sys.path if p]
    env["PYTHONPATH"] = os.pathsep.join(entries)
    return env


def _main_script_path() -> Optional[str]:
    """The driving script's path, when ``__main__`` is a plain script.

    ``python -m``-style mains (pytest included) are importable by name and
    need no help; REPLs and pseudo-files (``<stdin>``) cannot be shipped.

    When a path is returned the driver also gains a ``__grasp_main__``
    alias for its own ``__main__``: the workers adopt the script under
    that name, so classes defined in it pickle as ``__grasp_main__.X`` in
    *results* coming back — which this process must be able to resolve,
    exactly as the workers resolve the driver's ``__main__.X`` pickles.
    """
    main = sys.modules.get("__main__")
    if main is None:
        return None
    if getattr(getattr(main, "__spec__", None), "name", None):
        return None
    path = getattr(main, "__file__", None)
    if path is None or not os.path.exists(path):
        return None
    sys.modules.setdefault("__grasp_main__", main)
    return os.path.abspath(path)


class LocalCluster:
    """Coordinator plus localhost worker subprocesses, as one lifecycle.

    Parameters
    ----------
    workers:
        Either a node count (names become ``cluster/n0..``) or the exact
        node names to spawn — one worker subprocess per name.
    heartbeat_interval:
        Seconds between each worker's liveness beacons.
    heartbeat_timeout:
        Coordinator-side silence threshold before declaring a worker dead.
    start_timeout:
        Seconds to wait for every worker to register before failing.
    shm_threshold:
        Payloads probing at or above this many bytes travel via shared
        memory instead of inline TCP frames (which also lifts the
        64MiB frame cap for them).  Everything is on one host here, so
        the data plane defaults to **on** at
        :data:`~repro.backends.shm.DEFAULT_SHM_THRESHOLD`; pass ``0``
        to force the classic inline path everywhere.

    Examples
    --------
    >>> from repro.cluster import LocalCluster
    >>> with LocalCluster(workers=2) as cluster:      # doctest: +SKIP
    ...     backend = cluster.backend()
    ...     ...
    """

    def __init__(self, workers: Union[int, Sequence[str]] = 2,
                 heartbeat_interval: float = 0.5,
                 heartbeat_timeout: float = 10.0,
                 start_timeout: float = 120.0,
                 shm_threshold: Optional[int] = None):
        if isinstance(workers, int):
            if workers < 1:
                raise ClusterError(f"need at least 1 worker, got {workers}")
            names = [f"cluster/n{i}" for i in range(workers)]
        else:
            names = list(workers)
            if not names:
                raise ClusterError("need at least 1 worker name")
            if len(set(names)) != len(names):
                raise ClusterError(f"duplicate worker names in {names}")
        self._names = names
        self._heartbeat_interval = heartbeat_interval
        self._shm_threshold = (DEFAULT_SHM_THRESHOLD if shm_threshold is None
                               else max(0, int(shm_threshold)))
        self._closed = False
        self.coordinator = ClusterCoordinator(
            host="127.0.0.1", port=0, heartbeat_timeout=heartbeat_timeout,
            shm_threshold=self._shm_threshold)
        #: node name -> the worker's subprocess handle (the most recent one
        #: when a worker was respawned).
        self.processes: Dict[str, subprocess.Popen] = {}
        try:
            for name in names:
                self.processes[name] = self._spawn(name)
            self.coordinator.wait_for_workers(names, timeout=start_timeout)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- inspection
    @property
    def node_names(self) -> List[str]:
        """The node names this cluster was asked to run (spawn order)."""
        return list(self._names)

    # --------------------------------------------------------------- spawning
    def _spawn(self, name: str) -> subprocess.Popen:
        host, port = self.coordinator.address
        command = [
            sys.executable, "-m", "repro.cluster.worker",
            "--connect", f"{host}:{port}",
            "--node", name,
            "--heartbeat", str(self._heartbeat_interval),
        ]
        if self._shm_threshold > 0:
            # Same host as the coordinator, so the workers may advertise
            # the shared-memory data plane.
            command += ["--shm-threshold", str(self._shm_threshold)]
        main_path = _main_script_path()
        if main_path is not None:
            command += ["--main", main_path]
        # stderr is inherited so a crashing worker explains itself; healthy
        # agents are silent.
        return subprocess.Popen(command, env=_worker_environment(),
                                stdin=subprocess.DEVNULL,
                                stdout=subprocess.DEVNULL)

    def start_worker(self, name: str, timeout: float = 120.0) -> None:
        """(Re)spawn the agent for ``name`` and wait for it to register.

        Used to bring a killed worker back: the rejoining agent re-enters
        the coordinator's availability set under the same node id.
        """
        if self._closed:
            raise ClusterError("cluster is closed")
        if name not in self._names:
            self._names.append(name)
        self.processes[name] = self._spawn(name)
        self.coordinator.wait_for_workers([name], timeout=timeout)

    def kill_worker(self, name: str, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to the agent serving ``name`` (default: SIGKILL).

        The fault-tolerance story in one call: the worker vanishes without
        any goodbye, the coordinator notices the dropped connection, marks
        the node dead, and in-flight tasks resolve as lost.
        """
        process = self.processes.get(name)
        if process is None:
            raise ClusterError(f"no worker process for {name!r}")
        process.send_signal(sig)

    # ---------------------------------------------------------------- backend
    def backend(self, topology=None, tracer=None):
        """A fresh :class:`~repro.cluster.backend.ClusterBackend` over this
        cluster (the cluster's lifecycle stays owned by the caller)."""
        from repro.cluster.backend import ClusterBackend
        return ClusterBackend(coordinator=self.coordinator,
                              topology=topology, tracer=tracer)

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the coordinator and terminate every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        # The coordinator's Goodbye lets agents exit on their own ...
        self.coordinator.close()
        # ... and the process handles are the backstop for any that don't.
        for process in self.processes.values():
            if process.poll() is None:
                process.terminate()
        for process in self.processes.values():
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck agent
                process.kill()
                process.wait(timeout=5.0)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalCluster(nodes={self._names})"
