"""Length-prefixed, versioned wire protocol of the cluster subsystem.

Every byte that crosses a cluster TCP connection is a **frame**:

.. code-block:: text

    +-------+---------+------------------+---------------------------+
    | magic | version | body length (u32)| body (pickled message)    |
    | GRSP  |   1 B   |    big-endian    |                           |
    +-------+---------+------------------+---------------------------+

The body is one **typed message** — a frozen dataclass from the registry
below, serialised as ``pickle((type_code, field_values))``.  Messages carry
the runtime's existing picklable-payload contract (see
:mod:`repro.backends._payload`): tasks, worker functions and outputs are
pickled by reference/value exactly as the process backend ships them, which
is also why the protocol is **trusted-network-only** — unpickling is
arbitrary code execution, so never expose a coordinator or worker port to
an untrusted network.

Message vocabulary (coordinator ⇄ worker):

* :class:`Hello` — worker → coordinator registration, with the node
  descriptor (node id, host, pid, cpus) and the worker's protocol version.
* :class:`Welcome` — coordinator → worker registration acknowledgement.
* :class:`Dispatch` — coordinator → worker: one task (``kind="task"``), a
  chunk of tasks (``"chunk"``) or one pipeline stage (``"stage"``), tagged
  with a request id.
* :class:`Result` — worker → coordinator: the child-measured
  ``(output, duration)`` payload for a request, or the payload's exception.
* :class:`Heartbeat` — worker → coordinator liveness beacon, carrying the
  worker host's observed CPU load for the monitoring layer.
* :class:`Goodbye` — either side announces an orderly shutdown.

Framing is handled by :func:`encode` and :class:`FrameDecoder`.  The
decoder is incremental (feed it arbitrary byte slices, complete messages
fall out) and *strict*: bad magic, an unsupported version, an oversized
length, an undecodable body or a truncated frame at end-of-stream all raise
:class:`~repro.exceptions.ProtocolError` instead of hanging or guessing.
"""

from __future__ import annotations

import dataclasses
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Type

from repro.exceptions import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "Hello",
    "Welcome",
    "Dispatch",
    "Result",
    "Heartbeat",
    "Goodbye",
    "Message",
    "encode",
    "FrameDecoder",
]

#: Wire-format version; bumped on any incompatible frame/message change.
PROTOCOL_VERSION = 1

#: Refuse frames larger than this (a corrupt length header must not make
#: the decoder try to buffer gigabytes before failing).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_MAGIC = b"GRSP"
_HEADER = struct.Struct(">4sBI")


# ------------------------------------------------------------------ messages
@dataclass(frozen=True)
class Hello:
    """Worker registration: the node descriptor of one agent."""

    node_id: str
    host: str
    pid: int
    cpus: int
    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Welcome:
    """Coordinator acknowledgement of a :class:`Hello`."""

    node_id: str


@dataclass(frozen=True)
class Dispatch:
    """One unit of work shipped to a worker.

    ``kind`` selects the payload shape (mirroring the backend dispatch
    primitives): ``"task"`` → ``(execute_fn, task, collect_output)``,
    ``"chunk"`` → ``(execute_fn, [tasks], collect_output)``, ``"stage"`` →
    ``(cost_fn, apply_fn, value)``.
    """

    request_id: int
    kind: str
    payload: Tuple[Any, ...]


@dataclass(frozen=True)
class Result:
    """A worker's answer to one :class:`Dispatch`.

    ``value`` holds the child-measured payload — ``(output, duration)`` for
    tasks, ``[(output, duration), ...]`` for chunks, ``(output, duration,
    cost)`` for stages.  When the payload raised, ``ok`` is False and
    ``error`` carries the exception (or a stringified stand-in when the
    original does not pickle).
    """

    request_id: int
    ok: bool
    value: Any = None
    error: Any = None


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon, with the worker host's CPU load.

    Liveness is stamped with the *coordinator's* clock on receipt — worker
    clocks are not comparable across hosts, so no send timestamp is
    carried.
    """

    node_id: str
    load: float = 0.0


@dataclass(frozen=True)
class Goodbye:
    """Orderly shutdown announcement (either direction)."""

    node_id: str
    reason: str = ""


#: Union alias for documentation; the registry below is authoritative.
Message = Any

_MESSAGE_TYPES: Dict[int, Type[Any]] = {
    1: Hello,
    2: Welcome,
    3: Dispatch,
    4: Result,
    5: Heartbeat,
    6: Goodbye,
}
_TYPE_CODES = {cls: code for code, cls in _MESSAGE_TYPES.items()}


# ------------------------------------------------------------------- framing
def encode(message: Message) -> bytes:
    """Serialise ``message`` into one complete frame."""
    code = _TYPE_CODES.get(type(message))
    if code is None:
        raise ProtocolError(
            f"cannot encode {type(message).__name__}: not a protocol message"
        )
    values = tuple(getattr(message, f.name)
                   for f in dataclasses.fields(message))
    try:
        body = pickle.dumps((code, values), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ProtocolError(
            f"message payload does not pickle ({exc!r}); cluster payloads "
            "must honour the picklable-payload contract"
        ) from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "limit"
        )
    return _HEADER.pack(_MAGIC, PROTOCOL_VERSION, len(body)) + body


class FrameDecoder:
    """Incremental frame decoder: feed bytes, receive complete messages.

    Raises :class:`~repro.exceptions.ProtocolError` on anything malformed;
    once an error is raised the stream is unrecoverable (framing is lost)
    and the connection should be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Message]:
        """Absorb ``data``; return every message it completed, in order."""
        self._buffer.extend(data)
        messages: List[Message] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            magic, version, length = _HEADER.unpack_from(self._buffer)
            if magic != _MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(magic)!r} (expected {_MAGIC!r})"
                )
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version} "
                    f"(this runtime speaks {PROTOCOL_VERSION})"
                )
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the {MAX_FRAME_BYTES}-"
                    "byte limit"
                )
            if len(self._buffer) < _HEADER.size + length:
                return messages
            body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            messages.append(self._decode_body(body))

    def at_eof(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call when the peer closes the connection: leftover buffered bytes
        mean a frame was cut off mid-flight.
        """
        if self._buffer:
            raise ProtocolError(
                f"connection closed mid-frame ({len(self._buffer)} "
                "buffered bytes do not form a complete frame)"
            )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer)

    @staticmethod
    def _decode_body(body: bytes) -> Message:
        try:
            code, values = pickle.loads(body)
        except Exception as exc:
            raise ProtocolError(f"undecodable frame body ({exc!r})") from exc
        cls = _MESSAGE_TYPES.get(code)
        if cls is None:
            raise ProtocolError(f"unknown message type code {code!r}")
        try:
            return cls(*values)
        except TypeError as exc:
            raise ProtocolError(
                f"malformed {cls.__name__} message ({exc})"
            ) from exc
