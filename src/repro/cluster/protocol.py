"""Length-prefixed, versioned wire protocol of the cluster subsystem (v2).

Every byte that crosses a cluster TCP connection is a **frame**:

.. code-block:: text

    +-------+---------+------------------+---------------------------+
    | magic | version | body length (u32)| body (typed message)      |
    | GRSP  |   1 B   |    big-endian    |                           |
    +-------+---------+------------------+---------------------------+

The first body byte is the **message type code**; the rest is that type's
encoding.  Cold control messages stay pickled; the hot per-task messages
(RESULT, HEARTBEAT, DISPATCH_REF, PUT_PAYLOAD) use fixed ``struct``
envelopes so the dispatch hot path never pays a pickle for its framing:

====  ==============  ==========================================================
code  message         body encoding after the code byte
====  ==============  ==========================================================
1     HELLO           pickle of the field tuple
2     WELCOME         pickle of the field tuple
3     DISPATCH        pickle of the field tuple (legacy by-value dispatch)
4     RESULT          ``>QBd`` request_id, ok, load · oob block (value/error)
5     HEARTBEAT       ``>H`` node-id length · node-id utf-8 · ``>d`` load
6     GOODBYE         pickle of the field tuple
7     PUT_PAYLOAD     ``>Q`` payload_id · raw preserialised payload blob
8     DISPATCH_REF    ``>QQB`` request_id, payload_id, kind · oob block (args)
9     STATUS          pickle of the field tuple (introspection request)
10    STATUS_REPLY    pickle of the field tuple (coordinator status snapshot)
====  ==============  ==========================================================

An **oob block** is a pickle-protocol-5 serialisation with out-of-band
buffers: ``>I`` buffer count, one ``>I`` length per buffer, ``>I`` pickle
length, the pickle bytes, then the raw buffer bytes back to back.  Decoding
hands the pickle :class:`memoryview` slices of the frame, so a large
bytes-like result body (a numpy block, a bytearray) is never copied through
the pickler on either side.

**Payload registry.**  A shared task payload — the worker function and its
companions, identical across every task of a run — is preserialised once,
shipped to each agent a single time as PUT_PAYLOAD, and referenced by
``payload_id`` in every subsequent DISPATCH_REF, which carries only the
per-task arguments.  The legacy DISPATCH message (payload by value, pickled
per dispatch) remains for comparison benchmarks and one-off sends.

Messages carry the runtime's existing picklable-payload contract (see
:mod:`repro.backends._payload`), which is also why the protocol is
**trusted-network-only** — unpickling is arbitrary code execution, so never
expose a coordinator or worker port to an untrusted network.

Version negotiation is explicit: the frame header carries the wire version
(a v1 peer's first frame raises a clean :class:`ProtocolError` naming both
versions), :class:`Hello` carries the worker's message protocol (checked at
registration) and :class:`Welcome` echoes the coordinator's (checked by the
agent before it serves work).

Framing is handled by :func:`encode` and :class:`FrameDecoder`.  The
decoder is incremental (feed it arbitrary byte slices, complete messages
fall out), compacts its buffer lazily via a read offset — many small frames
arriving in one burst cost O(bytes), not O(bytes × frames) — and is
*strict*: bad magic, an unsupported version, an oversized length, an
undecodable body or a truncated frame at end-of-stream all raise
:class:`~repro.exceptions.ProtocolError` instead of hanging or guessing.
"""

from __future__ import annotations

import dataclasses
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.exceptions import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "Hello",
    "Welcome",
    "Dispatch",
    "Result",
    "Heartbeat",
    "Goodbye",
    "PutPayload",
    "DispatchRef",
    "Status",
    "StatusReply",
    "Message",
    "encode",
    "FrameDecoder",
    "dumps_payload",
    "KIND_CODES",
]

#: Wire-format version; bumped on any incompatible frame/message change.
#: v2: code-byte bodies, binary RESULT/HEARTBEAT, payload registry.
PROTOCOL_VERSION = 2

#: Refuse frames larger than this (a corrupt length header must not make
#: the decoder try to buffer gigabytes before failing).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_MAGIC = b"GRSP"
_HEADER = struct.Struct(">4sBI")

#: Compact the decoder buffer once this many consumed bytes accumulate
#: ahead of the read offset (lazy compaction; see :class:`FrameDecoder`).
_COMPACT_BYTES = 1 << 16

_U32 = struct.Struct(">I")
_RESULT_FIXED = struct.Struct(">QBd")      # request_id, ok, load
_HEARTBEAT_LEN = struct.Struct(">H")       # node-id byte length
_F64 = struct.Struct(">d")
_PAYLOAD_ID = struct.Struct(">Q")
_DISPATCH_REF_FIXED = struct.Struct(">QQB")  # request_id, payload_id, kind

#: Dispatch kinds get one byte on the wire (and back).
KIND_CODES: Dict[str, int] = {"task": 1, "chunk": 2, "stage": 3}
_KIND_NAMES = {code: kind for kind, code in KIND_CODES.items()}


# ------------------------------------------------------------------ messages
@dataclass(frozen=True)
class Hello:
    """Worker registration: the node descriptor of one agent.

    ``shm`` advertises the shared-memory data plane: True when the agent
    runs on the coordinator's host with a positive shm threshold (see
    :mod:`repro.backends.shm`), so large args/results can travel as
    segment descriptors instead of inline frame bytes.  Defaulted, so
    frames from agents predating the field still decode.
    """

    node_id: str
    host: str
    pid: int
    cpus: int
    protocol: int = PROTOCOL_VERSION
    shm: bool = False


@dataclass(frozen=True)
class Welcome:
    """Coordinator acknowledgement of a :class:`Hello`.

    Echoes the coordinator's message protocol so the agent can verify it
    is talking to a same-generation coordinator before serving work.
    ``shm`` confirms the shared-memory data plane for this connection
    (the agent advertised it *and* the coordinator enables it); both
    sides must see True before either ships a segment descriptor.
    """

    node_id: str
    protocol: int = PROTOCOL_VERSION
    shm: bool = False


@dataclass(frozen=True)
class Dispatch:
    """One unit of work shipped by value (the legacy, cold path).

    ``kind`` selects the payload shape (mirroring the backend dispatch
    primitives): ``"task"`` → ``(execute_fn, task, collect_output)``,
    ``"chunk"`` → ``(execute_fn, [tasks], collect_output)``, ``"stage"`` →
    ``(cost_fn, apply_fn, value)``.  The hot path ships the shared part of
    the payload once (:class:`PutPayload`) and uses :class:`DispatchRef`.
    """

    request_id: int
    kind: str
    payload: Tuple[Any, ...]


@dataclass(frozen=True)
class Result:
    """A worker's answer to one dispatch (binary-encoded; no pickle
    envelope — only the value/error body itself is pickled, protocol 5
    with out-of-band buffers).

    ``value`` holds the child-measured payload — ``(output, duration)`` for
    tasks, ``[(output, duration), ...]`` for chunks, ``(output, duration,
    cost)`` for stages.  When the payload raised, ``ok`` is False and
    ``error`` carries the exception (or a stringified stand-in when the
    original does not pickle).

    ``load`` piggybacks the worker host's observed CPU load on result
    traffic, so an actively-serving agent needs no separate heartbeat
    beacons; ``-1.0`` means "not carried" and leaves the coordinator's
    last-known load untouched.
    """

    request_id: int
    ok: bool
    value: Any = None
    error: Any = None
    load: float = -1.0


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon, with the worker host's CPU load.

    Liveness is stamped with the *coordinator's* clock on receipt — worker
    clocks are not comparable across hosts, so no send timestamp is
    carried.  Only sent while an agent is idle: results carry the same
    load observation, so active workers beacon implicitly.
    """

    node_id: str
    load: float = 0.0


@dataclass(frozen=True)
class Goodbye:
    """Orderly shutdown announcement (either direction)."""

    node_id: str
    reason: str = ""


@dataclass(frozen=True)
class PutPayload:
    """Install one preserialised shared payload on an agent.

    ``blob`` is the pickle (protocol 5) of the shared payload tuple,
    produced **once** by the coordinator's registry and shipped verbatim —
    the coordinator never re-pickles it per node or per task.  Subsequent
    :class:`DispatchRef` frames reference it by ``payload_id``.
    """

    payload_id: int
    blob: bytes


@dataclass(frozen=True)
class DispatchRef:
    """One unit of work referencing a registered shared payload.

    Carries only the per-task arguments — the task (``kind="task"``), the
    task list (``"chunk"``) or the stage input value (``"stage"``); the
    worker joins them with the :class:`PutPayload` blob installed earlier
    on the same connection.
    """

    request_id: int
    payload_id: int
    kind: str
    args: Any


@dataclass(frozen=True)
class Status:
    """Introspection request: ask a coordinator for its status snapshot.

    Sent by monitoring clients (the ``python -m repro.metrics`` CLI), not
    by workers — a coordinator answers it *before* the HELLO handshake, so
    a status probe never counts as a registered worker.  Within a wire
    version the message set may grow: a same-version coordinator that
    predates STATUS drops the probe connection with a clean
    :class:`~repro.exceptions.ProtocolError`, which the client reports.
    """

    protocol: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class StatusReply:
    """Coordinator answer to :class:`Status`.

    ``snapshot`` is a plain-data dict (strings, numbers, lists, dicts —
    JSON-compatible by construction) describing the coordinator and every
    registered worker; see
    :meth:`repro.cluster.coordinator.ClusterCoordinator.status_snapshot`
    for the exact shape.
    """

    snapshot: Dict[str, Any]


#: Union alias for documentation; the registry below is authoritative.
Message = Any

_MESSAGE_TYPES: Dict[int, Type[Any]] = {
    1: Hello,
    2: Welcome,
    3: Dispatch,
    4: Result,
    5: Heartbeat,
    6: Goodbye,
    7: PutPayload,
    8: DispatchRef,
    9: Status,
    10: StatusReply,
}
_TYPE_CODES = {cls: code for code, cls in _MESSAGE_TYPES.items()}
_PICKLED_TYPES = (Hello, Welcome, Dispatch, Goodbye, Status, StatusReply)


# ------------------------------------------------------- payload serialising
def dumps_payload(obj: Any) -> bytes:
    """Preserialise a shared payload for the registry (pickle protocol 5).

    Raises :class:`~repro.exceptions.ProtocolError` when ``obj`` violates
    the picklable-payload contract, so registration failures surface at
    the caller — never as a dead worker.
    """
    try:
        return pickle.dumps(obj, protocol=5)
    except Exception as exc:
        raise ProtocolError(
            f"shared payload does not pickle ({exc!r}); cluster payloads "
            "must honour the picklable-payload contract"
        ) from exc


# ------------------------------------------------- out-of-band pickle blocks
def _pack_oob(obj: Any) -> bytes:
    """Serialise ``obj`` as an oob block (see module docstring).

    Pickle protocol 5 hands large bytes-like objects (bytearray, numpy
    arrays, memoryviews) to ``buffer_callback`` instead of copying them
    into the pickle stream; their raw bytes ride behind the pickle.
    """
    buffers: List[pickle.PickleBuffer] = []
    try:
        body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    except Exception as exc:
        raise ProtocolError(
            f"message payload does not pickle ({exc!r}); cluster payloads "
            "must honour the picklable-payload contract"
        ) from exc
    raws = [buffer.raw() for buffer in buffers]
    parts = [_U32.pack(len(raws))]
    parts += [_U32.pack(raw.nbytes) for raw in raws]
    parts.append(_U32.pack(len(body)))
    parts.append(body)
    parts += raws
    return b"".join(parts)


def _unpack_oob(view: memoryview, what: str) -> Any:
    """Decode one oob block occupying all of ``view``."""
    try:
        nbuf, = _U32.unpack_from(view, 0)
        offset = _U32.size
        lengths = []
        for _ in range(nbuf):
            length, = _U32.unpack_from(view, offset)
            lengths.append(length)
            offset += _U32.size
        body_len, = _U32.unpack_from(view, offset)
        offset += _U32.size
        body = view[offset:offset + body_len]
        if len(body) != body_len:
            raise ProtocolError(f"truncated {what} body")
        offset += body_len
        buffers = []
        for length in lengths:
            buffer = view[offset:offset + length]
            if len(buffer) != length:
                raise ProtocolError(f"truncated {what} buffer")
            buffers.append(buffer)
            offset += length
        if offset != len(view):
            raise ProtocolError(f"trailing bytes after {what}")
        return pickle.loads(body, buffers=buffers)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"undecodable {what} ({exc!r})") from exc


# ------------------------------------------------------------------ encoders
def _encode_pickled(message: Message) -> bytes:
    values = tuple(getattr(message, f.name)
                   for f in dataclasses.fields(message))
    try:
        return pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ProtocolError(
            f"message payload does not pickle ({exc!r}); cluster payloads "
            "must honour the picklable-payload contract"
        ) from exc


def _encode_result(message: Result) -> bytes:
    fixed = _RESULT_FIXED.pack(message.request_id, 1 if message.ok else 0,
                               float(message.load))
    body = message.value if message.ok else message.error
    return fixed + _pack_oob(body)


def _encode_heartbeat(message: Heartbeat) -> bytes:
    name = message.node_id.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ProtocolError(f"node id of {len(name)} bytes is too long")
    return (_HEARTBEAT_LEN.pack(len(name)) + name
            + _F64.pack(float(message.load)))


def _encode_put_payload(message: PutPayload) -> bytes:
    blob = message.blob
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise ProtocolError(
            f"PUT_PAYLOAD blob must be bytes, got {type(blob).__name__}"
        )
    return _PAYLOAD_ID.pack(message.payload_id) + bytes(blob)


def _encode_dispatch_ref(message: DispatchRef) -> bytes:
    kind_code = KIND_CODES.get(message.kind)
    if kind_code is None:
        raise ProtocolError(f"unknown dispatch kind {message.kind!r}")
    fixed = _DISPATCH_REF_FIXED.pack(message.request_id, message.payload_id,
                                     kind_code)
    return fixed + _pack_oob(message.args)


_ENCODERS: Dict[Type[Any], Callable[[Any], bytes]] = {
    Hello: _encode_pickled,
    Welcome: _encode_pickled,
    Dispatch: _encode_pickled,
    Goodbye: _encode_pickled,
    Status: _encode_pickled,
    StatusReply: _encode_pickled,
    Result: _encode_result,
    Heartbeat: _encode_heartbeat,
    PutPayload: _encode_put_payload,
    DispatchRef: _encode_dispatch_ref,
}


# ------------------------------------------------------------------ decoders
def _decode_pickled(cls: Type[Any], view: memoryview) -> Message:
    try:
        values = pickle.loads(view)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame body ({exc!r})") from exc
    if not isinstance(values, tuple):
        raise ProtocolError(
            f"malformed {cls.__name__} message (body is not a field tuple)"
        )
    try:
        return cls(*values)
    except TypeError as exc:
        raise ProtocolError(
            f"malformed {cls.__name__} message ({exc})"
        ) from exc


def _decode_result(view: memoryview) -> Result:
    try:
        request_id, ok, load = _RESULT_FIXED.unpack_from(view, 0)
    except struct.error as exc:
        raise ProtocolError(f"malformed RESULT frame ({exc})") from exc
    payload = _unpack_oob(view[_RESULT_FIXED.size:], "RESULT payload")
    if ok:
        return Result(request_id=request_id, ok=True, value=payload,
                      load=load)
    return Result(request_id=request_id, ok=False, error=payload, load=load)


def _decode_heartbeat(view: memoryview) -> Heartbeat:
    try:
        name_len, = _HEARTBEAT_LEN.unpack_from(view, 0)
        name = bytes(view[_HEARTBEAT_LEN.size:_HEARTBEAT_LEN.size + name_len])
        if len(name) != name_len:
            raise ProtocolError("truncated HEARTBEAT node id")
        load, = _F64.unpack_from(view, _HEARTBEAT_LEN.size + name_len)
        if len(view) != _HEARTBEAT_LEN.size + name_len + _F64.size:
            raise ProtocolError("trailing bytes after HEARTBEAT")
        return Heartbeat(node_id=name.decode("utf-8"), load=load)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed HEARTBEAT frame ({exc})") from exc


def _decode_put_payload(view: memoryview) -> PutPayload:
    try:
        payload_id, = _PAYLOAD_ID.unpack_from(view, 0)
    except struct.error as exc:
        raise ProtocolError(f"malformed PUT_PAYLOAD frame ({exc})") from exc
    return PutPayload(payload_id=payload_id,
                      blob=bytes(view[_PAYLOAD_ID.size:]))


def _decode_dispatch_ref(view: memoryview) -> DispatchRef:
    try:
        request_id, payload_id, kind_code = \
            _DISPATCH_REF_FIXED.unpack_from(view, 0)
    except struct.error as exc:
        raise ProtocolError(f"malformed DISPATCH_REF frame ({exc})") from exc
    kind = _KIND_NAMES.get(kind_code)
    if kind is None:
        raise ProtocolError(f"unknown dispatch kind code {kind_code}")
    args = _unpack_oob(view[_DISPATCH_REF_FIXED.size:], "DISPATCH_REF args")
    return DispatchRef(request_id=request_id, payload_id=payload_id,
                       kind=kind, args=args)


_DECODERS: Dict[int, Callable[[memoryview], Message]] = {
    4: _decode_result,
    5: _decode_heartbeat,
    7: _decode_put_payload,
    8: _decode_dispatch_ref,
}


# ------------------------------------------------------------------- framing
def encode(message: Message) -> bytes:
    """Serialise ``message`` into one complete frame."""
    code = _TYPE_CODES.get(type(message))
    if code is None:
        raise ProtocolError(
            f"cannot encode {type(message).__name__}: not a protocol message"
        )
    body = _ENCODERS[type(message)](message)
    if len(body) + 1 > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body) + 1} bytes exceeds the {MAX_FRAME_BYTES}-"
            "byte limit"
        )
    return (_HEADER.pack(_MAGIC, PROTOCOL_VERSION, len(body) + 1)
            + bytes((code,)) + body)


class FrameDecoder:
    """Incremental frame decoder: feed bytes, receive complete messages.

    The buffer is consumed through a read offset and compacted *lazily*
    (only once :data:`_COMPACT_BYTES` of consumed prefix accumulate, or
    when everything buffered has been consumed) — the historical
    compact-per-frame ``del buffer[:k]`` made a burst of n small frames
    cost O(n²) byte moves.

    Raises :class:`~repro.exceptions.ProtocolError` on anything malformed;
    once an error is raised the stream is unrecoverable (framing is lost)
    and the connection should be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._offset = 0

    def feed(self, data: bytes) -> List[Message]:
        """Absorb ``data``; return every message it completed, in order."""
        self._buffer.extend(data)
        messages: List[Message] = []
        buffer = self._buffer
        offset = self._offset
        try:
            while True:
                if len(buffer) - offset < _HEADER.size:
                    return messages
                magic, version, length = _HEADER.unpack_from(buffer, offset)
                if magic != _MAGIC:
                    raise ProtocolError(
                        f"bad frame magic {bytes(magic)!r} "
                        f"(expected {_MAGIC!r})"
                    )
                if version != PROTOCOL_VERSION:
                    raise ProtocolError(
                        f"unsupported protocol version {version} "
                        f"(this runtime speaks {PROTOCOL_VERSION})"
                    )
                if length > MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"frame length {length} exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit"
                    )
                if len(buffer) - offset < _HEADER.size + length:
                    return messages
                start = offset + _HEADER.size
                # One copy out of the receive buffer; decoded out-of-band
                # buffers alias this immutable bytes object, so the
                # mutable decode buffer is never pinned by a result.
                body = bytes(buffer[start:start + length])
                offset = start + length
                messages.append(self._decode_body(body))
        finally:
            # Persist progress even when a decode raises mid-burst, then
            # compact if the consumed prefix got large (or is everything).
            if offset >= len(buffer):
                del buffer[:]
                offset = 0
            elif offset >= _COMPACT_BYTES:
                del buffer[:offset]
                offset = 0
            self._offset = offset

    def at_eof(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call when the peer closes the connection: leftover buffered bytes
        mean a frame was cut off mid-flight.
        """
        pending = self.pending_bytes
        if pending:
            raise ProtocolError(
                f"connection closed mid-frame ({pending} "
                "buffered bytes do not form a complete frame)"
            )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer) - self._offset

    @staticmethod
    def _decode_body(body: bytes) -> Message:
        if not body:
            raise ProtocolError("empty frame body")
        code = body[0]
        view = memoryview(body)[1:]
        decoder = _DECODERS.get(code)
        if decoder is not None:
            return decoder(view)
        cls = _MESSAGE_TYPES.get(code)
        if cls is None:
            raise ProtocolError(f"unknown message type code {code!r}")
        return _decode_pickled(cls, view)
